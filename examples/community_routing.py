#!/usr/bin/env python
"""Community-structured scenario: detect communities, then route with CR.

This example exercises the full community tool-chain the paper builds on:

1. generate a synthetic contact trace with strong community structure
   (intra-community pairs meet ~10x more often than inter-community pairs),
2. detect the communities from the observed contacts with the three
   algorithms the paper cites (k-clique percolation, Newman modularity,
   Clauset's local method) and compare them with the ground truth,
3. replay the same trace under the CR protocol using the detected communities
   and under Spray-and-Wait as a community-oblivious baseline.

Run with::

    python examples/community_routing.py
"""

import networkx as nx

from repro.community import (
    CommunityAssignment,
    aggregate_contact_graph,
    k_clique_communities,
    local_community,
    newman_modularity_communities,
)
from repro.metrics.events import ContactRecord
from repro.net.generators import MessageEventGenerator, TrafficSpec
from repro.traces.generators import community_structured_trace
from repro.traces.replay import build_trace_world

NUM_NODES = 24
NUM_COMMUNITIES = 4
DURATION = 6000.0


def detect_communities(trace):
    """Detect communities from the trace's aggregate contact graph."""
    records = (ContactRecord(pair[0], pair[1], start, end)
               for pair, start, end in trace.contacts())
    graph = aggregate_contact_graph(records, num_nodes=NUM_NODES)
    # keep only "strong" edges (frequent contacts) before detection
    strong = nx.Graph()
    strong.add_nodes_from(graph.nodes)
    strong.add_edges_from((u, v, d) for u, v, d in graph.edges(data=True)
                          if d["weight"] >= 8)
    newman = newman_modularity_communities(strong, max_communities=NUM_COMMUNITIES)
    kclique = k_clique_communities(strong, k=3)
    local = local_community(strong, seed=0)
    return graph, newman, kclique, local


def accuracy(assignment: CommunityAssignment, truth: dict) -> float:
    """Fraction of node pairs whose same-community relation matches the truth."""
    nodes = sorted(truth)
    agree = total = 0
    for i, a in enumerate(nodes):
        for b in nodes[i + 1:]:
            total += 1
            if (truth[a] == truth[b]) == assignment.same_community(a, b):
                agree += 1
    return agree / total if total else 1.0


def run_protocol(trace, protocol, communities):
    simulator, world = build_trace_world(
        trace, protocol=protocol, communities=communities, seed=7,
        buffer_capacity=20 * 1024 * 1024)
    spec = TrafficSpec(interval=(30.0, 50.0), size=25 * 1024, ttl=1800.0, copies=8)
    MessageEventGenerator(simulator, world, spec)
    simulator.run(until=DURATION)
    return world.stats


def main() -> None:
    print("Generating a community-structured contact trace "
          f"({NUM_NODES} nodes, {NUM_COMMUNITIES} communities)...")
    trace, truth = community_structured_trace(
        num_nodes=NUM_NODES, num_communities=NUM_COMMUNITIES, duration=DURATION,
        intra_period=150.0, inter_period=1800.0, seed=11)
    print(f"  {len(trace)} contact events, {len(trace.contacts())} contacts")

    graph, newman, kclique, local = detect_communities(trace)
    detected = CommunityAssignment.from_groups(newman)
    print("\nCommunity detection on the observed contact graph:")
    print(f"  Newman modularity : {len(newman)} communities, "
          f"pairwise accuracy {accuracy(detected, truth):.2%}")
    print(f"  k-clique (k=3)    : {len(kclique)} communities")
    print(f"  local (seed 0)    : community of node 0 has {len(local)} members")

    print("\nRouting on the same trace (detected communities drive CR):")
    cr_stats = run_protocol(trace, "cr", detected.as_dict())
    snw_stats = run_protocol(trace, "spray-and-wait", detected.as_dict())
    for name, stats in (("CR", cr_stats), ("Spray-and-Wait", snw_stats)):
        print(f"  {name:15s} delivery={stats.delivery_ratio:.2f} "
              f"latency={stats.average_latency:6.1f} s goodput={stats.goodput:.3f} "
              f"control rows={stats.control_rows_exchanged}")


if __name__ == "__main__":
    main()
