#!/usr/bin/env python
"""Compare EER, CR and the paper's baselines on the bus scenario (Figure 2).

Reproduces a reduced-scale version of the paper's Figure 2: delivery ratio,
latency and goodput versus the number of buses, for EER, CR, EBR, MaxProp,
Spray-and-Wait and Spray-and-Focus.

Run with::

    python examples/bus_network_comparison.py            # quick (a few minutes)
    python examples/bus_network_comparison.py --full     # the paper's scale (hours)
"""

import argparse

from repro.analysis.render import render_ascii_chart
from repro.experiments import ScenarioConfig, figure2_comparison
from repro.experiments.figures import FIGURE2_PROTOCOLS
from repro.experiments.tables import format_figure


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="use the paper's node counts and run length")
    parser.add_argument("--seeds", type=int, default=1,
                        help="number of seeds to average per point")
    args = parser.parse_args()

    if args.full:
        base = ScenarioConfig.paper_scale()
        node_counts = (40, 80, 120, 160, 200, 240)
    else:
        base = ScenarioConfig.bench_scale(sim_time=1500.0)
        node_counts = (24, 48, 72)
    seeds = tuple(range(1, args.seeds + 1))

    print(f"Figure 2 at {'paper' if args.full else 'reduced'} scale: "
          f"nodes={node_counts}, seeds={seeds}")
    figure = figure2_comparison(node_counts=node_counts,
                                protocols=FIGURE2_PROTOCOLS,
                                seeds=seeds, base=base)

    print()
    print(format_figure(figure))
    for metric, title in (("delivery_ratio", "Delivery ratio vs number of nodes"),
                          ("goodput", "Goodput vs number of nodes")):
        print(render_ascii_chart(figure.metrics[metric], title=title))
        print()


if __name__ == "__main__":
    main()
