#!/usr/bin/env python
"""The replica-quota trade-off (Figures 3 and 4).

Sweeps the initial replica count lambda for EER and CR and prints how the
delivery ratio, latency and goodput move — the paper's conclusion is that a
larger lambda buys delivery ratio and a little latency at the cost of
goodput, so picking lambda is a tradeoff.

Run with::

    python examples/lambda_tradeoff.py
    python examples/lambda_tradeoff.py --protocol cr --nodes 64
"""

import argparse

from repro.experiments import ScenarioConfig
from repro.experiments.figures import figure3_lambda_eer, figure4_lambda_cr
from repro.experiments.tables import format_figure


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--protocol", choices=("eer", "cr"), default="eer")
    parser.add_argument("--nodes", type=int, default=48)
    parser.add_argument("--lambdas", type=int, nargs="+", default=[6, 8, 10, 12])
    parser.add_argument("--seeds", type=int, default=1)
    args = parser.parse_args()

    base = ScenarioConfig.bench_scale(sim_time=1800.0)
    seeds = tuple(range(1, args.seeds + 1))
    driver = figure3_lambda_eer if args.protocol == "eer" else figure4_lambda_cr
    print(f"Sweeping lambda={args.lambdas} for {args.protocol.upper()} "
          f"at {args.nodes} nodes...")
    figure = driver(node_counts=(args.nodes,), lambdas=args.lambdas,
                    seeds=seeds, base=base)

    print()
    print(format_figure(figure))

    print("Summary (averaged over node counts):")
    for lam in args.lambdas:
        label = f"lambda={lam}"
        print(f"  {label:10s} delivery={figure.mean_value('delivery_ratio', label):.3f} "
              f"latency={figure.mean_value('average_latency', label):6.1f} s "
              f"goodput={figure.mean_value('goodput', label):.4f}")


if __name__ == "__main__":
    main()
