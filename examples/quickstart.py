#!/usr/bin/env python
"""Quickstart: run one bus scenario with the EER protocol and print its report.

This is the smallest end-to-end use of the library: configure a scenario,
run it, and read the three metrics the paper evaluates (delivery ratio,
latency, goodput).

Run with::

    python examples/quickstart.py

The command-line equivalent (see docs/cli.md)::

    python -m repro run bench --protocol eer --set sim_time=2000
"""

from repro.experiments import ScenarioConfig, run_scenario
from repro.experiments.tables import format_report_table


def main() -> None:
    # A reduced-scale bus scenario (see ScenarioConfig.paper_scale() for the
    # paper's exact settings: 0.1 s updates, 10 m range, 10 000 s runs).
    config = ScenarioConfig.bench_scale(
        protocol="eer",          # the paper's Expected Encounter based Routing
        num_nodes=40,            # buses
        seed=1,
        sim_time=2000.0,         # seconds
        message_copies=10,       # lambda, the initial replica quota
    )
    print(f"Running scenario {config.name!r} "
          f"({config.num_nodes} buses, {config.sim_time:.0f} s)...")
    report = run_scenario(config)

    print()
    print(format_report_table([report]))
    print()
    print(f"delivery ratio : {report.delivery_ratio:.3f}")
    print(f"latency        : {report.average_latency:.1f} s")
    print(f"goodput        : {report.goodput:.4f}")
    print(f"overhead ratio : {report.overhead_ratio:.1f} relays per delivery")
    print(f"MI rows exchanged (control overhead): {report.control_rows_exchanged}")


if __name__ == "__main__":
    main()
