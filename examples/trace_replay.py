#!/usr/bin/env python
"""Record a contact trace from a mobility run, then replay it.

Demonstrates the trace tooling: a bus scenario is simulated once, its contacts
are exported in the ONE-style text format, and the identical contact sequence
is replayed to compare two protocols under *exactly* the same opportunities
(something a mobility simulation cannot guarantee across protocol runs,
because every run re-draws per-leg speeds and stop waits).

Run with::

    python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

from repro.experiments import ScenarioConfig
from repro.experiments.builder import build_scenario
from repro.net.generators import MessageEventGenerator, TrafficSpec
from repro.traces.contact_trace import ContactTrace
from repro.traces.io import load_trace, save_csv_trace
from repro.traces.replay import build_trace_world


def record_trace(config: ScenarioConfig) -> ContactTrace:
    """Run the mobility scenario once and export its closed contacts."""
    built = build_scenario(config)
    built.run()
    print(f"  mobility run: {built.stats.contacts} contacts, "
          f"{built.stats.created} messages, "
          f"delivery ratio {built.stats.delivery_ratio:.2f} ({config.protocol})")
    return ContactTrace.from_contact_records(built.stats.contact_records,
                                             horizon=config.sim_time)


def replay(trace: ContactTrace, protocol: str, num_nodes: int,
           communities, sim_time: float):
    simulator, world = build_trace_world(
        trace, protocol=protocol, num_nodes=num_nodes, communities=communities,
        seed=99)
    spec = TrafficSpec(interval=(25.0, 35.0), size=25 * 1024, ttl=1200.0, copies=10)
    MessageEventGenerator(simulator, world, spec)
    simulator.run(until=sim_time)
    return world.stats


def main() -> None:
    config = ScenarioConfig.bench_scale(protocol="epidemic", num_nodes=40,
                                        sim_time=2000.0, seed=4)
    print("Recording a contact trace from the bus scenario...")
    trace = record_trace(config)

    # round-trip the trace through both on-disk formats (repro.traces.io
    # validates on load and would reject e.g. orphan down events)
    with tempfile.TemporaryDirectory() as tmp:
        one_path = Path(tmp) / "bus_contacts.txt"
        csv_path = Path(tmp) / "bus_contacts.csv"
        trace.save(one_path)
        save_csv_trace(trace, csv_path)
        trace = load_trace(one_path)          # format sniffed: ONE report
        assert len(load_trace(csv_path)) == len(trace)
        print(f"  saved and re-loaded {len(trace)} events "
              f"({one_path.stat().st_size} bytes ONE, "
              f"{csv_path.stat().st_size} bytes CSV)")

    # communities for CR: reuse the bus scenario's district assignment
    built = build_scenario(config)
    communities = {n: built.world.community_of(n) for n in built.world.node_ids()}

    print("\nReplaying the identical contact sequence under two protocols:")
    for protocol in ("eer", "spray-and-wait"):
        stats = replay(trace, protocol, config.num_nodes, communities,
                       config.sim_time)
        print(f"  {protocol:15s} delivery={stats.delivery_ratio:.2f} "
              f"latency={stats.average_latency:6.1f} s goodput={stats.goodput:.3f}")


if __name__ == "__main__":
    main()
