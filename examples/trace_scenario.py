#!/usr/bin/env python
"""Trace-backed scenarios through the standard experiment pipeline.

``MobilityKind.TRACE`` scenarios are first-class citizens: they come out of
the scenario catalog by name, run through ``run_averaged`` (optionally on the
process-pool backend) and sweep like any geometric scenario.  This example
compares three protocols on the bundled 12-node CSV demo trace — the same
thing as::

    python -m repro run trace-csv --protocol eer --seeds 1-3

but from Python, plus a custom registration showing how to point a catalog
entry at your own trace file.

Run with::

    python examples/trace_scenario.py
"""

from repro.experiments import (
    make_scenario,
    register_scenario,
    run_averaged,
)


def main() -> None:
    print("Comparing protocols on the bundled CSV demo trace (3 seeds):")
    for protocol in ("epidemic", "spray-and-wait", "eer"):
        config = make_scenario("trace-csv", protocol=protocol)
        result = run_averaged(config, seeds=(1, 2, 3))
        print(f"  {protocol:15s} delivery={result.mean('delivery_ratio'):.2f} "
              f"latency={result.mean('average_latency'):6.1f} s "
              f"overhead={result.mean('overhead_ratio'):6.1f}")

    # registering a variant is one call; it's then also visible to
    # `python -m repro list` within the same process
    register_scenario(
        "trace-csv-short",
        lambda: make_scenario("trace-csv", trace_window=(0.0, 1000.0),
                              sim_time=1000.0),
        kind="trace",
        summary="first 1000 s of the demo trace",
        overwrite=True)
    result = run_averaged(make_scenario("trace-csv-short", protocol="eer"),
                          seeds=(1,))
    print(f"\nClipped variant (first 1000 s): "
          f"delivery={result.mean('delivery_ratio'):.2f} "
          f"({result.reports[0].contacts} contacts)")


if __name__ == "__main__":
    main()
