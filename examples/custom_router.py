#!/usr/bin/env python
"""Write, register and evaluate a custom DTN routing protocol.

The library's router API is small: subclass
:class:`repro.routing.base.Router` (or
:class:`repro.routing.active.ContactAwareRouter` if you need per-peer contact
history), implement ``on_update`` and optionally the contact hooks, register
the class, and the whole experiment stack (scenarios, sweeps, figures) can use
it by name.

The example implements "Spray-and-Expect": binary spraying like
Spray-and-Wait, but the *last* replica is forwarded to an encounter whose
expected encounter value over the message's residual TTL is higher — a small
remix of the paper's ingredients — and compares it against Spray-and-Wait and
EER on the same scenario.

Run with::

    python examples/custom_router.py
"""

from repro.core.expectation import expected_encounter_value
from repro.experiments import ScenarioConfig, run_scenario
from repro.experiments.tables import format_report_table
from repro.routing.active import ContactAwareRouter
from repro.routing.registry import register_router


class SprayAndExpectRouter(ContactAwareRouter):
    """Binary spray + EEV-guided forwarding of the last replica."""

    name = "spray-and-expect"

    def __init__(self, alpha: float = 0.28, window_size: int = 20) -> None:
        super().__init__(window_size=window_size)
        self.alpha = alpha

    def expected_ev(self, now: float, horizon: float) -> float:
        assert self.history is not None
        return expected_encounter_value(self.history, now, horizon)

    def on_update(self, now: float) -> None:
        for connection in self.connections():
            self.send_deliverable(connection)
            if not self.is_first_evaluation(connection):
                continue
            peer = connection.other(self.node)
            peer_router = peer.router
            if not isinstance(peer_router, SprayAndExpectRouter):
                continue
            for message in self.buffer.messages():
                if message.destination == peer.node_id:
                    continue
                if self.peer_has(connection, message.message_id):
                    continue
                if self.has_pending_transfer(message.message_id):
                    continue
                if message.copies > 1:
                    # spray phase: binary split, as in Spray-and-Wait
                    self.send(connection, message, copies=message.copies // 2)
                else:
                    # "expect" phase: hand the last replica to a node that is
                    # about to meet more nodes within the residual TTL
                    horizon = self.alpha * max(0.0, message.residual_ttl(now))
                    if (peer_router.expected_ev(now, horizon)
                            > 1.25 * self.expected_ev(now, horizon)):
                        self.send(connection, message, copies=1, forwarding=True)


def main() -> None:
    register_router("spray-and-expect", SprayAndExpectRouter)

    reports = []
    for protocol in ("spray-and-wait", "spray-and-expect", "eer"):
        config = ScenarioConfig.bench_scale(protocol=protocol, num_nodes=48,
                                            sim_time=2000.0, seed=2)
        print(f"Running {protocol} ...")
        reports.append(run_scenario(config))

    print()
    print(format_report_table(reports))
    print("\n'spray-and-expect' shows how little code a new protocol needs; "
          "see repro/routing/ for the full-fledged implementations.")


if __name__ == "__main__":
    main()
