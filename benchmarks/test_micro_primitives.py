"""Micro-benchmarks of the per-contact primitives.

These measure the cost of the operations the protocols execute at every
contact or world tick — the quantities that determine how far the simulator
scales: Theorem 1/2/4 evaluations, the MD build + Dijkstra (MEMD), MI row
exchange, connectivity detection and path advancement.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.contacts.history import ContactHistory
from repro.contacts.md_matrix import build_delay_matrix
from repro.contacts.memd import dijkstra_delays
from repro.contacts.mi_matrix import MeetingIntervalMatrix
from repro.core.expectation import (
    expected_encounter_value,
    expected_num_encountering_communities,
)
from repro.mobility.path import Path
from repro.mobility.random_waypoint import RandomWaypointMovement
from repro.routing.direct import DirectDeliveryRouter
from repro.sim.engine import Simulator
from repro.world.connectivity import GridConnectivity, KDTreeConnectivity
from repro.world.sharded import ShardedConnectivity
from repro.world.interface import Interface
from repro.world.node import DTNNode
from repro.world.world import World

N = 240  # the paper's largest node count
WORLD_TICK_NODES = 1000  # production-scale world-tick benchmark


def make_history(num_peers=60, contacts_per_peer=15, seed=3):
    rng = random.Random(seed)
    history = ContactHistory(owner_id=0, window_size=20)
    for peer in range(1, num_peers + 1):
        t = rng.uniform(0, 100)
        for _ in range(contacts_per_peer):
            t += rng.uniform(50, 400)
            history.record_contact(peer, t)
    return history


def make_mi(n=N, known_fraction=0.6, seed=7):
    rng = np.random.default_rng(seed)
    mi = MeetingIntervalMatrix(n, owner_id=0)
    mi._values[:] = np.where(rng.random((n, n)) < known_fraction,
                             rng.uniform(50, 2000, (n, n)), np.inf)
    np.fill_diagonal(mi._values, 0.0)
    mi._row_updated[:] = rng.uniform(0, 1000, n)
    return mi


@pytest.fixture(scope="module")
def history():
    return make_history()


@pytest.fixture(scope="module")
def mi():
    return make_mi()


def test_bench_expected_encounter_value(benchmark, history):
    result = benchmark(expected_encounter_value, history, 6000.0, 336.0)
    assert result >= 0.0


def test_bench_enec(benchmark, history):
    communities = {c: list(range(c * 15 + 1, (c + 1) * 15 + 1)) for c in range(4)}
    result = benchmark(expected_num_encountering_communities,
                       history, 6000.0, 336.0, communities, 0)
    assert result >= 0.0


def test_bench_build_delay_matrix(benchmark, history, mi):
    md = benchmark(build_delay_matrix, history, mi, 6000.0)
    assert md.shape == (N, N)


def test_bench_memd_dijkstra(benchmark, mi):
    md = mi.values.copy()
    result = benchmark(dijkstra_delays, md, 0)
    assert result.shape == (N,)


def test_bench_mi_merge(benchmark):
    ours = make_mi(seed=1)
    theirs = make_mi(seed=2)

    def merge():
        clone = ours.copy()
        return clone.merge_from(theirs)

    copied = benchmark(merge)
    assert copied >= 0


def test_bench_connectivity_kdtree(benchmark):
    rng = np.random.default_rng(0)
    positions = rng.uniform(0, 4500, size=(N, 2))
    ranges = np.full(N, 10.0)
    detector = KDTreeConnectivity()
    pairs = benchmark(detector.find_pairs, positions, ranges)
    assert isinstance(pairs, set)


def test_bench_connectivity_grid(benchmark):
    rng = np.random.default_rng(0)
    positions = rng.uniform(0, 4500, size=(N, 2))
    ranges = np.full(N, 10.0)
    detector = GridConnectivity()
    pairs = benchmark(detector.find_pairs, positions, ranges)
    assert isinstance(pairs, set)


def test_bench_connectivity_sharded_steady_state(benchmark):
    """Per-tick cost of the sharded detector's cached-candidate filter.

    Steady state = nodes drifting below the slack margin, the common case
    the detector optimises: one vectorized range filter over the cached
    strip-merged candidate set, no tree query and no sort.
    """
    rng = np.random.default_rng(0)
    positions = rng.uniform(0, 2400, size=(WORLD_TICK_NODES, 2))
    ranges = np.full(WORLD_TICK_NODES, 40.0)
    drift = rng.normal(0.0, 0.5, size=positions.shape)
    detector = ShardedConnectivity(workers=1)
    detector.update(positions, ranges)  # build the candidate cache
    sign = [1.0]

    def tick():
        # oscillating drift keeps the displacement from the snapshot bounded
        # well below the slack, so no timed iteration folds a rebuild in
        sign[0] = -sign[0]
        positions[:] = positions + drift * (sign[0] * 0.01)
        return detector.update(positions, ranges)

    pairs = benchmark(tick)
    detector.close()
    assert len(pairs) > 0


def test_bench_path_advance(benchmark):
    rng = np.random.default_rng(4)
    waypoints = rng.uniform(0, 1000, size=(20, 2))

    def advance_path():
        path = Path(waypoints, speed=10.0)
        while not path.done:
            path.advance(1.0)
        return path.position

    position = benchmark(advance_path)
    assert np.all(np.isfinite(position))


def test_bench_world_tick_1000_nodes(benchmark):
    """One full movement + connectivity phase of a 1 000-node world.

    This is the simulator's hot loop — move every node, re-detect pairs and
    diff the link set into up/down events — and the quantity the vectorized
    world core (PositionStore, stateful detectors, sorted-array diffing) is
    meant to speed up.  Routers are attached but idle: transfer progression
    and router ticks are benchmarked elsewhere.
    """
    simulator = Simulator(seed=7)
    world = World(simulator, update_interval=1.0)
    interface = Interface(transmit_range=40.0, transmit_speed=250_000)
    for node_id in range(WORLD_TICK_NODES):
        movement = RandomWaypointMovement(area=(3000.0, 2000.0), min_speed=2.0,
                                          max_speed=14.0, wait=(0.0, 10.0))
        node = DTNNode(node_id, movement,
                       simulator.random.python(f"n{node_id}"), interface=interface)
        DirectDeliveryRouter().attach(node, world)
        world.add_node(node)
    clock = {"now": 0.0}

    def tick():
        clock["now"] += 1.0
        now = clock["now"]
        world._move_nodes(1.0, now)
        world._refresh_connectivity(now)
        return len(world.connections)

    # settle the detector state before measuring steady-state ticks
    for _ in range(3):
        tick()
    links = benchmark(tick)
    assert links > 0


def test_bench_contact_history_recording(benchmark):
    def record():
        history = ContactHistory(owner_id=0, window_size=20)
        t = 0.0
        for step in range(2000):
            t += 7.0
            history.record_contact(1 + step % 50, t)
        return history.total_intervals()

    total = benchmark(record)
    assert total > 0
