"""Ablation A4: the single-copy forwarding rule (DESIGN.md design decisions).

Two questions the paper's text raises but does not quantify:

1. How much does the single-replica forwarding phase (MEMD comparison)
   contribute on top of the quota-splitting phase?  Disabling it turns EER
   into an EBR-like "spray then wait" protocol.
2. How sensitive is EER to the forwarding-damping margin this reproduction
   adds (``forward_margin``, see DESIGN.md)?  The strictly faithful margin 0
   forwards on any MEMD improvement; larger margins trade a few deliveries
   for far fewer relays (better goodput).
"""

from __future__ import annotations

import os

from bench_config import ablation_nodes, backend, bench_base, seeds
from repro.analysis.render import figure_to_json
from repro.experiments.runner import run_many_averaged
from repro.experiments.figures import FigureResult
from repro.experiments.tables import format_figure


def _run_margins(margins, num_nodes=None):
    base = bench_base()
    figure = FigureResult("ablation-forwarding",
                          "EER forwarding-damping margin", "forward_margin")
    configs = [base.with_overrides(
        protocol="eer", num_nodes=num_nodes or ablation_nodes(),
        router_params={"forward_margin": float(margin)})
        for margin in margins]
    results = run_many_averaged(configs, seeds(), backend=backend())
    for margin, result in zip(margins, results):
        figure.add_point("delivery_ratio", "eer", margin, result.mean("delivery_ratio"))
        figure.add_point("average_latency", "eer", margin, result.mean("average_latency"))
        figure.add_point("goodput", "eer", margin, result.mean("goodput"))
        figure.add_point("relayed", "eer", margin, result.mean("relayed"), extra=True)
    return figure


def test_forward_margin_trades_relays_for_little_delivery(benchmark, figure_store):
    margins = (0.0, 0.35, 0.7)
    figure = benchmark.pedantic(_run_margins, args=(margins,), rounds=1, iterations=1)

    figure_to_json(figure, os.path.join(figure_store, "ablation_forwarding.json"))
    print()
    print(format_figure(figure))

    relays = dict(figure.extra["relayed"]["eer"])
    delivery = dict(figure.series("delivery_ratio", "eer"))
    goodput = dict(figure.series("goodput", "eer"))

    # damping strictly reduces the number of relays ...
    assert relays[0.35] <= relays[0.0]
    assert relays[0.7] <= relays[0.35]
    # ... which shows up as better goodput ...
    assert goodput[0.35] >= goodput[0.0]
    # ... while the delivery ratio stays in the same ballpark at the default
    assert delivery[0.35] >= delivery[0.0] - 0.1
