"""Ablation A3: effect of the per-node buffer capacity on EER.

Expected shape: delivery ratio does not decrease as buffers grow (fewer
replicas are evicted before they can be forwarded); with the paper's light
traffic load the curve saturates once the buffer stops being the bottleneck.
"""

from __future__ import annotations

import os

from bench_config import ablation_nodes, backend, bench_base, seeds
from repro.analysis.render import figure_to_json
from repro.analysis.series import is_monotonic
from repro.experiments.figures import ablation_buffer
from repro.experiments.tables import format_figure


def test_buffer_sweep_on_eer(benchmark, figure_store):
    buffers = (128 * 1024, 256 * 1024, 1024 * 1024)
    # a heavier traffic load than the default so small buffers actually hurt
    base = bench_base().with_overrides(message_interval=(10.0, 15.0))
    figure = benchmark.pedantic(
        ablation_buffer,
        kwargs=dict(buffers=buffers, protocol="eer", num_nodes=ablation_nodes(), seeds=seeds(), backend=backend(),
                    base=base),
        rounds=1, iterations=1)

    figure_to_json(figure, os.path.join(figure_store, "ablation_buffer.json"))
    print()
    print(format_figure(figure))

    delivery = figure.series("delivery_ratio", "eer")
    assert len(delivery) == len(buffers)
    assert is_monotonic(delivery, increasing=True, tolerance=0.05)
    by_buffer = dict(delivery)
    assert by_buffer[float(max(buffers))] >= by_buffer[float(min(buffers))]
