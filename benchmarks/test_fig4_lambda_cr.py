"""Figure 4: effect of the replica quota lambda on CR.

Same qualitative shape as Figure 3, but for the community-based protocol:
delivery ratio rises with lambda while goodput falls.
"""

from __future__ import annotations

import os

from bench_config import backend, bench_base, lambda_values, node_counts, seeds
from repro.analysis.render import figure_to_json
from repro.experiments.figures import figure4_lambda_cr
from repro.experiments.tables import format_figure


def test_figure4_lambda_effect_on_cr(benchmark, figure_store):
    lambdas = lambda_values()
    figure = benchmark.pedantic(
        figure4_lambda_cr,
        kwargs=dict(node_counts=node_counts(), lambdas=lambdas, seeds=seeds(), backend=backend(),
                    base=bench_base()),
        rounds=1, iterations=1)

    figure_to_json(figure, os.path.join(figure_store, "fig4.json"))
    print()
    print(format_figure(figure))

    smallest = f"lambda={min(lambdas)}"
    largest = f"lambda={max(lambdas)}"

    assert (figure.mean_value("delivery_ratio", largest)
            >= figure.mean_value("delivery_ratio", smallest) - 0.03)
    assert (figure.mean_value("goodput", largest)
            <= figure.mean_value("goodput", smallest) + 0.005)
    assert (figure.mean_value("average_latency", largest)
            <= 1.15 * figure.mean_value("average_latency", smallest))
    for series in figure.metrics["delivery_ratio"].values():
        assert all(v > 0 for _, v in series)
