"""Figure 3: effect of the replica quota lambda on EER.

Paper's reported shape: raising lambda increases the delivery ratio, slightly
reduces latency, and lowers goodput (more forwarding per delivered message).
"""

from __future__ import annotations

import os

from bench_config import backend, bench_base, lambda_values, node_counts, seeds
from repro.analysis.render import figure_to_json
from repro.experiments.figures import figure3_lambda_eer
from repro.experiments.tables import format_figure


def test_figure3_lambda_effect_on_eer(benchmark, figure_store):
    lambdas = lambda_values()
    figure = benchmark.pedantic(
        figure3_lambda_eer,
        kwargs=dict(node_counts=node_counts(), lambdas=lambdas, seeds=seeds(), backend=backend(),
                    base=bench_base()),
        rounds=1, iterations=1)

    figure_to_json(figure, os.path.join(figure_store, "fig3.json"))
    print()
    print(format_figure(figure))

    smallest = f"lambda={min(lambdas)}"
    largest = f"lambda={max(lambdas)}"

    # delivery ratio rises with lambda (allow a little seed noise)
    assert (figure.mean_value("delivery_ratio", largest)
            >= figure.mean_value("delivery_ratio", smallest) - 0.03)

    # goodput falls with lambda
    assert (figure.mean_value("goodput", largest)
            <= figure.mean_value("goodput", smallest) + 0.005)

    # latency does not increase substantially with lambda
    assert (figure.mean_value("average_latency", largest)
            <= 1.15 * figure.mean_value("average_latency", smallest))

    # every sampled point produced a live network
    for series in figure.metrics["delivery_ratio"].values():
        assert all(v > 0 for _, v in series)
