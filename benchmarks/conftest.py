"""Fixtures for the benchmark harness."""

from __future__ import annotations

import os

import pytest


@pytest.fixture(scope="session")
def figure_store(tmp_path_factory):
    """Directory where benchmarks drop their regenerated figure data (JSON/CSV).

    Set ``REPRO_BENCH_OUTPUT`` to keep the files in a known place; otherwise a
    session temporary directory is used.
    """
    out = os.environ.get("REPRO_BENCH_OUTPUT")
    if out:
        os.makedirs(out, exist_ok=True)
        return out
    return str(tmp_path_factory.mktemp("figures"))
