"""Scale configuration shared by all benchmark modules.

Every benchmark regenerates one of the paper's figures (or an ablation) at a
reduced scale and checks the *qualitative shape* reported in the paper — who
wins each metric, in which direction a curve moves — rather than absolute
numbers (the substrate is a synthetic simulator, not the authors'
Helsinki/ONE setup; see EXPERIMENTS.md).

Two scales are supported, selected with the ``REPRO_BENCH_SCALE`` environment
variable:

* ``quick`` (default) — small node counts and short runs so the whole harness
  finishes in a few minutes on a laptop.
* ``full``  — the paper's node counts (40-240) and 10 000 s runs; expect hours.

``REPRO_BENCH_BACKEND`` selects the execution backend the figure drivers fan
seed replicates and grid points out on: ``serial`` (default) or ``process``.
Results are identical either way; ``process`` just uses all the cores.
"""

from __future__ import annotations

import os
from typing import Tuple

from repro.experiments.backend import BackendLike
from repro.experiments.scenario import ScenarioConfig

#: benchmark scale selected via the environment
SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick").lower()

#: execution backend name selected via the environment
BACKEND = os.environ.get("REPRO_BENCH_BACKEND", "serial").lower()


def backend() -> BackendLike:
    """The execution backend every figure benchmark threads through."""
    return BACKEND


def bench_base() -> ScenarioConfig:
    """The base scenario every figure benchmark starts from."""
    if SCALE == "full":
        return ScenarioConfig.paper_scale()
    return ScenarioConfig.bench_scale(sim_time=2000.0)


def node_counts() -> Tuple[int, ...]:
    """Node counts swept by the figure benchmarks (paper: 40..240)."""
    if SCALE == "full":
        return (40, 80, 120, 160, 200, 240)
    return (40, 80)


def lambda_values() -> Tuple[int, ...]:
    """Replica quotas swept by Figures 3 and 4 (paper: 6, 8, 10, 12)."""
    if SCALE == "full":
        return (6, 8, 10, 12)
    return (6, 12)


def seeds() -> Tuple[int, ...]:
    """Seeds averaged per point (paper: 10 runs per point)."""
    if SCALE == "full":
        return tuple(range(1, 11))
    return (1, 2)


def ablation_nodes() -> int:
    """Node count used by the single-parameter ablation sweeps."""
    return 80 if SCALE == "full" else 48
