"""Figure 2: protocol comparison (delivery ratio, latency, goodput vs. nodes).

Paper's reported shape (Section V-B):

* MaxProp attains the highest delivery ratio and the shortest latency but by
  far the lowest goodput (about 20 % of EER's and CR's).
* EBR attains the best goodput but the lowest delivery ratio and (almost) the
  highest latency.
* EER and CR deliver more than Spray-and-Wait and EBR while keeping goodput
  several times MaxProp's; CR additionally exchanges far less routing state
  than EER.
"""

from __future__ import annotations

import os

from bench_config import backend, bench_base, node_counts, seeds
from repro.analysis.render import figure_to_csv, figure_to_json
from repro.analysis.series import rank_series
from repro.experiments.figures import FIGURE2_PROTOCOLS, figure2_comparison
from repro.experiments.tables import format_figure


def test_figure2_protocol_comparison(benchmark, figure_store):
    figure = benchmark.pedantic(
        figure2_comparison,
        kwargs=dict(node_counts=node_counts(), protocols=FIGURE2_PROTOCOLS,
                    seeds=seeds(), base=bench_base(), backend=backend()),
        rounds=1, iterations=1)

    # persist and print the regenerated figure
    figure_to_json(figure, os.path.join(figure_store, "fig2.json"))
    figure_to_csv(figure, "delivery_ratio", os.path.join(figure_store, "fig2_delivery.csv"))
    print()
    print(format_figure(figure))

    dr = {p: figure.mean_value("delivery_ratio", p) for p in FIGURE2_PROTOCOLS}
    gp = {p: figure.mean_value("goodput", p) for p in FIGURE2_PROTOCOLS}
    lat = {p: figure.mean_value("average_latency", p) for p in FIGURE2_PROTOCOLS}
    rows = {p: figure.extra["control_rows_exchanged"][p] for p in FIGURE2_PROTOCOLS}

    # --- delivery ratio: MaxProp on top, EER/CR above the quota baselines
    assert dr["maxprop"] >= max(dr.values()) - 1e-9
    assert dr["eer"] >= dr["ebr"] - 0.05
    assert dr["eer"] >= dr["spray-and-wait"] - 0.05
    assert dr["cr"] >= dr["ebr"] - 0.05
    assert dr["cr"] >= dr["spray-and-wait"] - 0.05

    # --- goodput: MaxProp clearly the worst; EBR at or near the top;
    #     EER and CR land in between, well above MaxProp
    assert gp["maxprop"] <= min(gp[p] for p in FIGURE2_PROTOCOLS if p != "maxprop")
    ranking = rank_series(figure.metrics["goodput"], higher_is_better=True)
    assert ranking[0] in ("ebr", "spray-and-wait")
    assert gp["eer"] >= 1.5 * gp["maxprop"]
    assert gp["cr"] >= 1.5 * gp["maxprop"]

    # --- latency: MaxProp is never the slowest of the pack
    assert lat["maxprop"] <= max(lat.values())

    # --- control overhead: CR exchanges much less routing state than EER
    cr_rows = sum(y for _, y in rows["cr"])
    eer_rows = sum(y for _, y in rows["eer"])
    assert cr_rows < eer_rows

    # --- sanity: every protocol delivered something at every point
    for protocol in FIGURE2_PROTOCOLS:
        assert all(v > 0 for v in figure.values("delivery_ratio", protocol))
