"""Ablation A2: effect of the message TTL on EER.

Expected shape: longer TTLs give messages more chances to be delivered, so the
delivery ratio rises (and the average latency of delivered messages rises with
it, because late deliveries are no longer censored by expiry).
"""

from __future__ import annotations

import os

from bench_config import ablation_nodes, backend, bench_base, seeds
from repro.analysis.render import figure_to_json
from repro.analysis.series import is_monotonic
from repro.experiments.figures import ablation_ttl
from repro.experiments.tables import format_figure


def test_ttl_sweep_on_eer(benchmark, figure_store):
    ttls = (300.0, 600.0, 1200.0)
    figure = benchmark.pedantic(
        ablation_ttl,
        kwargs=dict(ttls=ttls, protocol="eer", num_nodes=ablation_nodes(), seeds=seeds(), backend=backend(),
                    base=bench_base()),
        rounds=1, iterations=1)

    figure_to_json(figure, os.path.join(figure_store, "ablation_ttl.json"))
    print()
    print(format_figure(figure))

    delivery = figure.series("delivery_ratio", "eer")
    assert len(delivery) == len(ttls)
    # delivery ratio rises with TTL (small tolerance for seed noise)
    assert is_monotonic(delivery, increasing=True, tolerance=0.04)
    # the longest TTL must do strictly better than the shortest
    by_ttl = dict(delivery)
    assert by_ttl[max(ttls)] > by_ttl[min(ttls)]
    # latency of delivered messages grows (or stays) with TTL
    latency = dict(figure.series("average_latency", "eer"))
    assert latency[max(ttls)] >= latency[min(ttls)] * 0.9
