"""Ablation A1: effect of the horizon scaling parameter alpha on EER.

The paper fixes alpha = 0.28 ("a reasonable value from the preliminary
simulations") and omits the sweep for space; this regenerates it.  Expected
shape: the delivery ratio is fairly flat in alpha (the proportional split only
depends on the *ratio* of the two EEVs, which changes slowly with the
horizon), and extreme alphas do not beat the paper's operating point by much.
"""

from __future__ import annotations

import os

from bench_config import ablation_nodes, backend, bench_base, seeds
from repro.analysis.render import figure_to_json
from repro.experiments.figures import ablation_alpha
from repro.experiments.tables import format_figure


def test_alpha_sweep_on_eer(benchmark, figure_store):
    alphas = (0.1, 0.28, 0.6, 1.0)
    figure = benchmark.pedantic(
        ablation_alpha,
        kwargs=dict(alphas=alphas, protocol="eer", num_nodes=ablation_nodes(), seeds=seeds(), backend=backend(),
                    base=bench_base()),
        rounds=1, iterations=1)

    figure_to_json(figure, os.path.join(figure_store, "ablation_alpha.json"))
    print()
    print(format_figure(figure))

    series = dict(figure.series("delivery_ratio", "eer"))
    assert set(series) == set(float(a) for a in alphas)
    values = list(series.values())
    # every alpha yields a functioning protocol
    assert all(v > 0 for v in values)
    # the spread across alphas is modest: the paper's 0.28 is not a knife edge
    assert max(values) - min(values) <= 0.35
    # goodput stays positive everywhere
    assert all(v > 0 for v in figure.values("goodput", "eer"))
