#!/usr/bin/env python
"""Markdown link checker for the repo's documentation (no dependencies).

Scans the given markdown files (default: README.md, DESIGN.md, PAPER.md,
ROADMAP.md and docs/*.md) for inline links and validates every *relative*
link target:

* the referenced file or directory must exist (relative to the file that
  links to it);
* a ``#fragment`` on a markdown target must match a heading in that file
  (GitHub anchor slug rules, simplified).

External links (http/https/mailto) are not fetched — CI must not depend on
the network. Exits 1 listing every broken link, 0 when all links resolve.
"""

from __future__ import annotations

import re
import sys
from functools import lru_cache
from pathlib import Path
from typing import List

#: inline markdown links: [text](target); images share the syntax
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading (lowercase, spaces to dashes)."""
    text = re.sub(r"[`*_~]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


@lru_cache(maxsize=None)
def heading_slugs(path: Path) -> List[str]:
    """All heading anchors available in a markdown file (cached per file)."""
    return [github_slug(match) for match in _HEADING.findall(path.read_text())]


def check_file(path: Path) -> List[str]:
    """Return one error string per broken relative link in *path*."""
    errors: List[str] = []
    text = path.read_text()
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(_EXTERNAL):
            continue
        line = text.count("\n", 0, match.start()) + 1
        base, _, fragment = target.partition("#")
        if not base:
            # intra-document anchor
            if fragment and github_slug(fragment) not in heading_slugs(path):
                errors.append(f"{path}:{line}: missing anchor #{fragment}")
            continue
        resolved = (path.parent / base).resolve()
        if not resolved.exists():
            errors.append(f"{path}:{line}: broken link {target!r} "
                          f"({resolved} does not exist)")
            continue
        if fragment and resolved.suffix == ".md":
            if github_slug(fragment) not in heading_slugs(resolved):
                errors.append(f"{path}:{line}: missing anchor "
                              f"#{fragment} in {base}")
    return errors


def main(argv: List[str]) -> int:
    root = Path(__file__).resolve().parent.parent
    if argv:
        files = [Path(arg) for arg in argv]
    else:
        files = [root / name for name in
                 ("README.md", "DESIGN.md", "PAPER.md", "ROADMAP.md")]
        files += sorted((root / "docs").glob("*.md"))
    files = [path for path in files if path.exists()]
    all_errors: List[str] = []
    for path in files:
        all_errors.extend(check_file(path))
    for error in all_errors:
        print(error, file=sys.stderr)
    print(f"checked {len(files)} files, "
          f"{len(all_errors)} broken link(s)")
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
