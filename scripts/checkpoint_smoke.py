#!/usr/bin/env python
"""CI checkpoint smoke: snapshot a large run, resume it in a fresh process.

Drives the resume-equality contract at the scale tentpole: run the
``rwp-100k`` catalog scenario (shortened) straight through, run it again with
a checkpoint at the cut point, resume that snapshot in a *fresh interpreter*
(the cross-process restore users actually rely on), and require the resumed
canonical report bytes to equal the straight run's.  Writes a JSON artifact
with the snapshot size and the equality verdict; exits non-zero on mismatch.

Usage (CI)::

    python scripts/checkpoint_smoke.py --scenario rwp-100k --sim-time 15 \
        --checkpoint-at 8 --output checkpoint_smoke.json

The ``--resume-report`` mode is the internal child entry point: it loads the
snapshot, runs it to the horizon and prints the canonical report bytes.
"""

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.builder import build_scenario  # noqa: E402
from repro.experiments.catalog import make_scenario  # noqa: E402
from repro.experiments.runner import finalize_report, run_scenario  # noqa: E402
from repro.testing import canonical_report_bytes  # noqa: E402


def build_config(args):
    overrides = {
        "sim_time": args.sim_time,
        "seed": args.seed,
    }
    if args.process_pool:
        overrides.update(world_workers_mode="process",
                         world_workers=args.workers)
    return make_scenario(args.scenario, overrides)


def resume_report(args) -> int:
    """Child mode: restore the snapshot, finish the run, print the report."""
    from repro.checkpoint import load_checkpoint

    restored = load_checkpoint(args.resume_report)
    world = restored.world
    try:
        world.simulator.run(until=restored.config.sim_time)
        payload = canonical_report_bytes(
            finalize_report(world.stats, restored.config))
    finally:
        world.stop()
    sys.stdout.write(payload.decode("utf-8"))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scenario", default="rwp-100k")
    parser.add_argument("--sim-time", type=float, default=15.0)
    parser.add_argument("--checkpoint-at", type=float, default=8.0)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--process-pool", action="store_true",
                        help="run the sharded detector on the shared-memory "
                             "process pool")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--output", default="checkpoint_smoke.json")
    parser.add_argument("--resume-report", metavar="SNAPSHOT",
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)
    if args.resume_report:
        return resume_report(args)

    config = build_config(args)
    print(f"[smoke] straight run: {config.name} to t={config.sim_time:g}",
          flush=True)
    started = time.perf_counter()
    straight = canonical_report_bytes(run_scenario(config))
    straight_seconds = time.perf_counter() - started

    print(f"[smoke] checkpointed run: snapshot at t={args.checkpoint_at:g}",
          flush=True)
    snapshot_path = Path(args.output).resolve().parent / "smoke.ckpt"
    built = build_scenario(config)
    started = time.perf_counter()
    try:
        built.simulator.run(until=args.checkpoint_at)
        built.world.save_checkpoint(str(snapshot_path), config=config)
    finally:
        built.world.stop()
    snapshot_bytes = snapshot_path.stat().st_size
    print(f"[smoke] snapshot: {snapshot_bytes / 1e6:.1f} MB", flush=True)

    print("[smoke] resuming in a fresh process", flush=True)
    started = time.perf_counter()
    child = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()),
         "--resume-report", str(snapshot_path)],
        capture_output=True, text=True)
    resume_seconds = time.perf_counter() - started
    if child.returncode != 0:
        print(child.stderr, file=sys.stderr)
        print("[smoke] FAIL: resume process crashed", file=sys.stderr)
        return 1
    resumed = child.stdout.encode("utf-8")

    equal = resumed == straight
    artifact = {
        "scenario": config.name,
        "num_nodes": config.num_nodes,
        "sim_time": config.sim_time,
        "checkpoint_at": args.checkpoint_at,
        "seed": config.seed,
        "snapshot_bytes": snapshot_bytes,
        "straight_run_seconds": round(straight_seconds, 3),
        "fresh_process_resume_seconds": round(resume_seconds, 3),
        "resume_equal": equal,
    }
    Path(args.output).write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"[smoke] artifact -> {args.output}: "
          f"{json.dumps(artifact, indent=2)}", flush=True)
    if not equal:
        print("[smoke] FAIL: resumed report diverged from the straight run",
              file=sys.stderr)
        return 1
    print("[smoke] OK: resumed report is byte-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
