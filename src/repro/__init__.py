"""Reproduction of Chen & Lou, "On Using Contact Expectation for Routing in
Delay Tolerant Networks" (ICPP 2011).

The package is organised as a small set of substrates (a discrete-event DTN
simulator comparable to the subset of the ONE simulator the paper uses) and
the paper's contributions on top of them:

``repro.sim``
    Discrete-event engine: event queue, simulation clock, periodic processes
    and seeded random-number streams.
``repro.world``
    Nodes, radio interfaces, range-based connectivity detection and the world
    update loop.
``repro.mobility``
    Movement models, including the map-route (bus line) mobility the paper
    evaluates on and a community-structured movement model.
``repro.net``
    Messages, bounded buffers, bandwidth-limited connections and traffic
    generators.
``repro.contacts``
    Per-pair contact histories, the meeting-interval matrix (MI), the
    expected-meeting-delay matrix (MD) and the Dijkstra MEMD solver.
``repro.core``
    The paper's contribution: expected encounter value (Theorem 1), expected
    meeting delay (Theorem 2), expected number of encountering communities
    (Theorem 4), replica splitting, and the EER and CR routing protocols.
``repro.routing``
    Baseline routers: Epidemic, Direct Delivery, First Contact, PRoPHET,
    MaxProp, Spray-and-Wait, Spray-and-Focus and EBR.
``repro.community``
    Community assignment and detection (k-clique, Newman modularity, Clauset
    local detection).
``repro.metrics``
    Event-driven statistics collection and the paper's three metrics
    (delivery ratio, latency, goodput).
``repro.traces``
    Contact-trace export/import (ONE report + CSV), replay and synthetic
    trace generators.
``repro.experiments``
    Scenario configuration and catalog, runners, sweeps and per-figure
    experiment drivers.
``repro.analysis``
    Series assembly, summary statistics and text rendering of figures.
``repro.store``
    Append-only SQLite results store keyed by the canonical
    ``(scenario, protocol, seed, config_hash)`` identity, plus the spool-
    directory experiment service behind ``repro serve``.
``repro.api``
    The stable public facade: blessed entry points (``run``,
    ``run_averaged``, ``sweep``, ``figure``, ``open_store``, ...) that stay
    put across refactors of the packages above.
``repro.cli``
    The ``python -m repro`` command line
    (list/run/sweep/figure/serve/bench).
"""

from repro.version import __version__

__all__ = ["__version__"]
