"""The experiment service: queued run requests against one results store.

``repro serve SPOOL --store PATH`` turns the experiment layer into a small
job-queue worker: JSON request files dropped into a *spool directory* are
picked up (oldest name first), executed cell by cell against the shared
results store, and answered with a result file — with one progress line
streamed per resolved cell.  Because every cell goes through the store,
requests dedupe against each other and against past sweeps: re-queueing a
finished request costs nothing, and a worker killed mid-grid resumes from
exactly the cells it completed.

Request file format (``<spool>/<name>.json``)::

    {
      "scenario":  "bench",              # catalog name (required)
      "overrides": {"sim_time": 600},    # optional, --set semantics
      "seeds":     [1, 2, 3],            # optional, default [1]
      "grid":      {"message_copies": [4, 8]}   # optional: makes it a sweep
    }

Lifecycle: a processed request moves to ``<spool>/done/`` next to a
``<name>.result.json`` payload; a failed one moves to ``<spool>/failed/``
next to a ``<name>.error.json``.  Files are claimed by renaming into
``<spool>/work/`` first, so several workers can drain one spool without
double-running a request.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments.backend import BackendLike
from repro.experiments.catalog import make_scenario
from repro.experiments.runner import run_many_averaged
from repro.experiments.scenario import ScenarioConfig, apply_overrides
from repro.experiments.sweep import sweep_grid
from repro.store.results import ResultsStore

#: an emit callback: one dict per event (progress line / request lifecycle)
EmitCallback = Callable[[Dict[str, object]], None]


@dataclass
class RunRequest:
    """One queued request: a scenario, overrides, seeds and optional grid."""

    request_id: str
    scenario: str
    overrides: Dict[str, object] = field(default_factory=dict)
    seeds: List[int] = field(default_factory=lambda: [1])
    grid: Optional[Dict[str, List[object]]] = None

    @classmethod
    def from_payload(cls, payload: Dict[str, object], *,
                     request_id: str) -> "RunRequest":
        """Validate and build a request from a spool file's JSON payload."""
        if not isinstance(payload, dict):
            raise ValueError("request payload must be a JSON object")
        unknown = set(payload) - {"scenario", "overrides", "seeds", "grid",
                                  "id"}
        if unknown:
            raise ValueError(f"unknown request fields: {sorted(unknown)}")
        scenario = payload.get("scenario")
        if not isinstance(scenario, str) or not scenario:
            raise ValueError("request needs a 'scenario' catalog name")
        seeds = payload.get("seeds", [1])
        if (not isinstance(seeds, list) or not seeds
                or not all(isinstance(seed, int) for seed in seeds)):
            raise ValueError("'seeds' must be a non-empty list of ints")
        overrides = payload.get("overrides", {})
        if not isinstance(overrides, dict):
            raise ValueError("'overrides' must be an object")
        grid = payload.get("grid")
        if grid is not None and (
                not isinstance(grid, dict)
                or not all(isinstance(values, list) and values
                           for values in grid.values())):
            raise ValueError("'grid' must map fields to non-empty lists")
        return cls(request_id=str(payload.get("id", request_id)),
                   scenario=scenario, overrides=dict(overrides),
                   seeds=list(seeds), grid=grid)

    def base_config(self) -> ScenarioConfig:
        """The request's base scenario with its overrides applied."""
        return make_scenario(self.scenario, self.overrides)

    def cell_configs(self) -> List[ScenarioConfig]:
        """Every grid cell's config (one, for a plain run), seeds excluded."""
        base = self.base_config()
        if self.grid is None:
            return [base]
        return [apply_overrides(base, overrides)
                for overrides in sweep_grid(base, self.grid)]


def process_request(request: RunRequest, store: ResultsStore, *,
                    backend: BackendLike = None,
                    emit: Optional[EmitCallback] = None) -> Dict[str, object]:
    """Execute one request against *store*; returns the result payload.

    Every config × seed cell resolves through the store (cached cells are
    served, missing ones simulated and appended as they finish); *emit*
    receives one progress event per cell, tagged with the request id.
    """
    counts = {"cached": 0, "computed": 0}

    def progress(event: Dict[str, object]) -> None:
        counts[str(event["status"])] += 1
        if emit is not None:
            emit({"request": request.request_id, **event})

    results = run_many_averaged(request.cell_configs(), request.seeds,
                                backend=backend, store=store,
                                progress=progress)
    if request.grid is None:
        points = [{"overrides": {}, "summary": results[0].as_dict()}]
    else:
        points = [{"overrides": overrides, "summary": result.as_dict()}
                  for overrides, result in
                  zip(sweep_grid(request.base_config(), request.grid),
                      results)]
    return {
        "request": request.request_id,
        "scenario": request.scenario,
        "seeds": list(request.seeds),
        "grid": request.grid,
        "cells_cached": counts["cached"],
        "cells_computed": counts["computed"],
        "points": points,
    }


def _spool_requests(spool: str) -> List[str]:
    """Unclaimed request files in the spool root, oldest name first."""
    try:
        names = os.listdir(spool)
    except FileNotFoundError:
        raise ValueError(f"spool directory {spool!r} does not exist") from None
    return sorted(name for name in names
                  if name.endswith(".json")
                  and os.path.isfile(os.path.join(spool, name)))


def _claim(spool: str, name: str) -> Optional[str]:
    """Atomically move a request into ``work/``; None if another worker won."""
    os.makedirs(os.path.join(spool, "work"), exist_ok=True)
    claimed = os.path.join(spool, "work", name)
    try:
        os.rename(os.path.join(spool, name), claimed)
    except (FileNotFoundError, PermissionError):
        return None
    return claimed


def _finish(spool: str, claimed: str, outcome: str,
            payload: Dict[str, object]) -> None:
    """Move a claimed request to ``done/``/``failed/`` with its payload."""
    name = os.path.basename(claimed)
    directory = os.path.join(spool, outcome)
    os.makedirs(directory, exist_ok=True)
    stem = name[:-len(".json")]
    suffix = "result" if outcome == "done" else "error"
    with open(os.path.join(directory, f"{stem}.{suffix}.json"), "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    os.replace(claimed, os.path.join(directory, name))


def serve(spool: str, store: ResultsStore, *, once: bool = False,
          poll: float = 2.0, backend: BackendLike = None,
          emit: Optional[EmitCallback] = None,
          max_requests: Optional[int] = None) -> Dict[str, object]:
    """Drain (and optionally keep watching) a spool of run requests.

    Parameters
    ----------
    spool:
        Spool directory; ``*.json`` files in its root are requests.
    store:
        The shared results store every cell resolves through.
    once:
        Drain the requests currently queued, then return (the CI/test
        mode).  Otherwise poll every *poll* seconds until interrupted.
    backend:
        Execution backend for each request's cells.
    emit:
        Receives per-cell progress events and per-request lifecycle events
        (``event: "request"`` with ``status`` ``"done"``/``"failed"``).
    max_requests:
        Stop after this many processed requests (mainly for tests).

    Returns the service summary (requests processed/failed, cell counts).
    """
    if poll <= 0:
        raise ValueError("poll interval must be positive")
    summary = {"requests_done": 0, "requests_failed": 0,
               "cells_cached": 0, "cells_computed": 0}

    def finished() -> bool:
        total = summary["requests_done"] + summary["requests_failed"]
        return max_requests is not None and total >= max_requests

    try:
        while True:
            names = _spool_requests(spool)
            for name in names:
                if finished():
                    return summary
                claimed = _claim(spool, name)
                if claimed is None:
                    continue
                try:
                    with open(claimed) as handle:
                        payload = json.load(handle)
                    request = RunRequest.from_payload(
                        payload, request_id=name[:-len(".json")])
                    result = process_request(request, store, backend=backend,
                                             emit=emit)
                except (KeyError, ValueError, TypeError,
                        json.JSONDecodeError) as error:
                    summary["requests_failed"] += 1
                    message = error.args[0] if error.args else str(error)
                    _finish(spool, claimed, "failed",
                            {"request": name[:-len(".json")],
                             "error": str(message)})
                    if emit is not None:
                        emit({"event": "request", "status": "failed",
                              "request": name[:-len(".json")],
                              "error": str(message)})
                else:
                    summary["requests_done"] += 1
                    summary["cells_cached"] += int(result["cells_cached"])
                    summary["cells_computed"] += int(result["cells_computed"])
                    _finish(spool, claimed, "done", result)
                    if emit is not None:
                        emit({"event": "request", "status": "done",
                              "request": request.request_id,
                              "cells_cached": result["cells_cached"],
                              "cells_computed": result["cells_computed"]})
            if once or finished():
                return summary
            time.sleep(poll)
    except KeyboardInterrupt:  # pragma: no cover - interactive mode only
        return summary
