"""The append-only, content-addressed results store.

A :class:`ResultsStore` is a single SQLite file (stdlib :mod:`sqlite3`, no
extra dependencies) holding one row per *completed simulation run*, keyed by
the canonical identity

    ``(scenario_name, protocol, seed, config_hash)``

where ``config_hash`` is :meth:`ScenarioConfig.config_hash()
<repro.experiments.scenario.ScenarioConfig.config_hash>` — a SHA-256 over the
scenario's canonical identity payload (fields sorted, defaults dropped,
name/seed excluded).  Two configs collide exactly when they describe the same
physics of the same named cell, so a store lookup is an *exact* dedupe: the
experiment drivers skip a cell iff rerunning it would reproduce the stored
report byte for byte.

The store is append-only by construction: :meth:`ResultsStore.put` is an
``INSERT OR IGNORE`` (first write wins, duplicates are dropped, nothing is
ever updated or deleted), each put commits its own transaction, and SQLite's
locking makes concurrent writers — several sweep processes sharing one store
file — safe without coordination (WAL journal + busy timeout).

Each row carries provenance: the repro version that produced it, a UTC
timestamp and the wall-clock seconds the run took.  The payloads are the
*canonical* serialisations — ``ScenarioConfig.canonical_payload()`` and
``SimulationReport.as_dict()`` (timings excluded) with sorted keys — so a
report loaded from the store compares byte-identical to a fresh run of the
same cell.  See ``docs/results-store.md``.
"""

from __future__ import annotations

import datetime
import json
import sqlite3
import threading
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.scenario import ScenarioConfig
from repro.metrics.reports import SimulationReport
from repro.version import __version__

#: results-store schema version (bumped on incompatible layout changes)
SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS store_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS results (
    scenario_name TEXT    NOT NULL,
    protocol      TEXT    NOT NULL,
    seed          INTEGER NOT NULL,
    config_hash   TEXT    NOT NULL,
    config_json   TEXT    NOT NULL,
    report_json   TEXT    NOT NULL,
    repro_version TEXT    NOT NULL,
    created_utc   TEXT    NOT NULL,
    wall_seconds  REAL,
    PRIMARY KEY (scenario_name, protocol, seed, config_hash)
);
"""


class StoreError(Exception):
    """A results-store file is unusable (wrong schema, not a store, ...)."""


def _utc_now() -> str:
    return datetime.datetime.now(datetime.timezone.utc).isoformat(
        timespec="seconds")


def canonical_report_json(report: SimulationReport) -> str:
    """The canonical JSON form of a report (sorted keys, timings excluded).

    This is the stored byte form; it round-trips exactly through
    :meth:`SimulationReport.from_dict`.
    """
    return json.dumps(report.as_dict(), sort_keys=True)


class ResultsStore:
    """Append-only store of simulation reports keyed by canonical identity.

    Parameters
    ----------
    path:
        SQLite file path (created if missing) or ``":memory:"`` for an
        ephemeral store.
    timeout:
        Seconds a write waits on another process's lock before failing.

    The instance is a context manager (``with open_store(p) as store:``) and
    is safe to share across threads (one internal lock serialises access to
    the connection; cross-process safety comes from SQLite itself).
    """

    def __init__(self, path: str, *, timeout: float = 30.0) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._connection = sqlite3.connect(
            path, timeout=timeout, check_same_thread=False)
        try:
            self._initialise()
        except sqlite3.DatabaseError as error:
            self._connection.close()
            raise StoreError(
                f"{path!r} is not a usable results store: {error}") from error

    def _initialise(self) -> None:
        with self._lock:
            if self.path != ":memory:":
                # WAL lets readers proceed under a writer and is the mode
                # SQLite recommends for multi-process append workloads
                self._connection.execute("PRAGMA journal_mode=WAL")
            self._connection.executescript(_SCHEMA)
            row = self._connection.execute(
                "SELECT value FROM store_meta WHERE key='schema_version'"
            ).fetchone()
            if row is None:
                self._connection.execute(
                    "INSERT INTO store_meta (key, value) VALUES (?, ?)",
                    ("schema_version", str(SCHEMA_VERSION)))
                self._connection.execute(
                    "INSERT OR IGNORE INTO store_meta (key, value) "
                    "VALUES (?, ?)", ("created_utc", _utc_now()))
                self._connection.commit()
            elif int(row[0]) != SCHEMA_VERSION:
                raise sqlite3.DatabaseError(
                    f"store schema version {row[0]} != supported "
                    f"{SCHEMA_VERSION}")

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        with self._lock:
            if self._connection is not None:
                self._connection.close()
                self._connection = None

    def __enter__(self) -> "ResultsStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ResultsStore {self.path!r} ({len(self)} results)>"

    def _execute(self, sql: str, parameters: Sequence[object] = ()):
        with self._lock:
            if self._connection is None:
                raise StoreError(f"store {self.path!r} is closed")
            return self._connection.execute(sql, parameters)

    # ----------------------------------------------------------------- writes
    def put(self, config: ScenarioConfig, report: SimulationReport, *,
            wall_seconds: Optional[float] = None) -> bool:
        """Record one finished run; returns whether a new row was written.

        First write wins: a second put of the same identity key is ignored
        (append-only, never an update), so concurrent writers racing on one
        cell both succeed and the store keeps exactly one row.
        """
        key = config.identity_key()
        row = (
            key[0], key[1], key[2], key[3],
            json.dumps(config.canonical_payload(), sort_keys=True),
            canonical_report_json(report),
            __version__,
            _utc_now(),
            None if wall_seconds is None else float(wall_seconds),
        )
        with self._lock:
            if self._connection is None:
                raise StoreError(f"store {self.path!r} is closed")
            cursor = self._connection.execute(
                "INSERT OR IGNORE INTO results (scenario_name, protocol, "
                "seed, config_hash, config_json, report_json, repro_version, "
                "created_utc, wall_seconds) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                row)
            self._connection.commit()
            return cursor.rowcount > 0

    # ------------------------------------------------------------------ reads
    def get(self, config: ScenarioConfig) -> Optional[SimulationReport]:
        """The stored report for *config*'s identity, or ``None``."""
        row = self._execute(
            "SELECT report_json FROM results WHERE scenario_name=? AND "
            "protocol=? AND seed=? AND config_hash=?",
            config.identity_key()).fetchone()
        if row is None:
            return None
        return SimulationReport.from_dict(json.loads(row[0]))

    def get_many(self, configs: Sequence[ScenarioConfig]
                 ) -> List[Optional[SimulationReport]]:
        """One :meth:`get` per config, in order (``None`` for misses)."""
        return [self.get(config) for config in configs]

    def __contains__(self, config: ScenarioConfig) -> bool:
        return self.get(config) is not None

    def __len__(self) -> int:
        return int(self._execute("SELECT COUNT(*) FROM results").fetchone()[0])

    def keys(self) -> List[Tuple[str, str, int, str]]:
        """Every stored identity key, in insertion (append) order."""
        rows = self._execute(
            "SELECT scenario_name, protocol, seed, config_hash FROM results "
            "ORDER BY rowid").fetchall()
        return [(name, protocol, int(seed), config_hash)
                for name, protocol, seed, config_hash in rows]

    def provenance(self, config: ScenarioConfig) -> Optional[Dict[str, object]]:
        """Provenance of the stored run for *config* (``None`` on a miss)."""
        row = self._execute(
            "SELECT repro_version, created_utc, wall_seconds FROM results "
            "WHERE scenario_name=? AND protocol=? AND seed=? AND "
            "config_hash=?", config.identity_key()).fetchone()
        if row is None:
            return None
        return {"repro_version": row[0], "created_utc": row[1],
                "wall_seconds": row[2]}

    def summary(self) -> Dict[str, object]:
        """Store-level summary (path, size, per-scenario counts)."""
        rows = self._execute(
            "SELECT scenario_name, protocol, COUNT(*) FROM results "
            "GROUP BY scenario_name, protocol "
            "ORDER BY scenario_name, protocol").fetchall()
        return {
            "path": self.path,
            "schema_version": SCHEMA_VERSION,
            "results": len(self),
            "cells": [{"scenario": name, "protocol": protocol,
                       "runs": int(count)} for name, protocol, count in rows],
        }


def open_store(path: str, *, timeout: float = 30.0) -> ResultsStore:
    """Open (creating if necessary) the results store at *path*."""
    return ResultsStore(path, timeout=timeout)
