"""Results store and experiment service.

:mod:`repro.store.results` holds the append-only SQLite results store keyed
by the canonical ``(scenario_name, protocol, seed, config_hash)`` identity;
:mod:`repro.store.service` turns a spool directory of queued run requests
into a job queue draining into one store (``repro serve``).  See
``docs/results-store.md``.
"""

from repro.store.results import (
    SCHEMA_VERSION,
    ResultsStore,
    StoreError,
    canonical_report_json,
    open_store,
)
from repro.store.service import (
    RunRequest,
    process_request,
    serve,
)

__all__ = [
    "SCHEMA_VERSION",
    "ResultsStore",
    "StoreError",
    "canonical_report_json",
    "open_store",
    "RunRequest",
    "process_request",
    "serve",
]
