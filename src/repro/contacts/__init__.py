"""Contact bookkeeping: histories, the MI / MD matrices and the MEMD solver."""

from repro.contacts.history import ContactHistory, ContactHistoryReference
from repro.contacts.mi_matrix import MeetingIntervalMatrix
from repro.contacts.md_matrix import build_delay_matrix
from repro.contacts.memd import (
    MemdCache,
    dijkstra_delays,
    dijkstra_delays_reference,
    minimum_expected_meeting_delay,
)

__all__ = [
    "ContactHistory",
    "ContactHistoryReference",
    "MeetingIntervalMatrix",
    "MemdCache",
    "build_delay_matrix",
    "dijkstra_delays",
    "dijkstra_delays_reference",
    "minimum_expected_meeting_delay",
]
