"""Contact bookkeeping: histories, the MI / MD matrices and the MEMD solver."""

from repro.contacts.history import ContactHistory
from repro.contacts.mi_matrix import MeetingIntervalMatrix
from repro.contacts.md_matrix import build_delay_matrix
from repro.contacts.memd import (
    dijkstra_delays,
    dijkstra_delays_reference,
    minimum_expected_meeting_delay,
)

__all__ = [
    "ContactHistory",
    "MeetingIntervalMatrix",
    "build_delay_matrix",
    "dijkstra_delays",
    "dijkstra_delays_reference",
    "minimum_expected_meeting_delay",
]
