"""Per-node contact histories.

Each node keeps, for every peer it has ever met, a bounded sliding window of
*meeting intervals* (the time between the starts of consecutive contacts) and
the time of the last contact.  This is exactly the state the paper's
Theorems 1, 2 and 4 consume: the recorded set
:math:`R_{ij} = \\{\\Delta t^{ij}_1, ..., \\Delta t^{ij}_{r_{ij}}\\}` and
:math:`t^{ij}_0`.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional


class ContactHistory:
    """Sliding-window record of meeting intervals with every peer.

    Parameters
    ----------
    owner_id:
        The node this history belongs to (used only for error messages and
        sanity checks).
    window_size:
        Maximum number of meeting intervals kept per peer; older intervals
        fall out of the window (the paper's "set of sliding windows").
    """

    def __init__(self, owner_id: int, window_size: int = 20) -> None:
        if window_size < 1:
            raise ValueError("window_size must be at least 1")
        self.owner_id = int(owner_id)
        self.window_size = int(window_size)
        self._intervals: Dict[int, Deque[float]] = {}
        self._last_contact: Dict[int, float] = {}
        self._contact_counts: Dict[int, int] = {}

    # ---------------------------------------------------------------- record
    def record_contact(self, peer_id: int, now: float) -> Optional[float]:
        """Record a contact with *peer_id* starting at time *now*.

        Returns the meeting interval added to the window (``None`` for the
        very first contact with this peer, which only sets
        :math:`t^{ij}_0`).
        """
        peer_id = int(peer_id)
        if peer_id == self.owner_id:
            raise ValueError("a node cannot record a contact with itself")
        if now < 0:
            raise ValueError("contact time must be non-negative")
        last = self._last_contact.get(peer_id)
        interval: Optional[float] = None
        if last is not None:
            if now < last:
                raise ValueError(
                    f"contact at t={now} precedes the last recorded contact at t={last}")
            interval = now - last
            window = self._intervals.setdefault(
                peer_id, deque(maxlen=self.window_size))
            window.append(interval)
        self._last_contact[peer_id] = float(now)
        self._contact_counts[peer_id] = self._contact_counts.get(peer_id, 0) + 1
        return interval

    # ----------------------------------------------------------------- query
    def peers(self) -> List[int]:
        """Peers this node has met at least once."""
        return list(self._last_contact)

    def has_met(self, peer_id: int) -> bool:
        """Whether the node has ever met *peer_id*."""
        return int(peer_id) in self._last_contact

    def contact_count(self, peer_id: int) -> int:
        """Number of contacts recorded with *peer_id*."""
        return self._contact_counts.get(int(peer_id), 0)

    def intervals(self, peer_id: int) -> List[float]:
        """The recorded meeting intervals with *peer_id* (may be empty)."""
        window = self._intervals.get(int(peer_id))
        return list(window) if window is not None else []

    def last_contact(self, peer_id: int) -> Optional[float]:
        """Start time of the most recent contact with *peer_id*, or ``None``."""
        return self._last_contact.get(int(peer_id))

    def elapsed_since(self, peer_id: int, now: float) -> Optional[float]:
        """Elapsed time since the last contact with *peer_id*, or ``None``."""
        last = self._last_contact.get(int(peer_id))
        if last is None:
            return None
        return max(0.0, now - last)

    def mean_interval(self, peer_id: int) -> Optional[float]:
        """Average recorded meeting interval with *peer_id*.

        This is the value :math:`I_{ij}` that populates the node's own row of
        the MI matrix.  ``None`` if fewer than one interval is recorded.
        """
        window = self._intervals.get(int(peer_id))
        if not window:
            return None
        return sum(window) / len(window)

    def total_intervals(self) -> int:
        """Total number of recorded intervals across all peers."""
        return sum(len(w) for w in self._intervals.values())

    def snapshot(self) -> Dict[int, List[float]]:
        """A copy of all windows (peer -> interval list), for inspection."""
        return {peer: list(window) for peer, window in self._intervals.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ContactHistory(owner={self.owner_id}, peers={len(self._last_contact)}, "
                f"intervals={self.total_intervals()})")
