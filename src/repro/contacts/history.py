"""Per-node contact histories.

Each node keeps, for every peer it has ever met, a bounded sliding window of
*meeting intervals* (the time between the starts of consecutive contacts) and
the time of the last contact.  This is exactly the state the paper's
Theorems 1, 2 and 4 consume: the recorded set
:math:`R_{ij} = \\{\\Delta t^{ij}_1, ..., \\Delta t^{ij}_{r_{ij}}\\}` and
:math:`t^{ij}_0`.

Two implementations share one interface:

* :class:`ContactHistory` — the production store.  All windows live in a
  single preallocated ``(peers, window)`` NumPy matrix (grown geometrically
  as new peers appear) alongside last-contact / contact-count vectors, so the
  EER/CR estimators (Theorems 1, 2 and 4) can reduce over *every* peer in a
  handful of vectorized operations instead of one Python loop iteration per
  peer.  Rows are kept in chronological order (append shifts left once the
  window is full), which lets the batch kernels in
  :mod:`repro.core.expectation` reproduce the reference implementations'
  left-to-right summation order bit for bit.
* :class:`ContactHistoryReference` — the original dict-of-deques
  implementation, kept as the semantic oracle for the property-based parity
  tests and as the pure-Python baseline mode of ``python -m repro bench``.

Both expose a monotonically increasing :attr:`~ContactHistory.version` that
changes whenever recorded state changes; the MEMD delay-vector cache
(:class:`repro.contacts.memd.MemdCache`) keys on it.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np


class ContactHistory:
    """Sliding-window record of meeting intervals with every peer.

    Parameters
    ----------
    owner_id:
        The node this history belongs to (used only for error messages and
        sanity checks).
    window_size:
        Maximum number of meeting intervals kept per peer; older intervals
        fall out of the window (the paper's "set of sliding windows").
    """

    __slots__ = ("owner_id", "window_size", "version", "_slots", "_peer_ids",
                 "_intervals", "_counts", "_last", "_contact_counts", "_size")

    #: initial number of preallocated peer rows; grown by doubling
    _INITIAL_CAPACITY = 8

    def __init__(self, owner_id: int, window_size: int = 20) -> None:
        if window_size < 1:
            raise ValueError("window_size must be at least 1")
        self.owner_id = int(owner_id)
        self.window_size = int(window_size)
        #: bumped on every recorded contact (cache key for MEMD vectors)
        self.version = 0
        self._slots: Dict[int, int] = {}
        capacity = self._INITIAL_CAPACITY
        self._peer_ids = np.full(capacity, -1, dtype=np.int64)
        self._intervals = np.zeros((capacity, self.window_size), dtype=float)
        self._counts = np.zeros(capacity, dtype=np.int64)
        self._last = np.full(capacity, np.nan, dtype=float)
        self._contact_counts = np.zeros(capacity, dtype=np.int64)
        self._size = 0

    # ----------------------------------------------------------------- sizing
    def _grow(self) -> None:
        capacity = 2 * len(self._peer_ids)
        peer_ids = np.full(capacity, -1, dtype=np.int64)
        peer_ids[:self._size] = self._peer_ids[:self._size]
        intervals = np.zeros((capacity, self.window_size), dtype=float)
        intervals[:self._size] = self._intervals[:self._size]
        counts = np.zeros(capacity, dtype=np.int64)
        counts[:self._size] = self._counts[:self._size]
        last = np.full(capacity, np.nan, dtype=float)
        last[:self._size] = self._last[:self._size]
        contact_counts = np.zeros(capacity, dtype=np.int64)
        contact_counts[:self._size] = self._contact_counts[:self._size]
        self._peer_ids = peer_ids
        self._intervals = intervals
        self._counts = counts
        self._last = last
        self._contact_counts = contact_counts

    # ---------------------------------------------------------------- record
    def record_contact(self, peer_id: int, now: float) -> Optional[float]:
        """Record a contact with *peer_id* starting at time *now*.

        Returns the meeting interval added to the window (``None`` for the
        very first contact with this peer, which only sets
        :math:`t^{ij}_0`).
        """
        peer_id = int(peer_id)
        if peer_id == self.owner_id:
            raise ValueError("a node cannot record a contact with itself")
        if now < 0:
            raise ValueError("contact time must be non-negative")
        slot = self._slots.get(peer_id)
        self.version += 1
        if slot is None:
            if self._size == len(self._peer_ids):
                self._grow()
            slot = self._size
            self._size += 1
            self._slots[peer_id] = slot
            self._peer_ids[slot] = peer_id
            self._last[slot] = float(now)
            self._contact_counts[slot] = 1
            return None
        last = self._last[slot]
        if now < last:
            raise ValueError(
                f"contact at t={now} precedes the last recorded contact at t={last}")
        interval = float(now) - float(last)
        count = self._counts[slot]
        row = self._intervals[slot]
        if count == self.window_size:
            # window full: shift left one step to keep chronological order
            row[:-1] = row[1:]
            row[-1] = interval
        else:
            row[count] = interval
            self._counts[slot] = count + 1
        self._last[slot] = float(now)
        self._contact_counts[slot] += 1
        return interval

    # ----------------------------------------------------------------- query
    def peers(self) -> List[int]:
        """Peers this node has met at least once (first-met order)."""
        return list(self._slots)

    def has_met(self, peer_id: int) -> bool:
        """Whether the node has ever met *peer_id*."""
        return int(peer_id) in self._slots

    def contact_count(self, peer_id: int) -> int:
        """Number of contacts recorded with *peer_id*."""
        slot = self._slots.get(int(peer_id))
        return 0 if slot is None else int(self._contact_counts[slot])

    def intervals(self, peer_id: int) -> List[float]:
        """The recorded meeting intervals with *peer_id* (chronological)."""
        slot = self._slots.get(int(peer_id))
        if slot is None:
            return []
        count = int(self._counts[slot])
        return self._intervals[slot, :count].tolist()

    def last_contact(self, peer_id: int) -> Optional[float]:
        """Start time of the most recent contact with *peer_id*, or ``None``."""
        slot = self._slots.get(int(peer_id))
        return None if slot is None else float(self._last[slot])

    def elapsed_since(self, peer_id: int, now: float) -> Optional[float]:
        """Elapsed time since the last contact with *peer_id*, or ``None``."""
        slot = self._slots.get(int(peer_id))
        if slot is None:
            return None
        return max(0.0, now - float(self._last[slot]))

    def mean_interval(self, peer_id: int) -> Optional[float]:
        """Average recorded meeting interval with *peer_id*.

        This is the value :math:`I_{ij}` that populates the node's own row of
        the MI matrix.  ``None`` if fewer than one interval is recorded.
        The sum runs left to right over the chronological window, matching
        the reference implementation's sequential ``sum()`` exactly.
        """
        slot = self._slots.get(int(peer_id))
        if slot is None:
            return None
        count = int(self._counts[slot])
        if count == 0:
            return None
        return sum(self._intervals[slot, :count].tolist()) / count

    def total_intervals(self) -> int:
        """Total number of recorded intervals across all peers."""
        return int(self._counts[:self._size].sum())

    def snapshot(self) -> Dict[int, List[float]]:
        """A copy of all non-empty windows (peer -> interval list)."""
        return {peer: window for peer in self._slots
                if (window := self.intervals(peer))}

    # ----------------------------------------------------------- batch access
    def slot_of(self, peer_id: int) -> Optional[int]:
        """Row index of *peer_id* in the interval matrix, or ``None``."""
        return self._slots.get(int(peer_id))

    def interval_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Zero-copy views of the recorded state for the batch estimators.

        Returns
        -------
        (peer_ids, intervals, counts, last_contact)
            ``peer_ids``: ``(p,)`` int64 ids in first-met order;
            ``intervals``: ``(p, window)`` chronological interval matrix
            (entries at column >= ``counts[row]`` are unspecified);
            ``counts``: ``(p,)`` valid-interval counts per row;
            ``last_contact``: ``(p,)`` last contact start times.

        The views alias live storage: treat them as read-only and re-fetch
        after any :meth:`record_contact`.
        """
        size = self._size
        return (self._peer_ids[:size], self._intervals[:size],
                self._counts[:size], self._last[:size])

    def contact_count_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Zero-copy ``(peer_ids, contact_counts)`` views for graph builders.

        ``contact_counts[row]`` is the total number of recorded contacts with
        ``peer_ids[row]`` (not the window-bounded interval count).  Same
        aliasing contract as :meth:`interval_arrays`: read-only, re-fetch
        after any :meth:`record_contact`.
        """
        size = self._size
        return self._peer_ids[:size], self._contact_counts[:size]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ContactHistory(owner={self.owner_id}, peers={self._size}, "
                f"intervals={self.total_intervals()})")


class ContactHistoryReference:
    """The original dict-of-deques contact history.

    Semantically identical to :class:`ContactHistory`; kept as the oracle for
    the property-based parity tests and as the pure-Python baseline the
    benchmark harness measures the vectorized store against.  See the module
    docstring.
    """

    def __init__(self, owner_id: int, window_size: int = 20) -> None:
        if window_size < 1:
            raise ValueError("window_size must be at least 1")
        self.owner_id = int(owner_id)
        self.window_size = int(window_size)
        self.version = 0
        self._intervals: Dict[int, Deque[float]] = {}
        self._last_contact: Dict[int, float] = {}
        self._contact_counts: Dict[int, int] = {}

    # ---------------------------------------------------------------- record
    def record_contact(self, peer_id: int, now: float) -> Optional[float]:
        """Record a contact with *peer_id* starting at time *now*."""
        peer_id = int(peer_id)
        if peer_id == self.owner_id:
            raise ValueError("a node cannot record a contact with itself")
        if now < 0:
            raise ValueError("contact time must be non-negative")
        last = self._last_contact.get(peer_id)
        interval: Optional[float] = None
        if last is not None:
            if now < last:
                raise ValueError(
                    f"contact at t={now} precedes the last recorded contact at t={last}")
            interval = now - last
            window = self._intervals.setdefault(
                peer_id, deque(maxlen=self.window_size))
            window.append(interval)
        self._last_contact[peer_id] = float(now)
        self._contact_counts[peer_id] = self._contact_counts.get(peer_id, 0) + 1
        self.version += 1
        return interval

    # ----------------------------------------------------------------- query
    def peers(self) -> List[int]:
        """Peers this node has met at least once."""
        return list(self._last_contact)

    def has_met(self, peer_id: int) -> bool:
        """Whether the node has ever met *peer_id*."""
        return int(peer_id) in self._last_contact

    def contact_count(self, peer_id: int) -> int:
        """Number of contacts recorded with *peer_id*."""
        return self._contact_counts.get(int(peer_id), 0)

    def intervals(self, peer_id: int) -> List[float]:
        """The recorded meeting intervals with *peer_id* (may be empty)."""
        window = self._intervals.get(int(peer_id))
        return list(window) if window is not None else []

    def last_contact(self, peer_id: int) -> Optional[float]:
        """Start time of the most recent contact with *peer_id*, or ``None``."""
        return self._last_contact.get(int(peer_id))

    def elapsed_since(self, peer_id: int, now: float) -> Optional[float]:
        """Elapsed time since the last contact with *peer_id*, or ``None``."""
        last = self._last_contact.get(int(peer_id))
        if last is None:
            return None
        return max(0.0, now - last)

    def mean_interval(self, peer_id: int) -> Optional[float]:
        """Average recorded meeting interval with *peer_id*."""
        window = self._intervals.get(int(peer_id))
        if not window:
            return None
        return sum(window) / len(window)

    def total_intervals(self) -> int:
        """Total number of recorded intervals across all peers."""
        return sum(len(w) for w in self._intervals.values())

    def snapshot(self) -> Dict[int, List[float]]:
        """A copy of all windows (peer -> interval list), for inspection."""
        return {peer: list(window) for peer, window in self._intervals.items()}

    def contact_count_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(peer_ids, contact_counts)`` arrays (built on demand here).

        Interface parity with :meth:`ContactHistory.contact_count_arrays` so
        the graph builders accept either implementation; the reference store
        materializes fresh arrays from its dicts.
        """
        peers = np.fromiter(self._last_contact, dtype=np.int64,
                            count=len(self._last_contact))
        counts = np.fromiter((self._contact_counts[p] for p in peers),
                             dtype=np.int64, count=len(peers))
        return peers, counts

    # NOTE: deliberately no interval_arrays() here — the estimator dispatch
    # in repro.core.expectation keys on that attribute to decide between
    # the batch kernels and the pure-Python reference loops, and this class
    # exists precisely to exercise (and benchmark against) the loops.  The
    # graph builders fall back to the scalar API for histories without it.

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ContactHistoryReference(owner={self.owner_id}, "
                f"peers={len(self._last_contact)}, "
                f"intervals={self.total_intervals()})")
