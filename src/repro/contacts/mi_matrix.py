"""The meeting-interval matrix (MI).

Every EER node maintains an ``n x n`` matrix of average meeting intervals
:math:`I_{ij}`.  A node is authoritative only for its own row; the rest of the
matrix is learned by exchanging rows with encountered peers.  Each row carries
a *last update time*; during an exchange only rows with fresher timestamps are
copied (the paper's footnote 1), which is what the control-overhead metric of
the CR comparison counts.
"""

from __future__ import annotations

from typing import Dict

import numpy as np


class MeetingIntervalMatrix:
    """An exchangeable matrix of average pairwise meeting intervals.

    Unknown entries are ``inf`` (never-met pairs have no finite expected
    meeting interval); diagonal entries are 0 by definition.

    Parameters
    ----------
    num_nodes:
        Total number of nodes ``n`` in the network (node ids ``0..n-1``).
    owner_id:
        The node this instance belongs to.
    """

    def __init__(self, num_nodes: int, owner_id: int) -> None:
        if num_nodes < 1:
            raise ValueError("num_nodes must be positive")
        if not 0 <= owner_id < num_nodes:
            raise ValueError(f"owner_id {owner_id} out of range for n={num_nodes}")
        self.num_nodes = int(num_nodes)
        self.owner_id = int(owner_id)
        self._values = np.full((num_nodes, num_nodes), np.inf)
        np.fill_diagonal(self._values, 0.0)
        self._row_updated = np.full(num_nodes, -np.inf)
        self._version = 0

    # ------------------------------------------------------------------ views
    @property
    def values(self) -> np.ndarray:
        """The ``(n, n)`` matrix (a live view; treat as read-only)."""
        return self._values

    @property
    def row_update_times(self) -> np.ndarray:
        """Per-row last-update timestamps (``-inf`` for never-updated rows)."""
        return self._row_updated

    @property
    def version(self) -> int:
        """Counter bumped whenever a stored *value* actually changes.

        Timestamp-only refreshes (re-recording an unchanged own row, merges
        that copy zero rows) leave it untouched, so the MEMD delay-vector
        cache (:class:`repro.contacts.memd.MemdCache`) is invalidated only
        when a merged row really changed the matrix.
        """
        return self._version

    def interval(self, i: int, j: int) -> float:
        """The stored average meeting interval between nodes *i* and *j*."""
        return float(self._values[i, j])

    def known_rows(self) -> int:
        """Number of rows that have been updated at least once."""
        return int(np.sum(np.isfinite(self._row_updated)))

    # -------------------------------------------------------------- own row
    def update_own_row(self, averages: Dict[int, float], now: float) -> None:
        """Refresh the owner's row from its contact history.

        Parameters
        ----------
        averages:
            Mapping peer id -> average meeting interval (:math:`I_{ij}`).
            Peers absent from the mapping keep their previous value.
        now:
            Timestamp recorded for the row.
        """
        i = self.owner_id
        changed = False
        for peer, value in averages.items():
            peer = int(peer)
            if peer == i:
                continue
            if not 0 <= peer < self.num_nodes:
                raise IndexError(f"peer id {peer} out of range")
            if value <= 0:
                raise ValueError(f"average meeting interval must be positive, got {value}")
            value = float(value)
            if self._values[i, peer] != value:
                self._values[i, peer] = value
                changed = True
        self._row_updated[i] = float(now)
        if changed:
            self._version += 1

    # -------------------------------------------------------------- exchange
    def merge_from(self, other: "MeetingIntervalMatrix") -> int:
        """Copy every row of *other* that is fresher than ours.

        The owner's own row is never overwritten (a node is authoritative for
        its own measurements).  Returns the number of rows copied, which the
        routers report as control-plane exchange overhead.
        """
        if other.num_nodes != self.num_nodes:
            raise ValueError("cannot merge MI matrices of different sizes")
        fresher = other._row_updated > self._row_updated
        fresher[self.owner_id] = False
        rows = np.nonzero(fresher)[0]
        if rows.size:
            incoming = other._values[rows, :]
            if not np.array_equal(self._values[rows, :], incoming):
                self._version += 1
            self._values[rows, :] = incoming
            self._row_updated[rows] = other._row_updated[rows]
        return int(rows.size)

    def rows_fresher_than(self, other: "MeetingIntervalMatrix") -> int:
        """How many of our rows are fresher than *other*'s (exchange size)."""
        if other.num_nodes != self.num_nodes:
            raise ValueError("cannot compare MI matrices of different sizes")
        fresher = self._row_updated > other._row_updated
        fresher[other.owner_id] = False
        return int(np.count_nonzero(fresher))

    def copy(self) -> "MeetingIntervalMatrix":
        """Deep copy (used by tests and the trace tooling)."""
        clone = MeetingIntervalMatrix(self.num_nodes, self.owner_id)
        clone._values = self._values.copy()
        clone._row_updated = self._row_updated.copy()
        clone._version = self._version
        return clone

    def load_state(self, values: np.ndarray, row_times: np.ndarray) -> None:
        """Bulk-load learned rows (benchmark / test fixture helper).

        Overwrites the full matrix and row timestamps (the diagonal is
        re-zeroed) as if the rows had been learned through exchanges, and
        bumps the version.
        """
        values = np.asarray(values, dtype=float)
        row_times = np.asarray(row_times, dtype=float)
        if values.shape != (self.num_nodes, self.num_nodes):
            raise ValueError(f"values must have shape "
                             f"({self.num_nodes}, {self.num_nodes})")
        if row_times.shape != (self.num_nodes,):
            raise ValueError("row_times must have one entry per node")
        self._values = values.copy()
        np.fill_diagonal(self._values, 0.0)
        self._row_updated = row_times.copy()
        self._version += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MeetingIntervalMatrix(n={self.num_nodes}, owner={self.owner_id}, "
                f"known_rows={self.known_rows()})")
