"""Building the expected-meeting-delay matrix (MD).

Section III-B.2 of the paper: when node :math:`u_i` needs to make a
single-replica forwarding decision it builds an ``n x n`` matrix ``MD`` whose
own row holds the elapsed-time-conditioned expected meeting delays
:math:`D_{ij}` (Theorem 2) and whose remaining entries are approximated by the
average meeting intervals :math:`I_{jk}` taken from the exchanged MI matrix.
The minimum expected meeting delay (MEMD, Theorem 3) is then the Dijkstra
shortest path over ``MD``.

With a vectorized :class:`~repro.contacts.history.ContactHistory` the owner's
row is produced by one call to
:func:`~repro.core.expectation.batch_expected_delays` over the whole
``(peers, window)`` interval matrix; reference histories fall back to the
original per-peer loop.  Both paths are bit-identical (see
:mod:`repro.core.expectation`).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.contacts.mi_matrix import MeetingIntervalMatrix
import repro.core.expectation as expectation
from repro.core.expectation import (
    OverduePolicy,
    batch_expected_delays,
    expected_meeting_delay,
)


def build_delay_matrix(history, mi: MeetingIntervalMatrix,
                       now: float,
                       overdue_policy: OverduePolicy = OverduePolicy.REFRESH,
                       node_filter: Optional[np.ndarray] = None) -> np.ndarray:
    """Build node ``owner``'s MD matrix at time *now*.

    Parameters
    ----------
    history:
        The owner's contact history (provides Theorem 2 inputs for its row).
    mi:
        The owner's meeting-interval matrix (provides all other rows).
    now:
        Current simulation time.
    overdue_policy:
        How to handle peers whose elapsed time exceeds every recorded
        interval (see :class:`repro.core.expectation.OverduePolicy`).
    node_filter:
        Optional boolean mask of length ``n``; nodes outside the mask are
        disconnected (used for the CR protocol's *intra-community* MD, which
        is restricted to the destination community's members).

    Returns
    -------
    numpy.ndarray
        ``(n, n)`` matrix with ``inf`` for unknown links and 0 on the
        diagonal.
    """
    n = mi.num_nodes
    owner = mi.owner_id
    if history.owner_id != owner:
        raise ValueError("history and MI matrix belong to different nodes")
    md = mi.values.copy()
    # Owner's row: Theorem 2 conditioned on the elapsed time since last
    # contact.  Vectorized histories with enough peers go through the batch
    # kernel; small or reference histories take the (bit-identical) loop.
    arrays = (history.interval_arrays()
              if hasattr(history, "interval_arrays") else None)
    if arrays is not None and len(arrays[0]) >= expectation.BATCH_MIN_PEERS:
        own_row = np.full(n, np.inf)
        peer_ids, intervals, counts, last = arrays
        elapsed = np.maximum(0.0, now - last)
        emd = batch_expected_delays(intervals, counts, elapsed,
                                    overdue_policy)
        usable = ~np.isnan(emd) & (peer_ids >= 0) & (peer_ids < n)
        own_row[peer_ids[usable]] = emd[usable]
        own_row[owner] = 0.0
    else:
        own_row = np.full(n, np.inf)
        own_row[owner] = 0.0
        for peer in history.peers():
            if not 0 <= peer < n:
                continue
            intervals = history.intervals(peer)
            elapsed = history.elapsed_since(peer, now)
            if elapsed is None:
                continue
            emd = expected_meeting_delay(intervals, elapsed, overdue_policy)
            if emd is not None:
                own_row[peer] = emd
    md[owner, :] = own_row
    np.fill_diagonal(md, 0.0)
    if node_filter is not None:
        mask = np.asarray(node_filter, dtype=bool)
        if mask.shape != (n,):
            raise ValueError("node_filter must have one entry per node")
        excluded = ~mask
        md[excluded, :] = np.inf
        md[:, excluded] = np.inf
        np.fill_diagonal(md, 0.0)
    return md
