"""Minimum expected meeting delay (MEMD) via Dijkstra over the MD matrix.

Theorem 3 of the paper: running Dijkstra's algorithm on the expected-meeting-
delay matrix yields the minimum expected multi-hop meeting delay between the
node and any destination.  The matrices are small and dense (``n`` up to a few
hundred nodes), so a dense O(n²) Dijkstra that relaxes a whole row per
iteration with NumPy is both the simplest and the fastest option here —
profiling showed it beats :func:`scipy.sparse.csgraph.dijkstra` for these
sizes because the conversion/validation overhead of the sparse path dominates.
A heap-based reference implementation is kept for cross-checking in tests.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

import numpy as np


def _validate(md: np.ndarray, source: int) -> np.ndarray:
    md = np.asarray(md, dtype=float)
    if md.ndim != 2 or md.shape[0] != md.shape[1]:
        raise ValueError(f"md must be a square matrix, got shape {md.shape}")
    n = md.shape[0]
    if not 0 <= source < n:
        raise IndexError(f"source {source} out of range for n={n}")
    finite = md[np.isfinite(md)]
    if finite.size and finite.min() < 0:
        raise ValueError("expected meeting delays must be non-negative")
    return md


def dijkstra_delays(md: np.ndarray, source: int,
                    validate: bool = True) -> np.ndarray:
    """Shortest-path delays from *source* to every node over matrix *md*.

    Parameters
    ----------
    md:
        ``(n, n)`` matrix of non-negative expected one-hop delays with
        ``inf`` marking unknown links (the diagonal is ignored).
    source:
        Index of the starting node.
    validate:
        Skip the O(n²) input validation when the caller guarantees a valid
        matrix (the MEMD cache does: it builds the matrix itself).

    Returns
    -------
    numpy.ndarray
        Length-``n`` vector of minimum expected meeting delays;
        ``inf`` where the destination is unreachable through known contacts,
        0 at the source itself.

    Notes
    -----
    ``work`` mirrors ``dist`` with visited entries masked to ``inf``, so the
    per-iteration vertex pick is a single ``argmin`` with no re-masking
    allocation.  An improved candidate can never belong to a visited vertex
    (its distance is final and ``dist[u] + w >= dist[u] >= dist[visited]``
    holds exactly in IEEE arithmetic for non-negative ``w``), so the update
    needs no ``~visited`` mask either — the relaxation arithmetic and vertex
    order are identical to the textbook masked formulation, bit for bit.
    """
    if validate:
        md = _validate(md, source)
    else:
        md = np.asarray(md, dtype=float)
    n = md.shape[0]
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    work = dist.copy()
    out = np.empty(n)
    for _ in range(n):
        # pick the closest unvisited node
        u = int(work.argmin())
        du = work[u]
        if du == np.inf:
            break
        work[u] = np.inf
        # relax every outgoing edge of u at once
        np.add(md[u], du, out=out)
        improved = out < dist
        if improved.any():
            dist[improved] = out[improved]
            work[improved] = out[improved]
    dist[source] = 0.0
    return dist


def dijkstra_delays_reference(md: np.ndarray, source: int) -> np.ndarray:
    """Heap-based Dijkstra used to cross-check :func:`dijkstra_delays` in tests."""
    md = _validate(md, source)
    n = md.shape[0]
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    heap: List[Tuple[float, int]] = [(0.0, source)]
    visited = np.zeros(n, dtype=bool)
    while heap:
        d, u = heapq.heappop(heap)
        if visited[u]:
            continue
        visited[u] = True
        for v in range(n):
            if v == u or visited[v]:
                continue
            w = md[u, v]
            if not np.isfinite(w):
                continue
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, int(v)))
    dist[source] = 0.0
    return dist


def minimum_expected_meeting_delay(md: np.ndarray, source: int, destination: int) -> float:
    """The MEMD from *source* to *destination* over matrix *md*."""
    if source == destination:
        return 0.0
    return float(dijkstra_delays(md, source)[destination])


class MemdCache:
    """Per-source MEMD delay-vector cache keyed on routing-state versions.

    One Dijkstra run over the MD matrix yields the delays to *all*
    destinations (:func:`dijkstra_delays`), so the expensive part of every
    per-(source, destination) MEMD query is shared.  The cached vector stays
    valid while

    * the owner's :class:`~repro.contacts.history.ContactHistory` version is
      unchanged (no new contact has been recorded, so the Theorem 2 own row
      inputs are the same),
    * the :class:`~repro.contacts.mi_matrix.MeetingIntervalMatrix` version is
      unchanged (no exchanged row actually changed a stored value — merges
      that copy zero rows or identical rows do not invalidate), and
    * the cache is younger than *refresh* seconds.  The own MD row depends on
      the elapsed time since each last contact and therefore drifts with the
      clock even without new contacts; meeting delays are on the order of
      hundreds of seconds, so a few seconds of staleness never changes a
      forwarding decision but avoids a Dijkstra per tick.

    Parameters
    ----------
    refresh:
        Maximum staleness in seconds before the vector is recomputed even
        with unchanged versions.

    Attributes
    ----------
    computes, hits:
        Instrumentation counters (recomputations vs. served-from-cache),
        used by the regression tests and the benchmark harness.
    """

    __slots__ = ("refresh", "computes", "hits", "_delays", "_key", "_time")

    def __init__(self, refresh: float = 5.0) -> None:
        if refresh < 0:
            raise ValueError("refresh must be non-negative")
        self.refresh = float(refresh)
        self.computes = 0
        self.hits = 0
        self._delays: Optional[np.ndarray] = None
        self._key: Optional[Tuple[int, int]] = None
        self._time = -np.inf

    def invalidate(self) -> None:
        """Drop the cached vector (next query recomputes)."""
        self._delays = None
        self._key = None
        self._time = -np.inf

    def delays(self, history, mi, now: float,
               overdue_policy=None,
               node_filter: Optional[np.ndarray] = None) -> np.ndarray:
        """The MEMD vector from ``mi.owner_id`` to every node at time *now*.

        Parameters
        ----------
        history, mi:
            The owner's contact history and meeting-interval matrix.
        now:
            Current simulation time.
        overdue_policy:
            Passed through to
            :func:`~repro.contacts.md_matrix.build_delay_matrix`.
        node_filter:
            Optional boolean membership mask (CR's intra-community MD).
            Assumed stable for the lifetime of this cache — callers with a
            changing mask must :meth:`invalidate` on change.
        """
        from repro.contacts.md_matrix import build_delay_matrix

        key = (history.version, mi.version)
        if (self._delays is None or key != self._key
                or now - self._time > self.refresh):
            kwargs = {} if overdue_policy is None else {
                "overdue_policy": overdue_policy}
            md = build_delay_matrix(history, mi, now, node_filter=node_filter,
                                    **kwargs)
            # the matrix was built here from validated inputs: skip the
            # O(n^2) re-validation on every recompute
            self._delays = dijkstra_delays(md, mi.owner_id, validate=False)
            self._key = key
            self._time = now
            self.computes += 1
        else:
            self.hits += 1
        return self._delays
