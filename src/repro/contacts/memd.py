"""Minimum expected meeting delay (MEMD) via Dijkstra over the MD matrix.

Theorem 3 of the paper: running Dijkstra's algorithm on the expected-meeting-
delay matrix yields the minimum expected multi-hop meeting delay between the
node and any destination.  The matrices are small and dense (``n`` up to a few
hundred nodes), so a dense O(n²) Dijkstra that relaxes a whole row per
iteration with NumPy is both the simplest and the fastest option here —
profiling showed it beats :func:`scipy.sparse.csgraph.dijkstra` for these
sizes because the conversion/validation overhead of the sparse path dominates.
A heap-based reference implementation is kept for cross-checking in tests.
"""

from __future__ import annotations

import heapq
from typing import List, Tuple

import numpy as np


def _validate(md: np.ndarray, source: int) -> np.ndarray:
    md = np.asarray(md, dtype=float)
    if md.ndim != 2 or md.shape[0] != md.shape[1]:
        raise ValueError(f"md must be a square matrix, got shape {md.shape}")
    n = md.shape[0]
    if not 0 <= source < n:
        raise IndexError(f"source {source} out of range for n={n}")
    finite = md[np.isfinite(md)]
    if finite.size and finite.min() < 0:
        raise ValueError("expected meeting delays must be non-negative")
    return md


def dijkstra_delays(md: np.ndarray, source: int) -> np.ndarray:
    """Shortest-path delays from *source* to every node over matrix *md*.

    Parameters
    ----------
    md:
        ``(n, n)`` matrix of non-negative expected one-hop delays with
        ``inf`` marking unknown links (the diagonal is ignored).
    source:
        Index of the starting node.

    Returns
    -------
    numpy.ndarray
        Length-``n`` vector of minimum expected meeting delays;
        ``inf`` where the destination is unreachable through known contacts,
        0 at the source itself.
    """
    md = _validate(md, source)
    n = md.shape[0]
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    visited = np.zeros(n, dtype=bool)
    for _ in range(n):
        # pick the closest unvisited node
        masked = np.where(visited, np.inf, dist)
        u = int(np.argmin(masked))
        if not np.isfinite(masked[u]):
            break
        visited[u] = True
        # relax every outgoing edge of u at once
        candidate = dist[u] + md[u]
        better = (candidate < dist) & ~visited
        dist[better] = candidate[better]
    dist[source] = 0.0
    return dist


def dijkstra_delays_reference(md: np.ndarray, source: int) -> np.ndarray:
    """Heap-based Dijkstra used to cross-check :func:`dijkstra_delays` in tests."""
    md = _validate(md, source)
    n = md.shape[0]
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    heap: List[Tuple[float, int]] = [(0.0, source)]
    visited = np.zeros(n, dtype=bool)
    while heap:
        d, u = heapq.heappop(heap)
        if visited[u]:
            continue
        visited[u] = True
        for v in range(n):
            if v == u or visited[v]:
                continue
            w = md[u, v]
            if not np.isfinite(w):
                continue
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, int(v)))
    dist[source] = 0.0
    return dist


def minimum_expected_meeting_delay(md: np.ndarray, source: int, destination: int) -> float:
    """The MEMD from *source* to *destination* over matrix *md*."""
    if source == destination:
        return 0.0
    return float(dijkstra_delays(md, source)[destination])
