"""Analysis helpers: summary statistics, series utilities and text rendering."""

from repro.analysis.stats import mean_confidence_interval, summarize
from repro.analysis.series import (
    series_to_arrays,
    is_monotonic,
    crossover_points,
    relative_factor,
    rank_series,
)
from repro.analysis.render import render_ascii_chart, figure_to_json, figure_to_csv

__all__ = [
    "mean_confidence_interval",
    "summarize",
    "series_to_arrays",
    "is_monotonic",
    "crossover_points",
    "relative_factor",
    "rank_series",
    "render_ascii_chart",
    "figure_to_json",
    "figure_to_csv",
]
