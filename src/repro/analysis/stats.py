"""Summary statistics for experiment results."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np
from scipy import stats as scipy_stats


def mean_confidence_interval(values: Sequence[float],
                             confidence: float = 0.95) -> Tuple[float, float]:
    """Mean and half-width of the Student-t confidence interval.

    The paper plots the average of 10 simulation runs per point; the half
    width quantifies how much those averages can be trusted.

    Returns ``(mean, half_width)``; the half width is 0 for fewer than two
    samples.
    """
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    arr = np.asarray([v for v in values if np.isfinite(v)], dtype=float)
    if arr.size == 0:
        return float("nan"), 0.0
    mean = float(arr.mean())
    if arr.size < 2:
        return mean, 0.0
    sem = float(arr.std(ddof=1) / np.sqrt(arr.size))
    t_value = float(scipy_stats.t.ppf(0.5 + confidence / 2.0, arr.size - 1))
    return mean, t_value * sem


@dataclass(frozen=True)
class Summary:
    """Five-number-style summary of a metric sample."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view."""
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "median": self.median,
            "max": self.maximum,
        }


def summarize(values: Sequence[float]) -> Summary:
    """Compute a :class:`Summary` over the finite entries of *values*."""
    arr = np.asarray([v for v in values if np.isfinite(v)], dtype=float)
    if arr.size == 0:
        nan = float("nan")
        return Summary(0, nan, nan, nan, nan, nan)
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        median=float(np.median(arr)),
        maximum=float(arr.max()),
    )
