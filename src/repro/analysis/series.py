"""Series utilities used to assert figure *shapes*.

The reproduction cannot match the paper's absolute numbers (different
substrate, synthetic map), but the qualitative shapes — which protocol wins a
metric, by roughly what factor, whether a curve rises or falls with the swept
parameter, where two curves cross — are checkable.  These helpers turn
figure series into those checks.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np


def series_to_arrays(points: Sequence[Tuple[float, float]]) -> Tuple[np.ndarray, np.ndarray]:
    """Split ``[(x, y), ...]`` into sorted x and y arrays."""
    if not points:
        return np.array([]), np.array([])
    ordered = sorted(points)
    xs = np.array([x for x, _ in ordered], dtype=float)
    ys = np.array([y for _, y in ordered], dtype=float)
    return xs, ys


def is_monotonic(points: Sequence[Tuple[float, float]], increasing: bool = True,
                 tolerance: float = 0.0) -> bool:
    """Whether the series is (weakly) monotonic in the given direction.

    Parameters
    ----------
    points:
        ``(x, y)`` pairs.
    increasing:
        Direction to check.
    tolerance:
        Allowed violation per step (absolute), to absorb seed noise.
    """
    _, ys = series_to_arrays(points)
    if ys.size < 2:
        return True
    deltas = np.diff(ys)
    if increasing:
        return bool(np.all(deltas >= -tolerance))
    return bool(np.all(deltas <= tolerance))


def crossover_points(series_a: Sequence[Tuple[float, float]],
                     series_b: Sequence[Tuple[float, float]]) -> List[float]:
    """x positions where series A and B cross (linear interpolation).

    Both series must be sampled at the same x values; points present in only
    one series are ignored.
    """
    a = dict(series_a)
    b = dict(series_b)
    xs = sorted(set(a) & set(b))
    crossings: List[float] = []
    for x0, x1 in zip(xs[:-1], xs[1:]):
        d0 = a[x0] - b[x0]
        d1 = a[x1] - b[x1]
        if d0 == 0:
            crossings.append(x0)
        elif d0 * d1 < 0:
            # linear interpolation of the sign change
            frac = abs(d0) / (abs(d0) + abs(d1))
            crossings.append(x0 + frac * (x1 - x0))
    if xs and (a[xs[-1]] - b[xs[-1]]) == 0:
        crossings.append(xs[-1])
    return crossings


def relative_factor(series_a: Sequence[Tuple[float, float]],
                    series_b: Sequence[Tuple[float, float]]) -> float:
    """Mean of A/B over the common x values (``nan`` if no overlap).

    Used for claims like "MaxProp's goodput is about 20 % of EER's".
    """
    a = dict(series_a)
    b = dict(series_b)
    ratios = [a[x] / b[x] for x in set(a) & set(b) if b[x] not in (0.0, float("inf"))]
    if not ratios:
        return float("nan")
    return float(np.mean(ratios))


def rank_series(series_by_label: dict, higher_is_better: bool = True) -> List[str]:
    """Order series labels by their mean y value (best first)."""
    means = {}
    for label, points in series_by_label.items():
        _, ys = series_to_arrays(points)
        means[label] = float(np.mean(ys)) if ys.size else float("-inf")
    return sorted(means, key=lambda label: means[label], reverse=higher_is_better)
