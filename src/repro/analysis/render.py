"""Rendering figure results: ASCII charts, JSON and CSV exports."""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.figures import FigureResult


def render_ascii_chart(series_by_label: Dict[str, Sequence[Tuple[float, float]]],
                       width: int = 60, height: int = 16,
                       title: str = "") -> str:
    """Render one metric's curves as a simple ASCII scatter chart.

    Each series gets a distinct marker; the chart is meant for quick terminal
    inspection of shapes (who is on top, does a curve rise or fall), not for
    publication.
    """
    markers = "ox+*#@%&"
    points: List[Tuple[float, float, str]] = []
    for index, (label, series) in enumerate(series_by_label.items()):
        marker = markers[index % len(markers)]
        for x, y in series:
            points.append((float(x), float(y), marker))
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    min_x, max_x = min(xs), max(xs)
    min_y, max_y = min(ys), max(ys)
    span_x = (max_x - min_x) or 1.0
    span_y = (max_y - min_y) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y, marker in points:
        col = int((x - min_x) / span_x * (width - 1))
        row = int((y - min_y) / span_y * (height - 1))
        grid[height - 1 - row][col] = marker
    lines = []
    if title:
        lines.append(title)
    legend = ", ".join(f"{markers[i % len(markers)]}={label}"
                       for i, label in enumerate(series_by_label))
    lines.append(f"y: [{min_y:.3g}, {max_y:.3g}]   x: [{min_x:.3g}, {max_x:.3g}]")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(legend)
    return "\n".join(lines)


def figure_to_json(figure: FigureResult, path: Optional[str] = None) -> str:
    """Serialise a figure to JSON (optionally writing it to *path*)."""
    payload = json.dumps(figure.as_dict(), indent=2, sort_keys=True)
    if path is not None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
    return payload


def figure_to_csv(figure: FigureResult, metric: str,
                  path: Optional[str] = None) -> str:
    """Serialise one metric of a figure to CSV (series per column)."""
    series_map = figure.metrics.get(metric, {})
    xs = sorted({x for points in series_map.values() for x, _ in points})
    labels = list(series_map)
    lines = [",".join([figure.x_label] + labels)]
    for x in xs:
        row = [f"{x:g}"]
        for label in labels:
            by_x = dict(series_map[label])
            row.append(f"{by_x[x]:.6g}" if x in by_x else "")
        lines.append(",".join(row))
    text = "\n".join(lines) + "\n"
    if path is not None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
    return text
