"""Traffic generation.

The paper generates messages between random source/destination pairs with a
fixed size (25 KB), TTL (20 minutes) and an initial replica quota
:math:`\\lambda`.  :class:`MessageEventGenerator` reproduces the ONE
simulator's ``MessageEventGenerator``: creation events at intervals drawn
uniformly from ``[min_interval, max_interval]``, with uniformly random
distinct source/destination pairs.

Beyond the paper's uniform process, :class:`TrafficSpec` supports two load
models for the traffic benchmarks (``rwp-10k-traffic``) and the ROADMAP's
city-scale workloads:

``poisson``
    memoryless arrivals — exponential inter-arrival gaps with mean
    ``1 / rate``,
``bursty``
    bursts of ``burst_size`` messages spaced ``burst_spacing`` seconds
    apart, with exponential gaps between bursts tuned so the long-run mean
    rate is still ``rate`` messages per second.

All models draw from the same seeded ``RandomStreams`` stream, so a given
scenario seed produces the same workload on every run and platform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, TYPE_CHECKING

from repro.net.message import Message
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.world.world import World


@dataclass
class TrafficSpec:
    """Parameters of a message-generation process.

    Attributes
    ----------
    interval:
        ``(min, max)`` seconds between consecutive message creations
        (``model="uniform"`` only).
    model:
        Arrival process: ``"uniform"`` (the paper's), ``"poisson"`` or
        ``"bursty"``.
    rate:
        Mean arrivals per second (``poisson``/``bursty`` only).
    burst_size:
        Messages per burst (``bursty`` only).
    burst_spacing:
        Seconds between messages inside one burst (``bursty`` only).
    size:
        Message payload size in bytes (the paper uses 25 KB).
    ttl:
        Message time-to-live in seconds (the paper uses 20 minutes).
    copies:
        Initial replica quota :math:`\\lambda` attached to every message.
    sources, destinations:
        Optional restrictions of the candidate node-id pools; ``None`` means
        all nodes in the world.
    prefix:
        Message-id prefix.
    start, end:
        Active window of the generator within the simulation.
    """

    interval: tuple = (25.0, 35.0)
    model: str = "uniform"
    rate: Optional[float] = None
    burst_size: int = 20
    burst_spacing: float = 0.0
    size: int = 25 * 1024
    ttl: float = 20 * 60.0
    copies: int = 10
    sources: Optional[Sequence[int]] = None
    destinations: Optional[Sequence[int]] = None
    prefix: str = "M"
    start: float = 0.0
    end: float = float("inf")

    def __post_init__(self) -> None:
        lo, hi = self.interval
        if lo <= 0 or hi < lo:
            raise ValueError(f"invalid interval {self.interval!r}")
        if self.model not in ("uniform", "poisson", "bursty"):
            raise ValueError(
                f"model must be 'uniform', 'poisson' or 'bursty', "
                f"got {self.model!r}")
        if self.model != "uniform" and (self.rate is None or self.rate <= 0):
            raise ValueError(
                f"model {self.model!r} requires a positive rate")
        if self.burst_size < 1:
            raise ValueError("burst_size must be >= 1")
        if self.burst_spacing < 0:
            raise ValueError("burst_spacing must be non-negative")
        if self.size <= 0:
            raise ValueError("size must be positive")
        if self.ttl <= 0:
            raise ValueError("ttl must be positive")
        if self.copies < 1:
            raise ValueError("copies must be >= 1")


class MessageEventGenerator:
    """Creates application messages at random intervals.

    Parameters
    ----------
    simulator:
        Engine to schedule creation events on.
    world:
        The world whose nodes receive the messages.
    spec:
        Traffic parameters.
    stream:
        Name of the random stream used for intervals and endpoint choice.
    """

    def __init__(self, simulator: Simulator, world: "World", spec: TrafficSpec,
                 stream: str = "traffic") -> None:
        self.simulator = simulator
        self.world = world
        self.spec = spec
        self._rng = simulator.random.python(stream)
        self._count = 0
        #: messages still due in the current burst (bursty model only);
        #: must exist before the first _next_interval draw below
        self._burst_remaining = 0
        self.created: List[str] = []
        first = max(spec.start, simulator.now) + self._next_interval()
        if first <= spec.end:
            simulator.schedule_at(first, self._create, priority=20)

    # ------------------------------------------------------------------ internals
    def _next_interval(self) -> float:
        spec = self.spec
        if spec.model == "poisson":
            return self._rng.expovariate(spec.rate)
        if spec.model == "bursty":
            if self._burst_remaining > 0:
                self._burst_remaining -= 1
                return spec.burst_spacing
            # gap to the next burst: exponential with the per-burst rate, so
            # the long-run mean is still `rate` messages per second (the
            # intra-burst spacings are a negligible, deterministic offset)
            self._burst_remaining = spec.burst_size - 1
            return self._rng.expovariate(spec.rate / spec.burst_size)
        lo, hi = spec.interval
        return self._rng.uniform(lo, hi)

    def _pick_endpoints(self) -> tuple:
        node_ids = self.world.node_ids()
        sources = list(self.spec.sources) if self.spec.sources is not None else node_ids
        destinations = (list(self.spec.destinations)
                        if self.spec.destinations is not None else node_ids)
        if not sources or not destinations:
            raise ValueError("traffic spec has an empty source or destination pool")
        src = self._rng.choice(sources)
        dst = self._rng.choice(destinations)
        attempts = 0
        while dst == src and attempts < 100:
            dst = self._rng.choice(destinations)
            attempts += 1
        if dst == src:
            raise ValueError("could not pick distinct source and destination")
        return src, dst

    def _create(self, simulator: Simulator) -> None:
        if simulator.now > self.spec.end:
            return
        src, dst = self._pick_endpoints()
        self._count += 1
        message_id = f"{self.spec.prefix}{self._count}"
        message = Message(
            message_id=message_id,
            source=src,
            destination=dst,
            size=self.spec.size,
            creation_time=simulator.now,
            ttl=self.spec.ttl,
            copies=self.spec.copies,
            dest_community=self.world.community_of(dst),
        )
        self.world.create_message(src, message)
        self.created.append(message_id)
        nxt = simulator.now + self._next_interval()
        if nxt <= self.spec.end:
            simulator.schedule_at(nxt, self._create, priority=20)

    @property
    def messages_created(self) -> int:
        """Number of messages created so far."""
        return self._count
