"""Bounded message buffers with pluggable drop policies.

The paper's evaluation uses a 1 MB buffer per node with 25 KB messages, so
buffer pressure is real (at most 40 messages fit).  The default drop policy is
the ONE simulator's: drop the oldest-received message to make room, never the
incoming one if it cannot fit at all.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Iterator, List, Optional

from repro.net.message import Message


class DropPolicy(enum.Enum):
    """Which stored message to evict when space is needed."""

    #: evict the replica that has been in the buffer the longest (ONE default)
    OLDEST_RECEIVED = "oldest_received"
    #: evict the replica whose bundle was created the longest ago
    OLDEST_CREATED = "oldest_created"
    #: evict the replica with the smallest residual TTL
    SHORTEST_TTL = "shortest_ttl"
    #: evict the largest replica first
    LARGEST = "largest"
    #: refuse to evict: incoming messages are rejected when full
    NO_DROP = "no_drop"


class MessageBuffer:
    """A byte-bounded store of message replicas.

    Parameters
    ----------
    capacity:
        Capacity in bytes; ``float('inf')`` for unbounded buffers.
    drop_policy:
        Eviction policy applied by :meth:`add` when the incoming message does
        not fit.
    protected:
        Optional predicate; messages for which it returns ``True`` are never
        evicted to make room (used e.g. to protect messages this node
        originated).
    """

    def __init__(self, capacity: float = float("inf"),
                 drop_policy: DropPolicy = DropPolicy.OLDEST_RECEIVED,
                 protected: Optional[Callable[[Message], bool]] = None) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.drop_policy = drop_policy
        self.protected = protected
        self._messages: Dict[str, Message] = {}
        self._occupancy = 0

    # ------------------------------------------------------------- inspection
    def __len__(self) -> int:
        return len(self._messages)

    def __contains__(self, message_id: str) -> bool:
        return message_id in self._messages

    def __iter__(self) -> Iterator[Message]:
        return iter(list(self._messages.values()))

    @property
    def occupancy(self) -> int:
        """Bytes currently stored."""
        return self._occupancy

    @property
    def free_space(self) -> float:
        """Bytes still available."""
        return self.capacity - self._occupancy

    @property
    def occupancy_ratio(self) -> float:
        """Fraction of the capacity in use (0 for unbounded empty buffers)."""
        if self.capacity == float("inf"):
            return 0.0
        return self._occupancy / self.capacity

    def get(self, message_id: str) -> Optional[Message]:
        """Return the stored replica with *message_id*, or ``None``."""
        return self._messages.get(message_id)

    def messages(self) -> List[Message]:
        """Snapshot list of stored replicas in insertion order."""
        return list(self._messages.values())

    def message_ids(self) -> List[str]:
        """Snapshot list of stored message identifiers."""
        return list(self._messages.keys())

    # --------------------------------------------------------------- mutation
    def _eviction_order(self) -> List[Message]:
        msgs = [m for m in self._messages.values()
                if self.protected is None or not self.protected(m)]
        if self.drop_policy is DropPolicy.OLDEST_RECEIVED:
            return sorted(msgs, key=lambda m: m.received_time)
        if self.drop_policy is DropPolicy.OLDEST_CREATED:
            return sorted(msgs, key=lambda m: m.creation_time)
        if self.drop_policy is DropPolicy.SHORTEST_TTL:
            return sorted(msgs, key=lambda m: m.expiry_time)
        if self.drop_policy is DropPolicy.LARGEST:
            return sorted(msgs, key=lambda m: -m.size)
        return []

    def add(self, message: Message) -> List[Message]:
        """Store *message*, evicting per the drop policy if needed.

        Returns
        -------
        list of Message
            The evicted messages (empty if none).  If the message cannot be
            stored even after evicting every unprotected message, it is *not*
            stored and ``BufferFullError`` is raised.
        """
        if message.message_id in self._messages:
            raise ValueError(f"message {message.message_id!r} is already buffered")
        if message.size > self.capacity:
            raise BufferFullError(
                f"message of {message.size} B exceeds buffer capacity {self.capacity} B")
        evicted: List[Message] = []
        if message.size > self.free_space:
            if self.drop_policy is DropPolicy.NO_DROP:
                raise BufferFullError("buffer full and drop policy is NO_DROP")
            for victim in self._eviction_order():
                if message.size <= self.free_space:
                    break
                self.remove(victim.message_id)
                evicted.append(victim)
            if message.size > self.free_space:
                # restore nothing: evictions already happened, mirror ONE which
                # frees space before checking; but refuse the incoming message.
                raise BufferFullError(
                    "buffer cannot make enough room for incoming message")
        self._messages[message.message_id] = message
        self._occupancy += message.size
        return evicted

    def remove(self, message_id: str) -> Optional[Message]:
        """Remove and return the replica with *message_id* (or ``None``)."""
        message = self._messages.pop(message_id, None)
        if message is not None:
            self._occupancy -= message.size
        return message

    def drop_expired(self, now: float) -> List[Message]:
        """Remove and return every replica whose TTL elapsed by *now*."""
        expired = [m for m in self._messages.values() if m.is_expired(now)]
        for message in expired:
            self.remove(message.message_id)
        return expired

    def clear(self) -> None:
        """Drop everything."""
        self._messages.clear()
        self._occupancy = 0


class BufferFullError(RuntimeError):
    """Raised when a message cannot be stored even after eviction."""
