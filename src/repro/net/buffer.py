"""Bounded message buffers with pluggable drop policies.

The paper's evaluation uses a 1 MB buffer per node with 25 KB messages, so
buffer pressure is real (at most 40 messages fit).  The default drop policy is
the ONE simulator's: drop the oldest-received message to make room, never the
incoming one if it cannot fit at all.

Two implementations share one interface:

* :class:`MessageBuffer` — the production store.  Eviction candidates live in
  a maintained lazy-deletion min-heap ordered by the drop-policy key, and
  expiry times live in a second min-heap, so :meth:`~MessageBuffer.add` pops
  victims in O(log n) each instead of re-sorting the whole buffer, and
  :meth:`~MessageBuffer.drop_expired` is O(1) when nothing expired instead of
  scanning every stored replica on every router tick.  A per-destination
  index makes ``messages_for_destination`` (the ``send_deliverable`` fast
  path) O(matches).
* :class:`ReferenceMessageBuffer` — the original sort-per-add implementation,
  kept as the oracle for the randomized parity tests and as the baseline the
  benchmark harness measures the indexed buffer against.

Eviction order is identical between the two: the heap carries an insertion
sequence number as tie-breaker, which reproduces the stable sort of the
reference exactly.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.net.message import Message


class DropPolicy(enum.Enum):
    """Which stored message to evict when space is needed."""

    #: evict the replica that has been in the buffer the longest (ONE default)
    OLDEST_RECEIVED = "oldest_received"
    #: evict the replica whose bundle was created the longest ago
    OLDEST_CREATED = "oldest_created"
    #: evict the replica with the smallest residual TTL
    SHORTEST_TTL = "shortest_ttl"
    #: evict the largest replica first
    LARGEST = "largest"
    #: refuse to evict: incoming messages are rejected when full
    NO_DROP = "no_drop"


#: drop policy -> eviction priority key (smaller evicts first)
_POLICY_KEYS: Dict[DropPolicy, Callable[[Message], float]] = {
    DropPolicy.OLDEST_RECEIVED: lambda m: m.received_time,
    DropPolicy.OLDEST_CREATED: lambda m: m.creation_time,
    DropPolicy.SHORTEST_TTL: lambda m: m.expiry_time,
    DropPolicy.LARGEST: lambda m: -m.size,
}


class MessageBuffer:
    """A byte-bounded store of message replicas.

    Parameters
    ----------
    capacity:
        Capacity in bytes; ``float('inf')`` for unbounded buffers.
    drop_policy:
        Eviction policy applied by :meth:`add` when the incoming message does
        not fit.
    protected:
        Optional predicate; messages for which it returns ``True`` are never
        evicted to make room (used e.g. to protect messages this node
        originated).

    Attributes
    ----------
    full_sorts:
        Number of full-buffer sorts performed (stays 0 on the hot path; the
        legacy :meth:`_eviction_order` inspection helper is the only thing
        that increments it).
    heap_pops:
        Number of eviction/expiry heap pops performed (regression tests bound
        this to O(evictions), not O(n log n) per add).
    """

    # struct-of-arrays mirror binding (see repro.routing.soa): when a world
    # registers this buffer's node, every mutation marks the node's row
    # dirty so the sweep re-reads count/occupancy/next-expiry exactly once.
    # Class-level defaults keep unbound buffers (and old pickles) inert.
    _mirror_store = None
    _mirror_row = -1

    def __init__(self, capacity: float = float("inf"),
                 drop_policy: DropPolicy = DropPolicy.OLDEST_RECEIVED,
                 protected: Optional[Callable[[Message], bool]] = None) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.drop_policy = drop_policy
        self.protected = protected
        self._messages: Dict[str, Message] = {}
        self._occupancy = 0
        # instrumentation (see class docstring)
        self.full_sorts = 0
        self.heap_pops = 0
        # lazy-deletion indexes: entries carry the sequence number that was
        # live when pushed; stale entries (removed or re-added messages) are
        # skipped at pop time
        self._seq = itertools.count()
        self._live_seq: Dict[str, int] = {}
        self._evict_heap: List[Tuple[float, int, str]] = []
        self._expiry_heap: List[Tuple[float, int, str]] = []
        #: destination -> insertion-ordered {message_id: Message}
        self._by_destination: Dict[int, Dict[str, Message]] = {}

    # ------------------------------------------------------------- inspection
    def __len__(self) -> int:
        return len(self._messages)

    def __contains__(self, message_id: str) -> bool:
        return message_id in self._messages

    def __iter__(self) -> Iterator[Message]:
        return iter(list(self._messages.values()))

    @property
    def occupancy(self) -> int:
        """Bytes currently stored."""
        return self._occupancy

    @property
    def free_space(self) -> float:
        """Bytes still available."""
        return self.capacity - self._occupancy

    @property
    def occupancy_ratio(self) -> float:
        """Fraction of the capacity in use (0 for unbounded empty buffers)."""
        if self.capacity == float("inf"):
            return 0.0
        return self._occupancy / self.capacity

    def get(self, message_id: str) -> Optional[Message]:
        """Return the stored replica with *message_id*, or ``None``."""
        return self._messages.get(message_id)

    def messages(self) -> List[Message]:
        """Snapshot list of stored replicas in insertion order."""
        return list(self._messages.values())

    def message_ids(self) -> List[str]:
        """Snapshot list of stored message identifiers."""
        return list(self._messages.keys())

    def messages_for_destination(self, destination: int) -> List[Message]:
        """Stored replicas destined to *destination*, in insertion order.

        Served from a maintained index: O(matches), not O(buffer).  This is
        the ``send_deliverable`` fast path that every protocol hits on every
        tick of every live connection.
        """
        bucket = self._by_destination.get(int(destination))
        return list(bucket.values()) if bucket else []

    # --------------------------------------------------------------- mutation
    def _eviction_order(self) -> List[Message]:
        """Full eviction order (inspection/debugging only; sorts the buffer)."""
        self.full_sorts += 1
        key = _POLICY_KEYS.get(self.drop_policy)
        if key is None:
            return []
        msgs = [m for m in self._messages.values()
                if self.protected is None or not self.protected(m)]
        return sorted(msgs, key=key)

    def _index(self, message: Message) -> None:
        seq = next(self._seq)
        self._live_seq[message.message_id] = seq
        key = _POLICY_KEYS.get(self.drop_policy)
        if key is not None and self.capacity != float("inf"):
            # unbounded buffers never evict: no point growing the heap
            heapq.heappush(self._evict_heap, (key(message), seq, message.message_id))
        if message.expiry_time != float("inf"):
            heapq.heappush(self._expiry_heap,
                           (message.expiry_time, seq, message.message_id))
        self._by_destination.setdefault(
            message.destination, {})[message.message_id] = message

    def _compact_heaps(self) -> None:
        """Rebuild the lazy-deletion heaps once stale entries dominate.

        Stale entries (messages removed without eviction pressure) are
        normally discarded at pop time; a buffer with high turnover but
        little eviction would otherwise retain one tuple per message it ever
        stored.  Rebuilding from the live set keeps the original sequence
        numbers, so eviction order is unchanged.
        """
        live = self._live_seq
        if self._evict_heap and len(self._evict_heap) > 64 + 4 * len(live):
            key = _POLICY_KEYS[self.drop_policy]
            self._evict_heap = [(key(m), live[mid], mid)
                                for mid, m in self._messages.items()]
            heapq.heapify(self._evict_heap)
        if self._expiry_heap and len(self._expiry_heap) > 64 + 4 * len(live):
            self._expiry_heap = [(m.expiry_time, live[mid], mid)
                                 for mid, m in self._messages.items()
                                 if m.expiry_time != float("inf")]
            heapq.heapify(self._expiry_heap)

    def _pop_victim(self, stash: List[Tuple[float, int, str]]) -> Optional[Message]:
        """Next unprotected eviction victim, or ``None`` when exhausted.

        Stale heap entries (already removed, or superseded by a re-add) are
        skipped; protected entries are appended to *stash* and restored
        afterwards by :meth:`add`, preserving the heap for future evictions.
        """
        heap = self._evict_heap
        while heap:
            entry = heapq.heappop(heap)
            self.heap_pops += 1
            key, seq, message_id = entry
            if self._live_seq.get(message_id) != seq:
                continue  # stale: message removed or re-added since the push
            victim = self._messages[message_id]
            if self.protected is not None and self.protected(victim):
                stash.append(entry)
                continue
            return victim
        return None

    def add(self, message: Message) -> List[Message]:
        """Store *message*, evicting per the drop policy if needed.

        Returns
        -------
        list of Message
            The evicted messages (empty if none).  If the message cannot be
            stored even after evicting every unprotected message, it is *not*
            stored and ``BufferFullError`` is raised.
        """
        if message.message_id in self._messages:
            raise ValueError(f"message {message.message_id!r} is already buffered")
        if message.size > self.capacity:
            raise BufferFullError(
                f"message of {message.size} B exceeds buffer capacity {self.capacity} B")
        evicted: List[Message] = []
        if message.size > self.free_space:
            if self.drop_policy is DropPolicy.NO_DROP:
                raise BufferFullError("buffer full and drop policy is NO_DROP")
            stash: List[Tuple[float, int, str]] = []
            try:
                while message.size > self.free_space:
                    victim = self._pop_victim(stash)
                    if victim is None:
                        break
                    self.remove(victim.message_id)
                    evicted.append(victim)
            finally:
                for entry in stash:
                    heapq.heappush(self._evict_heap, entry)
            if message.size > self.free_space:
                # restore nothing: evictions already happened, mirror ONE which
                # frees space before checking; but refuse the incoming message.
                raise BufferFullError(
                    "buffer cannot make enough room for incoming message")
        self._messages[message.message_id] = message
        self._occupancy += message.size
        self._index(message)
        if self._mirror_store is not None:
            self._mirror_store.mark_dirty(self._mirror_row)
        return evicted

    def remove(self, message_id: str) -> Optional[Message]:
        """Remove and return the replica with *message_id* (or ``None``)."""
        message = self._messages.pop(message_id, None)
        if message is not None:
            self._occupancy -= message.size
            self._live_seq.pop(message_id, None)
            bucket = self._by_destination.get(message.destination)
            if bucket is not None:
                bucket.pop(message_id, None)
                if not bucket:
                    del self._by_destination[message.destination]
            self._compact_heaps()
            if self._mirror_store is not None:
                self._mirror_store.mark_dirty(self._mirror_row)
        return message

    def drop_expired(self, now: float) -> List[Message]:
        """Remove and return every replica whose TTL elapsed by *now*.

        Pops the expiry heap instead of scanning the buffer: when nothing has
        expired (the overwhelmingly common tick) this is a single comparison.
        """
        expired: List[Message] = []
        heap = self._expiry_heap
        while heap and heap[0][0] <= now:
            expiry, seq, message_id = heapq.heappop(heap)
            self.heap_pops += 1
            if self._live_seq.get(message_id) != seq:
                continue  # stale entry
            message = self.remove(message_id)
            if message is not None:
                expired.append(message)
        return expired

    def next_expiry(self) -> float:
        """Earliest TTL deadline of any stored replica (``inf`` when none).

        This is the wake-up key the world's idle-router skip-list consults: a
        router with buffered messages but no contacts needs its next
        ``update`` tick no earlier than this instant.  Stale heap tops
        (replicas removed without an expiry sweep) are purged on the way, so
        the returned deadline is exact — and purging keeps the lazy-deletion
        invariant: any entry this method pops would have been popped and
        discarded by the next :meth:`drop_expired` anyway.
        """
        heap = self._expiry_heap
        while heap:
            expiry, seq, message_id = heap[0]
            if self._live_seq.get(message_id) == seq:
                return expiry
            heapq.heappop(heap)
            self.heap_pops += 1
        return float("inf")

    def clear(self) -> None:
        """Drop everything."""
        self._messages.clear()
        self._occupancy = 0
        self._live_seq.clear()
        self._evict_heap.clear()
        self._expiry_heap.clear()
        self._by_destination.clear()
        if self._mirror_store is not None:
            self._mirror_store.mark_dirty(self._mirror_row)


class ReferenceMessageBuffer:
    """The original sort-per-add message buffer.

    Behaviourally identical to :class:`MessageBuffer` (same evictions, same
    errors, same ordering); kept as the oracle for the randomized parity
    tests and as the pure-Python baseline of ``python -m repro bench``.
    """

    # same SoA mirror seam as MessageBuffer, so either implementation can
    # back a node without the store caring which one it is
    _mirror_store = None
    _mirror_row = -1

    def __init__(self, capacity: float = float("inf"),
                 drop_policy: DropPolicy = DropPolicy.OLDEST_RECEIVED,
                 protected: Optional[Callable[[Message], bool]] = None) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.drop_policy = drop_policy
        self.protected = protected
        self._messages: Dict[str, Message] = {}
        self._occupancy = 0

    # ------------------------------------------------------------- inspection
    def __len__(self) -> int:
        return len(self._messages)

    def __contains__(self, message_id: str) -> bool:
        return message_id in self._messages

    def __iter__(self) -> Iterator[Message]:
        return iter(list(self._messages.values()))

    @property
    def occupancy(self) -> int:
        """Bytes currently stored."""
        return self._occupancy

    @property
    def free_space(self) -> float:
        """Bytes still available."""
        return self.capacity - self._occupancy

    @property
    def occupancy_ratio(self) -> float:
        """Fraction of the capacity in use (0 for unbounded empty buffers)."""
        if self.capacity == float("inf"):
            return 0.0
        return self._occupancy / self.capacity

    def get(self, message_id: str) -> Optional[Message]:
        """Return the stored replica with *message_id*, or ``None``."""
        return self._messages.get(message_id)

    def messages(self) -> List[Message]:
        """Snapshot list of stored replicas in insertion order."""
        return list(self._messages.values())

    def message_ids(self) -> List[str]:
        """Snapshot list of stored message identifiers."""
        return list(self._messages.keys())

    def messages_for_destination(self, destination: int) -> List[Message]:
        """Stored replicas destined to *destination* (linear scan)."""
        destination = int(destination)
        return [m for m in self._messages.values()
                if m.destination == destination]

    # --------------------------------------------------------------- mutation
    def _eviction_order(self) -> List[Message]:
        msgs = [m for m in self._messages.values()
                if self.protected is None or not self.protected(m)]
        if self.drop_policy is DropPolicy.OLDEST_RECEIVED:
            return sorted(msgs, key=lambda m: m.received_time)
        if self.drop_policy is DropPolicy.OLDEST_CREATED:
            return sorted(msgs, key=lambda m: m.creation_time)
        if self.drop_policy is DropPolicy.SHORTEST_TTL:
            return sorted(msgs, key=lambda m: m.expiry_time)
        if self.drop_policy is DropPolicy.LARGEST:
            return sorted(msgs, key=lambda m: -m.size)
        return []

    def add(self, message: Message) -> List[Message]:
        """Store *message*, evicting per the drop policy if needed."""
        if message.message_id in self._messages:
            raise ValueError(f"message {message.message_id!r} is already buffered")
        if message.size > self.capacity:
            raise BufferFullError(
                f"message of {message.size} B exceeds buffer capacity {self.capacity} B")
        evicted: List[Message] = []
        if message.size > self.free_space:
            if self.drop_policy is DropPolicy.NO_DROP:
                raise BufferFullError("buffer full and drop policy is NO_DROP")
            for victim in self._eviction_order():
                if message.size <= self.free_space:
                    break
                self.remove(victim.message_id)
                evicted.append(victim)
            if message.size > self.free_space:
                raise BufferFullError(
                    "buffer cannot make enough room for incoming message")
        self._messages[message.message_id] = message
        self._occupancy += message.size
        if self._mirror_store is not None:
            self._mirror_store.mark_dirty(self._mirror_row)
        return evicted

    def remove(self, message_id: str) -> Optional[Message]:
        """Remove and return the replica with *message_id* (or ``None``)."""
        message = self._messages.pop(message_id, None)
        if message is not None:
            self._occupancy -= message.size
            if self._mirror_store is not None:
                self._mirror_store.mark_dirty(self._mirror_row)
        return message

    def drop_expired(self, now: float) -> List[Message]:
        """Remove and return every replica whose TTL elapsed by *now*."""
        expired = [m for m in self._messages.values() if m.is_expired(now)]
        for message in expired:
            self.remove(message.message_id)
        return expired

    def next_expiry(self) -> float:
        """Earliest TTL deadline of any stored replica (linear scan)."""
        if not self._messages:
            return float("inf")
        return min(m.expiry_time for m in self._messages.values())

    def clear(self) -> None:
        """Drop everything."""
        self._messages.clear()
        self._occupancy = 0
        if self._mirror_store is not None:
            self._mirror_store.mark_dirty(self._mirror_row)


class BufferFullError(RuntimeError):
    """Raised when a message cannot be stored even after eviction."""
