"""Messaging substrate: messages, buffers, connections and traffic generators."""

from repro.net.message import Message
from repro.net.buffer import MessageBuffer, DropPolicy
from repro.net.connection import Connection, Transfer, TransferState
from repro.net.generators import MessageEventGenerator, TrafficSpec

__all__ = [
    "Message",
    "MessageBuffer",
    "DropPolicy",
    "Connection",
    "Transfer",
    "TransferState",
    "MessageEventGenerator",
    "TrafficSpec",
]
