"""Columnar in-flight transfer state: the vectorized transfers-phase sweep.

The flattened tick already bounded the transfers phase to O(connections with
queued transfers), but every one of those connections still drained bytes
through per-object Python (``Connection.advance``): a sort of the active
sequence numbers, a method call, a deque peek and a handful of float ops per
link per tick.  Under traffic load — the ``rwp-10k-traffic`` workload keeps
thousands of links busy at once — that loop *is* the transfers phase.

:class:`TransferEngine` moves the per-link accounting into struct-of-arrays
columns, one row per connection that currently holds queued transfers:

``bytes_left``
    remaining bytes of the head-of-queue transfer (the only transfer the
    FIFO link model ever drains),
``bitrate``
    the link speed fixed at establishment,
``seq``
    the connection's ``established_seq`` (the historical processing order),
``depth``
    the queue length (observability; maintained by the enqueue seam).

The sweep is then one vectorized subtraction::

    remaining = bytes_left - bitrate * dt
    done      = remaining <= 1e-9      # the reference loop's epsilon

Rows whose head did **not** complete take the pure-array path — and the
subtraction is the *identical* IEEE-754 operation the reference loop
performs (``moved = min(budget, bytes_left)`` equals ``budget`` there, so
``bytes_left -= moved`` is the same float subtract).  Rows whose head *did*
complete fall back to an exact replay: the head transfer's pre-sweep byte
count is restored and ``Connection.advance`` — the unchanged reference
drain — runs for just that connection, handling multi-transfer completion,
state transitions and leftover budget bit-for-bit.  Completed rows are
replayed in ascending ``established_seq`` order, so completion dispatch
(router hand-off, first-accepted-arrival dedupe, every stats record) happens
in the historical iteration order and reports are byte-identical engine-on
vs engine-off.

Synchronisation is push-seam, mirroring ``RouterStateStore`` (no polling):

* a connection announces its queue going empty -> non-empty through
  ``Connection.activity_sink`` (the flat tick's existing feed); the sweep
  ingests those rows first,
* ``Connection.enqueue`` bumps the row's depth through
  ``Connection.engine`` when a row already exists,
* ``Connection.tear_down`` calls :meth:`TransferEngine.detach`, which
  flushes the head's authoritative byte count back into the ``Transfer``
  object *before* the abort list is built (stats record ``bytes_left``),
* the sweep itself removes rows whose queue drained.

Between sweeps the engine's column — not the head ``Transfer`` object — is
authoritative for the head's remaining bytes; every seam that hands the
object back to Python (tear-down, replay) flushes first.  No transfer is
ever enqueued *during* the transfers phase (sends happen in router hooks),
so the row set only shrinks mid-sweep.

The engine pickles with the world (rows, columns and the fresh-head list
are plain state keyed by ``established_seq``, which survives a round trip
unlike object ids) and is covered by the resume-equality contract — see
``repro.checkpoint``.
"""

from __future__ import annotations

from typing import Dict, List, TYPE_CHECKING

import numpy as np

from repro.net.connection import Connection, TransferState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.world.world import World

__all__ = ["TransferEngine"]

#: initial rows per column; doubled on demand
_INITIAL_CAPACITY = 64

#: the reference loop's completion epsilon (Connection.advance)
_EPSILON = 1e-9


class TransferEngine:
    """Columnar per-connection state driving the vectorized transfers phase.

    One row per connection holding queued transfers, keyed by
    ``established_seq`` (world-assigned, unique per establishment — pooled
    ``Connection`` objects reuse ids, sequence numbers never do).
    """

    def __init__(self) -> None:
        #: established_seq -> row index
        self._row: Dict[int, int] = {}
        #: row index -> connection (the same objects the world owns)
        self._conns: List[Connection] = []
        capacity = _INITIAL_CAPACITY
        #: remaining bytes of the head-of-queue transfer (authoritative
        #: between sweeps; flushed into the Transfer object on detach/replay)
        self._bytes_left = np.zeros(capacity)
        #: link bytes per second, fixed at establishment
        self._bitrate = np.zeros(capacity)
        #: the row's established_seq (int64 copy of the dict key, for the
        #: seq-ordered completion replay)
        self._seq = np.zeros(capacity, dtype=np.int64)
        #: queue length (head included); enqueue seam increments, replay
        #: reloads
        self._depth = np.zeros(capacity, dtype=np.int64)
        #: sequence numbers whose head transfer is still PENDING and must be
        #: marked IN_PROGRESS at the start of the next sweep — exactly when
        #: the reference loop's next ``advance`` call would mark it
        self._fresh: List[int] = []
        #: lifetime counters (observability; not part of canonical reports)
        self.rows_attached = 0
        self.rows_completed = 0

    def __len__(self) -> int:
        """Number of active rows == connections with queued transfers."""
        return len(self._conns)

    def connections(self) -> List[Connection]:
        """The connections currently holding rows (arbitrary order).

        Every returned connection is up and has queued transfers — rows are
        removed eagerly on tear-down and drain — so callers evaluating wake
        predicates (the SoA router sweep) need no stale-entry filtering.
        """
        return list(self._conns)

    def head_bytes_left(self, connection: Connection) -> float:
        """Authoritative remaining bytes of *connection*'s head transfer.

        Raises ``KeyError`` when the connection holds no row.
        """
        return float(self._bytes_left[self._row[connection.established_seq]])

    # ------------------------------------------------------------- row seams
    def _grow(self) -> None:
        capacity = max(2 * len(self._bytes_left), _INITIAL_CAPACITY)
        for name in ("_bytes_left", "_bitrate", "_seq", "_depth"):
            old = getattr(self, name)
            grown = np.zeros(capacity, dtype=old.dtype)
            grown[:len(old)] = old
            setattr(self, name, grown)

    def _attach(self, connection: Connection) -> None:
        """Add a row for *connection* (its queue is non-empty)."""
        row = len(self._conns)
        if row == len(self._bytes_left):
            self._grow()
        seq = connection.established_seq
        queue = connection._queue
        self._conns.append(connection)
        self._row[seq] = row
        self._bytes_left[row] = queue[0].bytes_left
        self._bitrate[row] = connection.bitrate
        self._seq[row] = seq
        self._depth[row] = len(queue)
        self._fresh.append(seq)
        self.rows_attached += 1

    def _remove_row(self, row: int) -> None:
        """Swap-remove *row*, keeping the columns dense."""
        last = len(self._conns) - 1
        seq = int(self._seq[row])
        if row != last:
            self._conns[row] = self._conns[last]
            self._bytes_left[row] = self._bytes_left[last]
            self._bitrate[row] = self._bitrate[last]
            self._seq[row] = self._seq[last]
            self._depth[row] = self._depth[last]
            self._row[int(self._seq[row])] = row
        self._conns.pop()
        del self._row[seq]

    def notify_enqueue(self, connection: Connection) -> None:
        """Enqueue seam: bump the row's queue depth (no-op before ingestion).

        A connection whose queue just went empty -> non-empty has no row yet;
        it announced itself through ``activity_sink`` and is ingested (with
        its actual queue length) at the next sweep.
        """
        row = self._row.get(connection.established_seq)
        if row is not None:
            self._depth[row] += 1

    def detach(self, connection: Connection) -> None:
        """Tear-down seam: flush the head's bytes and drop the row.

        Called by ``Connection.tear_down`` *before* it drains the queue, so
        the aborted head ``Transfer`` carries the authoritative remaining
        byte count into the stats record.  No-op when the connection holds
        no row (nothing was queued).
        """
        row = self._row.get(connection.established_seq)
        if row is None:
            return
        queue = connection._queue
        if queue:
            queue[0].bytes_left = float(self._bytes_left[row])
        self._remove_row(row)

    def _reload(self, connection: Connection) -> None:
        """Refresh *connection*'s row from its queue after a replay."""
        seq = connection.established_seq
        row = self._row[seq]
        queue = connection._queue
        if queue:
            head = queue[0]
            self._bytes_left[row] = head.bytes_left
            self._depth[row] = len(queue)
            if head.state is TransferState.PENDING:
                # the replay's budget ran out exactly at a completion
                # boundary: the reference loop leaves the next head PENDING
                # and marks it on the *next* tick's advance call
                self._fresh.append(seq)
        else:
            self._remove_row(row)

    # -------------------------------------------------------------- the sweep
    def sweep(self, world: "World", now: float, dt: float) -> None:
        """Run one transfers phase: ingest, subtract, replay completions."""
        pending = world._newly_active
        if pending:
            row_of = self._row
            for connection in pending:
                # stale announcements: torn down or drained since the
                # enqueue, or re-announced while already holding a row
                if (connection.is_up and connection.has_queued
                        and connection.established_seq not in row_of):
                    self._attach(connection)
            pending.clear()
        n = len(self._conns)
        if n == 0 or dt <= 0:
            return
        if self._fresh:
            for seq in self._fresh:
                row = self._row.get(seq)
                if row is None:
                    continue
                head = self._conns[row]._queue[0]
                if head.state is TransferState.PENDING:
                    head.state = TransferState.IN_PROGRESS
                    head.started_at = now
            self._fresh = []
        bytes_left = self._bytes_left[:n]
        remaining = bytes_left - self._bitrate[:n] * dt
        done_rows = np.flatnonzero(remaining <= _EPSILON)
        if not len(done_rows):
            bytes_left[:] = remaining
            return
        # save the pre-sweep head bytes of every completed row *before* the
        # columns are overwritten: the replay must restore the exact value
        # (re-deriving it as ``remaining + budget`` would not be FP-exact)
        entries = sorted(
            (int(self._seq[row]), float(bytes_left[row])) for row in done_rows)
        bytes_left[:] = remaining
        row_of = self._row
        conns = self._conns
        complete = world._complete_transfer
        for seq, head_bytes in entries:
            # ascending established_seq == the historical live-table
            # iteration order == the reference loop's dispatch order
            connection = conns[row_of[seq]]
            connection._queue[0].bytes_left = head_bytes
            for transfer in connection.advance(now, dt):
                complete(transfer, now)
            self.rows_completed += 1
            self._reload(connection)
