"""DTN messages (bundles).

A :class:`Message` instance is *one node's copy* of a bundle: when a replica
is handed to another node the message is :meth:`replicated <Message.replicate>`
so each holder keeps its own hop record and replica count, mirroring how the
quota-based protocols in the paper (EER, CR, EBR, Spray-and-Wait, ...) track
the ``numOfReplicas`` attribute per holder.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class Message:
    """A store-carry-and-forward message.

    Parameters
    ----------
    message_id:
        Globally unique identifier (shared by all replicas of the bundle).
    source, destination:
        Node identifiers (integers as used by :class:`repro.world.node.DTNNode`).
    size:
        Payload size in bytes.
    creation_time:
        Simulation time of creation in seconds.
    ttl:
        Time-to-live in seconds from creation; ``float('inf')`` disables expiry.
    copies:
        Number of replicas this holder is entitled to distribute (the paper's
        ``numOfReplicas``, :math:`M_k`).  Always at least 1 for a held message.
    dest_community:
        Community identifier of the destination, attached at creation time as
        required by the CR protocol (Section IV-C of the paper).
    """

    __slots__ = ("message_id", "source", "destination", "size", "creation_time",
                 "ttl", "copies", "dest_community", "hops", "received_time",
                 "metadata")

    def __init__(self, message_id: str, source: int, destination: int, size: int,
                 creation_time: float, ttl: float = float("inf"), copies: int = 1,
                 dest_community: Optional[int] = None) -> None:
        if size <= 0:
            raise ValueError(f"message size must be positive, got {size}")
        if copies < 1:
            raise ValueError(f"copies must be >= 1, got {copies}")
        if ttl <= 0:
            raise ValueError(f"ttl must be positive, got {ttl}")
        self.message_id = str(message_id)
        self.source = int(source)
        self.destination = int(destination)
        self.size = int(size)
        self.creation_time = float(creation_time)
        self.ttl = float(ttl)
        self.copies = int(copies)
        self.dest_community = dest_community
        #: node ids visited by this replica, starting with the source
        self.hops: List[int] = [int(source)]
        #: time the current holder received this replica
        self.received_time: float = float(creation_time)
        #: free-form per-replica annotations used by individual routers
        self.metadata: Dict[str, object] = {}

    # ------------------------------------------------------------------ TTL
    @property
    def expiry_time(self) -> float:
        """Absolute simulation time at which the message expires."""
        return self.creation_time + self.ttl

    def residual_ttl(self, now: float) -> float:
        """Remaining lifetime at time *now* (may be negative once expired)."""
        return self.expiry_time - now

    def is_expired(self, now: float) -> bool:
        """Whether the TTL has elapsed at time *now*."""
        return now >= self.expiry_time

    # ------------------------------------------------------------------ hops
    @property
    def hop_count(self) -> int:
        """Number of forwarding hops taken by this replica."""
        return len(self.hops) - 1

    def add_hop(self, node_id: int) -> None:
        """Record that this replica arrived at *node_id*."""
        self.hops.append(int(node_id))

    # ------------------------------------------------------------- replication
    def replicate(self, copies: int, receiver: int, now: float) -> "Message":
        """Create the replica handed to *receiver* carrying *copies* quota.

        The returned message shares identity, payload and TTL with this one
        but has its own hop list (extended with the receiver) and replica
        count.  The caller is responsible for decrementing its own
        ``copies`` accordingly.
        """
        if copies < 1:
            raise ValueError(f"replica must carry at least one copy, got {copies}")
        clone = Message(self.message_id, self.source, self.destination, self.size,
                        self.creation_time, self.ttl, copies, self.dest_community)
        clone.hops = list(self.hops)
        clone.add_hop(receiver)
        clone.received_time = float(now)
        clone.metadata = dict(self.metadata)
        return clone

    # ------------------------------------------------------------------ misc
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Message({self.message_id!r}, {self.source}->{self.destination}, "
                f"size={self.size}, copies={self.copies})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Message):
            return NotImplemented
        return self.message_id == other.message_id

    def __hash__(self) -> int:
        return hash(self.message_id)
