"""Bandwidth-limited connections between nodes in range.

A :class:`Connection` exists while two nodes are within radio range of each
other.  Routers enqueue :class:`Transfer` objects on it; the world update loop
calls :meth:`Connection.advance` every step, which drains bytes at the link
bitrate and completes transfers in FIFO order (one in flight at a time, as in
the ONE simulator's default link model).
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.net.message import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.net.engine import TransferEngine
    from repro.world.node import DTNNode


class TransferState(enum.Enum):
    """Lifecycle of a queued message transfer."""

    PENDING = "pending"
    IN_PROGRESS = "in_progress"
    COMPLETED = "completed"
    ABORTED = "aborted"


class Transfer:
    """One message replica being copied from *sender* to *receiver*.

    Parameters
    ----------
    message:
        The sender's replica being transferred.
    sender, receiver:
        The two endpoint nodes.
    copies:
        Replica quota the receiver's copy will carry (1 for pure forwarding).
    forwarding:
        If ``True`` the sender relinquishes its replica entirely once the
        transfer completes (single-copy forwarding); if ``False`` the sender
        keeps ``message.copies - copies`` replicas (quota splitting).
    """

    __slots__ = ("message", "sender", "receiver", "copies", "forwarding",
                 "bytes_left", "state", "started_at", "completed_at")

    def __init__(self, message: Message, sender: "DTNNode", receiver: "DTNNode",
                 copies: int = 1, forwarding: bool = False) -> None:
        if copies < 1:
            raise ValueError(f"transfer must carry at least one copy, got {copies}")
        self.message = message
        self.sender = sender
        self.receiver = receiver
        self.copies = int(copies)
        self.forwarding = bool(forwarding)
        self.bytes_left = float(message.size)
        self.state = TransferState.PENDING
        self.started_at: Optional[float] = None
        self.completed_at: Optional[float] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Transfer({self.message.message_id!r} {self.sender.node_id}->"
                f"{self.receiver.node_id} copies={self.copies} {self.state.value})")


class Connection:
    """A live bidirectional link between two nodes.

    Parameters
    ----------
    node_a, node_b:
        Endpoints.
    bitrate:
        Link speed in bytes per second (the minimum of the two interfaces').
    established_at:
        Simulation time the nodes came into range.
    """

    def __init__(self, node_a: "DTNNode", node_b: "DTNNode", bitrate: float,
                 established_at: float) -> None:
        self._queue: Deque[Transfer] = deque()
        #: reference counts of queued message ids and (message id, receiver)
        #: pairs, kept in sync by enqueue/advance/tear_down so
        #: ``is_transferring`` is O(1) instead of a queue scan (routers call
        #: it once per candidate message per contact)
        self._queued_ids: Dict[str, int] = {}
        self._queued_pairs: Dict[Tuple[str, int], int] = {}
        #: world-assigned monotonic establishment number; sorting live
        #: connections by it reproduces the world's link-table insertion
        #: order exactly (the transfer-phase processing order)
        self.established_seq = 0
        #: optional list the connection appends itself to when its queue goes
        #: empty -> non-empty (the world's O(active) transfer-phase feed)
        self.activity_sink: Optional[List["Connection"]] = None
        #: the world's columnar transfer engine (None when the engine is
        #: off); world-owned like ``activity_sink``, assigned at
        #: establishment.  enqueue/tear_down push depth updates and row
        #: detach through it — see repro.net.engine
        self.engine: Optional["TransferEngine"] = None
        self.reset(node_a, node_b, bitrate, established_at)

    def reset(self, node_a: "DTNNode", node_b: "DTNNode", bitrate: float,
              established_at: float) -> None:
        """Re-initialise this object for a fresh link (connection pooling).

        The world recycles torn-down ``Connection`` objects instead of
        allocating one per link-up; a reset connection is indistinguishable
        from a newly constructed one (``established_seq`` and
        ``activity_sink`` are world-owned and reassigned at establishment).
        """
        if bitrate <= 0:
            raise ValueError(f"bitrate must be positive, got {bitrate}")
        self.node_a = node_a
        self.node_b = node_b
        self.bitrate = float(bitrate)
        self.established_at = float(established_at)
        self.is_up = True
        self.torn_down_at: Optional[float] = None
        self._queue.clear()
        self._queued_ids.clear()
        self._queued_pairs.clear()
        self.completed_transfers = 0
        self.aborted_transfers = 0

    # ------------------------------------------------------------- endpoints
    @property
    def key(self) -> tuple:
        """Canonical (min_id, max_id) pair identifying the link."""
        a, b = self.node_a.node_id, self.node_b.node_id
        return (a, b) if a <= b else (b, a)

    def other(self, node: "DTNNode") -> "DTNNode":
        """Return the peer of *node* on this connection."""
        if node is self.node_a or node.node_id == self.node_a.node_id:
            return self.node_b
        if node is self.node_b or node.node_id == self.node_b.node_id:
            return self.node_a
        raise ValueError(f"node {node.node_id} is not an endpoint of {self!r}")

    def involves(self, node: "DTNNode") -> bool:
        """Whether *node* is one of the endpoints."""
        return node.node_id in (self.node_a.node_id, self.node_b.node_id)

    # ------------------------------------------------------------- transfers
    @property
    def queued_transfers(self) -> List[Transfer]:
        """Snapshot of pending/in-progress transfers (FIFO order)."""
        return list(self._queue)

    def is_transferring(self, message_id: str, to_node_id: Optional[int] = None) -> bool:
        """Whether *message_id* is already queued (optionally to a given node).

        O(1): answered from the reference-count index maintained by
        ``enqueue``/``advance``/``tear_down``, not by scanning the queue.
        """
        if to_node_id is None:
            return message_id in self._queued_ids
        return (message_id, to_node_id) in self._queued_pairs

    def _track(self, transfer: Transfer) -> None:
        message_id = transfer.message.message_id
        pair = (message_id, transfer.receiver.node_id)
        ids = self._queued_ids
        ids[message_id] = ids.get(message_id, 0) + 1
        pairs = self._queued_pairs
        pairs[pair] = pairs.get(pair, 0) + 1

    def _untrack(self, transfer: Transfer) -> None:
        message_id = transfer.message.message_id
        pair = (message_id, transfer.receiver.node_id)
        ids = self._queued_ids
        count = ids[message_id] - 1
        if count:
            ids[message_id] = count
        else:
            del ids[message_id]
        pairs = self._queued_pairs
        count = pairs[pair] - 1
        if count:
            pairs[pair] = count
        else:
            del pairs[pair]

    @property
    def has_queued(self) -> bool:
        """Whether any transfer is pending or in progress on this link."""
        return bool(self._queue)

    def enqueue(self, transfer: Transfer) -> Transfer:
        """Queue *transfer* for transmission.  Raises if the link is down."""
        if not self.is_up:
            raise ConnectionDownError("cannot enqueue a transfer on a torn-down link")
        if not (self.involves(transfer.sender) and self.involves(transfer.receiver)):
            raise ValueError("transfer endpoints do not match the connection")
        if not self._queue and self.activity_sink is not None:
            self.activity_sink.append(self)
        self._queue.append(transfer)
        self._track(transfer)
        if self.engine is not None:
            self.engine.notify_enqueue(self)
        return transfer

    def advance(self, now: float, dt: float) -> List[Transfer]:
        """Progress transfers by *dt* seconds of link time.

        Multiple queued transfers may complete within one step if the link is
        fast relative to the step length.  Returns the transfers completed in
        this call (their ``state`` is already ``COMPLETED``); the caller (the
        world) performs the actual hand-off to the receiving router so that
        buffer admission and statistics stay in one place.
        """
        if not self.is_up or dt <= 0:
            return []
        budget = self.bitrate * dt
        completed: List[Transfer] = []
        while budget > 0 and self._queue:
            transfer = self._queue[0]
            if transfer.state is TransferState.PENDING:
                transfer.state = TransferState.IN_PROGRESS
                transfer.started_at = now
            moved = min(budget, transfer.bytes_left)
            transfer.bytes_left -= moved
            budget -= moved
            if transfer.bytes_left <= 1e-9:
                transfer.state = TransferState.COMPLETED
                transfer.completed_at = now
                self._queue.popleft()
                self._untrack(transfer)
                self.completed_transfers += 1
                completed.append(transfer)
            else:
                break
        return completed

    def tear_down(self, now: float) -> List[Transfer]:
        """Mark the link down and abort all queued transfers.

        Returns the aborted transfers so the world can notify routers/stats.
        """
        if self.engine is not None:
            # flush the head's authoritative byte count out of the engine
            # columns *before* building the abort list: the stats record
            # reads transfer.bytes_left
            self.engine.detach(self)
        self.is_up = False
        self.torn_down_at = float(now)
        aborted = list(self._queue)
        for transfer in aborted:
            transfer.state = TransferState.ABORTED
            self.aborted_transfers += 1
        self._queue.clear()
        self._queued_ids.clear()
        self._queued_pairs.clear()
        return aborted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.is_up else "down"
        return (f"Connection({self.node_a.node_id}<->{self.node_b.node_id}, "
                f"{state}, queued={len(self._queue)})")


class ConnectionDownError(RuntimeError):
    """Raised when using a connection that has been torn down."""
