"""The ``python -m repro bench`` performance-trajectory harness.

Every PR that touches a hot path needs a number to beat.  This module runs a
small set of *paired* benchmarks — each workload executes twice, once through
the pure-Python reference implementations (the pre-vectorization baseline
kept in-tree precisely for this purpose) and once through the production
vectorized path — and writes one machine-readable ``BENCH_*.json`` holding
both timings, the speedup, and checksums proving the two paths computed the
same answers:

``encounter_pipeline``
    The headline: a 1000-node EER knowledge layer fed a synthetic encounter
    stream.  Every encounter records a contact, refreshes the owner's MI row
    and evaluates the expected encounter value (Theorem 1); every few
    encounters a batch of single-replica forwarding decisions queries the
    MEMD (Theorems 2+3).  Baseline: dict-of-deques history, per-peer Python
    estimator loops, and one fresh Dijkstra per (source, destination) query.
    Current: ring-buffer history, batch kernels, and the version-keyed
    delay-vector cache.  The EEV/MEMD checksums must match bit for bit.
``buffer_churn``
    Message adds under eviction pressure plus per-tick expiry sweeps.
    Baseline: the sort-per-add / scan-per-tick reference buffer.  Current:
    the heap-indexed buffer.
``collector_ingest``
    A million-ish event stream into the stats collector, lists vs columnar
    record mode (both must yield identical metrics).
``scenario_eer``
    An end-to-end catalog scenario run, reference vs vectorized router
    internals: wall-clock ms/tick, encounters processed per wall-second, and
    the full delivery-metric checksum set, which must be identical — the
    vectorized hot path must not change a single routing decision.
``community_detection``
    The community pipeline's aggregation step: per-node contact histories
    from a planted-community contact stream are reduced to one aggregate
    contact graph, repeatedly (as the online tracker does between
    detections), then Newman detection runs once on the result.  Baseline:
    the per-edge Python builder (one ``contact_count``/``mean_interval``
    call per peer).  Current: the vectorized builder over the zero-copy
    ``interval_arrays()``/``contact_count_arrays()`` views.  The graph
    checksums (edge count, total weight, mean-interval sum) and the detected
    assignment CRC must match bit for bit.
``world_tick_10k``
    The scale tentpole: the ``rwp-10k`` catalog scenario (10 000 pedestrians
    at quick/full scale) run through the staged tick pipeline.  Baseline:
    per-follower movement loop + single-threaded ``KDTreeConnectivity``.
    Current: batched ``MovementEngine`` + ``ShardedConnectivity``.  The
    throughput key is detection throughput (ticks per second of pure
    detector time, from the ``connectivity.detect`` sub-meter) — the gated
    claim is *sharded detection at least 2x single-threaded k-d tree on the
    same machine* — and the per-phase wall-time breakdown rides along.  The
    delivery/contact checksums plus an end-of-run position checksum must be
    bit-identical: sharding must not change a single simulation outcome.

``world_tick_100k``
    The flattened-tick tentpole.  The *paired* half re-uses the
    ``world_tick_10k`` runs but gates on **whole-tick** throughput: the
    flattened pipeline (idle-router skip-list + batched link bookkeeping +
    O(active) transfer advancement + sharded detection) must at least
    double ticks-per-second over the pre-tentpole serial world at 10k
    nodes, with bit-identical checksums.  A ``scale_100k`` section rides
    along holding one completed ``rwp-100k`` run (100 000 pedestrians at
    city scale) and a re-run of the same seed through the serial reference
    world (k-d tree + per-follower movement + tick-every-router); its
    ``reference_checksums_match`` bit is the tentpole's correctness claim.

``--compare`` turns the harness into a regression gate: current throughputs
are checked against a committed baseline JSON (CI fails on >25% regression
by default).  See docs/performance.md for the JSON schema and CI wiring.
"""

from __future__ import annotations

import datetime
import json
import platform
import sys
import time
import zlib
from typing import Dict, List, Optional

import numpy as np

from repro.contacts.history import ContactHistory, ContactHistoryReference
from repro.contacts.md_matrix import build_delay_matrix
from repro.contacts.memd import MemdCache, minimum_expected_meeting_delay
from repro.contacts.mi_matrix import MeetingIntervalMatrix
from repro.core.expectation import expected_encounter_value
from repro.experiments.builder import build_scenario
from repro.experiments.catalog import make_scenario
from repro.metrics.collector import StatsCollector
from repro.net.buffer import DropPolicy, MessageBuffer, ReferenceMessageBuffer
from repro.net.message import Message
from repro.version import __version__

#: benchmark scales: (encounter stream, buffer ops, collector events,
#: scenario sim_time) — "smoke" exists so tests and pre-merge hooks finish in
#: seconds; "quick" is the CI default; "full" is for real trajectory points
SCALES: Dict[str, Dict[str, float]] = {
    "smoke": dict(nodes=120, encounters=150, memd_every=8, memd_batch=2,
                  buffer_ops=2_000, collector_events=20_000,
                  scenario_time=200.0, scenario_repeats=1,
                  detect_nodes=60, detect_contacts=4_000, detect_rounds=3,
                  world_nodes=1_500, world_ticks=15, world_repeats=1,
                  world100k_nodes=2_000, world100k_ticks=5,
                  traffic_nodes=1_500, traffic_ticks=60, traffic_repeats=1,
                  traffic_rate=20.0),
    "quick": dict(nodes=1000, encounters=600, memd_every=8, memd_batch=4,
                  buffer_ops=20_000, collector_events=200_000,
                  scenario_time=600.0, scenario_repeats=3,
                  detect_nodes=200, detect_contacts=30_000, detect_rounds=5,
                  world_nodes=10_000, world_ticks=40, world_repeats=3,
                  world100k_nodes=100_000, world100k_ticks=6,
                  traffic_nodes=10_000, traffic_ticks=60, traffic_repeats=3,
                  traffic_rate=50.0),
    "full": dict(nodes=1000, encounters=2_400, memd_every=8, memd_batch=4,
                 buffer_ops=100_000, collector_events=1_000_000,
                 scenario_time=2_000.0, scenario_repeats=3,
                 detect_nodes=300, detect_contacts=100_000, detect_rounds=8,
                 world_nodes=10_000, world_ticks=120, world_repeats=3,
                 world100k_nodes=100_000, world100k_ticks=12,
                 traffic_nodes=10_000, traffic_ticks=180, traffic_repeats=3,
                 traffic_rate=50.0),
}


def peak_rss_mb() -> Optional[float]:
    """Peak resident set size of this process in MiB (``None`` off-POSIX).

    Process-wide and monotonic: per-benchmark values record the high-water
    mark *up to* that point of the run, which is why the memory-sensitive
    benchmarks run their lean mode first.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS
    if sys.platform == "darwin":  # pragma: no cover
        return peak / (1024 * 1024)
    return peak / 1024


# ------------------------------------------------------------------ encounter
def _encounter_stream(num_nodes: int, encounters: int, seed: int):
    """Deterministic synthetic contact stream for the knowledge layer."""
    rng = np.random.default_rng(seed)
    peers = rng.integers(1, num_nodes, size=encounters)
    # strictly increasing integer-ish times, several contacts per tick
    times = np.cumsum(rng.integers(1, 30, size=encounters)).astype(float)
    dests = rng.integers(1, num_nodes, size=encounters)
    return peers, times, dests


def _seed_mi_matrix(num_nodes: int, owner: int, seed: int) -> MeetingIntervalMatrix:
    """An MI matrix populated as if rows had been learned from exchanges."""
    rng = np.random.default_rng(seed + 1)
    values = rng.integers(60, 3600, size=(num_nodes, num_nodes)).astype(float)
    # mark a share of pairs unknown, symmetrically-ish
    values[rng.random((num_nodes, num_nodes)) < 0.3] = np.inf
    np.fill_diagonal(values, 0.0)
    mi = MeetingIntervalMatrix(num_nodes, owner)
    mi.load_state(values, np.zeros(num_nodes))
    return mi


def bench_encounter_pipeline(scale: Dict[str, float], seed: int,
                             reference: bool) -> Dict[str, object]:
    """Run the contacts -> estimators -> MEMD pipeline in one mode."""
    num_nodes = int(scale["nodes"])
    encounters = int(scale["encounters"])
    memd_every = int(scale["memd_every"])
    memd_batch = int(scale["memd_batch"])
    peers, times, dests = _encounter_stream(num_nodes, encounters, seed)
    owner = 0
    mi = _seed_mi_matrix(num_nodes, owner, seed)
    history = (ContactHistoryReference if reference else ContactHistory)(
        owner, 20)
    cache = MemdCache(refresh=0.0)
    horizon = 0.28 * 1200.0  # alpha * TTL, the paper's operating point
    eev_checksum = 0.0
    memd_checksum = 0.0
    memd_finite = 0
    start = time.perf_counter()
    for i in range(encounters):
        now = float(times[i])
        history.record_contact(int(peers[i]), now)
        mean = history.mean_interval(int(peers[i]))
        if mean is not None:
            mi.update_own_row({int(peers[i]): mean}, now)
        eev_checksum += expected_encounter_value(history, now, horizon)
        if i % memd_every == memd_every - 1:
            # a batch of single-replica forwarding decisions
            for j in range(memd_batch):
                dest = int(dests[(i + j) % encounters])
                if dest == owner:
                    continue
                if reference:
                    # pre-PR pattern: fresh MD build + Dijkstra per query
                    md = build_delay_matrix(history, mi, now)
                    value = minimum_expected_meeting_delay(md, owner, dest)
                else:
                    value = float(cache.delays(history, mi, now)[dest])
                if np.isfinite(value):
                    memd_checksum += value
                    memd_finite += 1
    seconds = time.perf_counter() - start
    return {
        "seconds": round(seconds, 4),
        "encounters_per_s": round(encounters / seconds, 2),
        "checksums": {
            "eev_sum": eev_checksum,
            "memd_sum": memd_checksum,
            "memd_finite": memd_finite,
        },
    }


# --------------------------------------------------------------------- buffer
def bench_buffer_churn(scale: Dict[str, float], seed: int,
                       reference: bool) -> Dict[str, object]:
    """Adds under eviction pressure + per-tick expiry sweeps, one mode."""
    ops = int(scale["buffer_ops"])
    rng = np.random.default_rng(seed)
    sizes = rng.integers(10_000, 40_000, size=ops)
    ttls = rng.integers(200, 2_000, size=ops).astype(float)
    buffer_cls = ReferenceMessageBuffer if reference else MessageBuffer
    buffer = buffer_cls(capacity=1024 * 1024,
                        drop_policy=DropPolicy.OLDEST_RECEIVED)
    evicted_total = 0
    expired_total = 0
    start = time.perf_counter()
    for i in range(ops):
        now = float(i)
        message = Message(f"m{i}", 0, 1, int(sizes[i]), now, ttl=float(ttls[i]))
        message.received_time = now
        evicted_total += len(buffer.add(message))
        # the per-tick TTL sweep every router performs
        expired_total += len(buffer.drop_expired(now))
    seconds = time.perf_counter() - start
    return {
        "seconds": round(seconds, 4),
        "ops_per_s": round(ops / seconds, 2),
        "checksums": {
            "evicted": evicted_total,
            "expired": expired_total,
            "stored": len(buffer),
            "occupancy": buffer.occupancy,
        },
    }


# ------------------------------------------------------------------ collector
def bench_collector_ingest(scale: Dict[str, float], seed: int,
                           mode: str) -> Dict[str, object]:
    """A relay/delivery event stream into one collector mode."""
    events = int(scale["collector_events"])
    rng = np.random.default_rng(seed)
    froms = rng.integers(0, 1000, size=events)
    tos = rng.integers(0, 1000, size=events)
    collector = StatsCollector(mode=mode)
    messages = [Message(f"m{i}", int(froms[i]), int(tos[i]), 25_000,
                        float(i % 997)) for i in range(min(events, 997))]
    start = time.perf_counter()
    for i in range(events):
        message = messages[i % len(messages)]
        if i % 101 == 0:
            collector.message_created(message)
        collector.message_relayed(message, int(froms[i]), int(tos[i]),
                                  float(i), 1, False)
        if i % 97 == 0:
            collector.message_delivered(message, float(i + 10))
        if i % 89 == 0:
            collector.message_dropped(message, int(froms[i]), float(i), "buffer")
    seconds = time.perf_counter() - start
    return {
        "seconds": round(seconds, 4),
        "events_per_s": round(events / seconds, 2),
        "record_storage_mb": round(collector.record_storage_bytes() / 2**20, 2),
        "checksums": {
            "created": collector.created,
            "relayed": collector.relayed,
            "delivered": collector.delivered,
            "dropped": collector.dropped,
            "delivery_ratio": collector.delivery_ratio,
            "average_latency": collector.average_latency,
            "overhead_ratio": collector.overhead_ratio,
            "average_hop_count": collector.average_hop_count,
        },
    }


# ------------------------------------------------------------------- scenario
def bench_scenario(scale: Dict[str, float], seed: int,
                   reference: bool) -> Dict[str, object]:
    """One end-to-end catalog scenario run, reference vs vectorized.

    The run repeats ``scenario_repeats`` times (fresh world each time,
    identical results by construction) and reports the fastest wall time —
    the standard way to strip allocator/OS noise from a sub-second workload.
    """
    overrides: Dict[str, object] = {
        "sim_time": float(scale["scenario_time"]),
        "protocol": "eer",
        "seed": seed,
    }
    if reference:
        overrides["router.reference_impl"] = True
    config = make_scenario("bench", overrides)
    seconds = float("inf")
    for _ in range(int(scale.get("scenario_repeats", 1))):
        built = build_scenario(config)
        start = time.perf_counter()
        built.run()
        seconds = min(seconds, time.perf_counter() - start)
    stats = built.stats
    ticks = max(1, built.world.updates)
    return {
        "seconds": round(seconds, 4),
        "ms_per_tick": round(1000.0 * seconds / ticks, 4),
        "encounters_per_s": round(stats.contacts / seconds, 2),
        "ticks": ticks,
        "checksums": {
            "created": stats.created,
            "delivered": stats.delivered,
            "relayed": stats.relayed,
            "dropped": stats.dropped,
            "contacts": stats.contacts,
            "control_rows_exchanged": stats.control_rows_exchanged,
            "delivery_ratio": stats.delivery_ratio,
            "average_latency": stats.average_latency,
            "goodput": stats.goodput,
            "overhead_ratio": stats.overhead_ratio,
            "average_hop_count": stats.average_hop_count,
        },
    }


# ------------------------------------------------------------ 10k world tick
def bench_world_tick(scale: Dict[str, float], seed: int, reference: bool,
                     extra_overrides: Optional[Dict[str, object]] = None
                     ) -> Dict[str, object]:
    """The ``rwp-10k`` scenario through the staged tick pipeline, one mode.

    Reference: per-follower movement loop + single-threaded k-d tree
    detection + every router ticked every update (the pre-tentpole serial
    world).  Current: batched movement + sharded connectivity + the idle
    router skip-list.  Both modes run the *same* seed and must end in the
    same state bit for bit; the checksums include the summed end-of-run
    position matrix, so a single diverging float64 anywhere in 10 000
    trajectories fails the pair.

    The run repeats ``world_repeats`` times (fresh world each time, results
    identical by construction) and every reported timing is the
    best-of-repeats — the phase wall times at 10k nodes are small enough
    that a single run is hostage to scheduler noise on shared CI machines,
    and the gate compares timing *ratios*.

    ``extra_overrides`` pins individual tick features for intermediate
    baselines (e.g. ``{"router_soa": False}`` isolates the SoA router sweep
    against the per-router skip-scan with everything else current).
    """
    overrides: Dict[str, object] = {
        "num_nodes": int(scale["world_nodes"]),
        "sim_time": float(scale["world_ticks"]),
        "seed": seed,
    }
    if reference:
        overrides["detector"] = "kdtree"
        overrides["batch_movement"] = False
        overrides["router_skiplist"] = False
        overrides["flat_tick"] = False
        overrides["router_soa"] = False
        overrides["transfer_engine"] = False
    if extra_overrides:
        overrides.update(extra_overrides)
    config = make_scenario("rwp-10k", overrides)
    seconds = float("inf")
    best_phases: Dict[str, float] = {}
    for _ in range(int(scale.get("world_repeats", 1))):
        built = build_scenario(config)
        start = time.perf_counter()
        built.run()
        elapsed = time.perf_counter() - start
        seconds = min(seconds, elapsed)
        for name, value in built.stats.tick_phase_seconds.items():
            if name not in best_phases or value < best_phases[name]:
                best_phases[name] = value
        built.world.stop()  # releases the sharded detector's worker pool
    stats = built.stats
    world = built.world
    ticks = max(1, world.updates)
    phases = {name: round(value, 4)
              for name, value in sorted(best_phases.items())}
    detect_seconds = max(best_phases.get("connectivity.detect", 0.0), 1e-9)
    move_seconds = max(best_phases.get("move", 0.0), 1e-9)
    routers_seconds = max(best_phases.get("routers", 0.0), 1e-9)
    positions_sum = float(world.positions().sum())
    return {
        "seconds": round(seconds, 4),
        "ms_per_tick": round(1000.0 * seconds / ticks, 4),
        "ticks_per_s": round(ticks / seconds, 2),
        "detect_ticks_per_s": round(ticks / detect_seconds, 2),
        "move_ticks_per_s": round(ticks / move_seconds, 2),
        "router_ticks_per_s": round(ticks / routers_seconds, 2),
        "phase_seconds": phases,
        "detector_rebuilds": getattr(world.detector, "rebuilds", None),
        "routers_ticked": world.routers_ticked,
        "routers_skipped": world.routers_skipped,
        "routers_batched": world.routers_batched,
        "ticks": ticks,
        "checksums": {
            "created": stats.created,
            "delivered": stats.delivered,
            "relayed": stats.relayed,
            "dropped": stats.dropped,
            "contacts": stats.contacts,
            "delivery_ratio": stats.delivery_ratio,
            "average_latency": stats.average_latency,
            "positions_sum": positions_sum,
        },
    }


# ----------------------------------------------------------- 100k world tick
def bench_world_tick_100k_run(scale: Dict[str, float],
                              seed: int) -> Dict[str, object]:
    """One completed ``rwp-100k`` run, plus a serial-reference parity check.

    The current mode is the scenario as catalogued: sharded detection,
    batched movement, batched link bookkeeping, skip-list on.  The reference
    re-runs the same seed through the pre-tentpole world — single-threaded
    k-d tree, per-follower movement, every router ticked — and the two
    checksum sets (delivery counters + summed end-of-run positions) must be
    identical: ``reference_checksums_match`` is the scale tentpole's
    correctness bit.  Single run per mode; at 100 000 nodes the workload is
    long enough that best-of-repeats buys nothing.
    """
    nodes = int(scale["world100k_nodes"])
    sim_time = float(scale["world100k_ticks"])

    def run_once(reference: bool) -> Dict[str, object]:
        overrides: Dict[str, object] = {
            "num_nodes": nodes,
            "sim_time": sim_time,
            "seed": seed,
        }
        if reference:
            overrides.update(detector="kdtree", batch_movement=False,
                             router_skiplist=False, flat_tick=False,
                             router_soa=False, transfer_engine=False)
        config = make_scenario("rwp-100k", overrides)
        built = build_scenario(config)
        start = time.perf_counter()
        built.run()
        seconds = time.perf_counter() - start
        stats = built.stats
        world = built.world
        ticks = max(1, world.updates)
        result = {
            "seconds": round(seconds, 4),
            "ms_per_tick": round(1000.0 * seconds / ticks, 4),
            "ticks_per_s": round(ticks / seconds, 2),
            "phase_seconds": {
                name: round(value, 4) for name, value
                in sorted(stats.tick_phase_seconds.items())},
            "routers_ticked": world.routers_ticked,
            "routers_skipped": world.routers_skipped,
            "routers_batched": world.routers_batched,
            "ticks": ticks,
            "checksums": {
                "created": stats.created,
                "delivered": stats.delivered,
                "relayed": stats.relayed,
                "dropped": stats.dropped,
                "contacts": stats.contacts,
                "delivery_ratio": stats.delivery_ratio,
                "average_latency": stats.average_latency,
                "positions_sum": float(world.positions().sum()),
            },
        }
        built.world.stop()
        return result

    current = run_once(reference=False)
    reference = run_once(reference=True)
    return {
        "nodes": nodes,
        "sim_time": sim_time,
        "current": current,
        "reference": reference,
        "speedup_vs_reference": (
            round(float(current["ticks_per_s"])
                  / float(reference["ticks_per_s"]), 3)
            if float(reference["ticks_per_s"]) else None),
        "reference_checksums_match":
            current["checksums"] == reference["checksums"],
    }


# ------------------------------------------------------------ transfer churn
def _records_crc(records, fields) -> int:
    """Chained CRC-32 over the given *fields* of every record, in order.

    ``repr`` of each field keeps floats exact (``repr(float)`` is the
    shortest round-tripping form), so a single diverging byte count or
    completion time anywhere in the run changes the checksum.
    """
    crc = 0
    for record in records:
        line = ":".join(repr(getattr(record, field)) for field in fields)
        crc = zlib.crc32(line.encode(), crc)
    return crc


def bench_transfer_churn(scale: Dict[str, float], seed: int,
                         reference: bool) -> Dict[str, object]:
    """The ``rwp-10k-traffic`` scenario through one transfers-phase mode.

    Reference: the per-connection ``Connection.advance`` loop over the
    active set (``transfer_engine=False``; everything else — sharded
    detection, batched movement, SoA routers — stays current, so the pair
    isolates the transfers phase).  Current: the columnar
    :class:`~repro.net.engine.TransferEngine` sweep.  Same seed, and the
    checksums chain a CRC-32 over every relayed, delivered and aborted
    record — field-exact completion times and byte counts — so the pair
    fails if the engine reorders or mistimes a single completion.

    The throughput key is ``transfer_bytes_per_s``: payload bytes moved to
    completion per wall-second spent in the transfers phase
    (best-of-repeats, like the other world benchmarks).
    """
    overrides: Dict[str, object] = {
        "num_nodes": int(scale["traffic_nodes"]),
        "sim_time": float(scale["traffic_ticks"]),
        # denser arrivals than the catalogued scenario so thousands of
        # links drain concurrently even over a short benchmark horizon
        "traffic_rate": float(scale["traffic_rate"]),
        "seed": seed,
    }
    if reference:
        overrides["transfer_engine"] = False
    config = make_scenario("rwp-10k-traffic", overrides)
    seconds = float("inf")
    best_phases: Dict[str, float] = {}
    for _ in range(int(scale.get("traffic_repeats", 1))):
        built = build_scenario(config)
        start = time.perf_counter()
        built.run()
        elapsed = time.perf_counter() - start
        seconds = min(seconds, elapsed)
        for name, value in built.stats.tick_phase_seconds.items():
            if name not in best_phases or value < best_phases[name]:
                best_phases[name] = value
        built.world.stop()
    stats = built.stats
    world = built.world
    ticks = max(1, world.updates)
    transfers_seconds = max(best_phases.get("transfers", 0.0), 1e-9)
    engine = world.transfer_engine
    return {
        "seconds": round(seconds, 4),
        "ms_per_tick": round(1000.0 * seconds / ticks, 4),
        "ticks_per_s": round(ticks / seconds, 2),
        "transfers_phase_seconds": round(transfers_seconds, 4),
        "transfer_bytes_per_s": round(
            stats.bytes_delivered / transfers_seconds, 2),
        "transfers_ticks_per_s": round(ticks / transfers_seconds, 2),
        "phase_seconds": {name: round(value, 4)
                          for name, value in sorted(best_phases.items())},
        "engine_rows_attached": engine.rows_attached if engine else None,
        "engine_rows_completed": engine.rows_completed if engine else None,
        "ticks": ticks,
        "checksums": {
            "created": stats.created,
            "delivered": stats.delivered,
            "relayed": stats.relayed,
            "dropped": stats.dropped,
            "transfers_completed": stats.transfers_completed,
            "transfers_aborted": stats.transfers_aborted,
            "bytes_delivered": stats.bytes_delivered,
            "delivery_ratio": stats.delivery_ratio,
            "average_latency": stats.average_latency,
            "relayed_crc": _records_crc(
                stats.relayed_records,
                ("message_id", "from_node", "to_node", "time", "copies")),
            "delivered_crc": _records_crc(
                stats.delivered_records,
                ("message_id", "source", "destination", "delivered_at")),
            "aborted_crc": _records_crc(
                stats.aborted_records,
                ("message_id", "from_node", "to_node", "time", "bytes_left")),
        },
    }


# ---------------------------------------------------------- community pipeline
def _planted_history_set(num_nodes: int, contacts: int,
                         seed: int) -> List[ContactHistory]:
    """Per-node contact histories from a planted-community contact stream.

    Four round-robin communities; 85% of contacts are intra-community.
    Global time increases monotonically, so per-pair contact times are valid
    for :meth:`~repro.contacts.history.ContactHistory.record_contact`.
    """
    rng = np.random.default_rng(seed)
    histories = [ContactHistory(node, 20) for node in range(num_nodes)]
    communities = 4
    members: List[List[int]] = [
        [node for node in range(num_nodes) if node % communities == c]
        for c in range(communities)]
    intra = rng.random(contacts) < 0.85
    steps = rng.integers(1, 5, size=contacts)
    now = 0.0
    for index in range(contacts):
        now += float(steps[index])
        a = int(rng.integers(0, num_nodes))
        if intra[index]:
            pool = members[a % communities]
            b = int(pool[int(rng.integers(0, len(pool)))])
        else:
            b = int(rng.integers(0, num_nodes))
        if a == b:
            continue
        histories[a].record_contact(b, now)
        histories[b].record_contact(a, now)
    return histories


def _graph_checksums(graph, groups) -> Dict[str, object]:
    """Deterministic checksums of an aggregate contact graph + detection.

    Pure verification bookkeeping (the caller times the workload — this
    runs outside the timer).  Edges are visited in sorted ``(lo, hi)``
    order, so the floating-point mean-interval accumulation order is
    identical for any two graphs with identical contents — a
    reference/vectorized attribute mismatch of even one ULP changes the
    sum.
    """
    import math
    import zlib

    from repro.community.online import assignment_from_groups

    weight_sum = 0
    means: List[float] = []
    missing_means = 0
    for lo, hi in sorted((min(u, v), max(u, v)) for u, v in graph.edges):
        data = graph[lo][hi]
        weight_sum += int(data["weight"])
        mean = data.get("mean_interval")
        if mean is None:
            missing_means += 1
        else:
            means.append(float(mean))
    assignment = assignment_from_groups(
        [set(g) for g in groups], max(graph.nodes) + 1 if graph.nodes else 1)
    signature = ",".join(f"{node}:{community}" for node, community
                         in sorted(assignment.as_dict().items()))
    return {
        "nodes": graph.number_of_nodes(),
        "edges": graph.number_of_edges(),
        "weight_sum": weight_sum,
        "mean_sum": math.fsum(means),
        "missing_means": missing_means,
        "communities": len(groups),
        "assignment_crc": zlib.crc32(signature.encode()),
    }


def bench_community_detection(scale: Dict[str, float], seed: int,
                              reference: bool) -> Dict[str, object]:
    """Aggregation rounds + one graph build + one detection, per mode.

    The reference mode re-materialises the aggregate graph per round through
    the per-edge builder (the pre-vectorization pattern).  The current mode
    reduces the histories to edge *arrays* per round — that is what the
    online pipeline keeps fresh — and materialises a graph only once, when
    detection runs, exactly like the tracker's flush.  Both modes end in the
    same Newman detection and must produce bit-identical graph checksums and
    assignment CRC.
    """
    from repro.community.graph import (
        contact_edge_arrays,
        contact_graph_from_history,
        graph_from_edge_arrays,
    )
    from repro.community.newman import newman_modularity_communities

    num_nodes = int(scale["detect_nodes"])
    contacts = int(scale["detect_contacts"])
    rounds = int(scale["detect_rounds"])
    histories = _planted_history_set(num_nodes, contacts, seed)
    start = time.perf_counter()
    if reference:
        for _ in range(rounds):
            graph = contact_graph_from_history(histories, min_contacts=1)
    else:
        for _ in range(rounds):
            arrays = contact_edge_arrays(histories, min_contacts=1)
        graph = graph_from_edge_arrays(*arrays)
    groups = newman_modularity_communities(graph)
    seconds = time.perf_counter() - start
    checksums = _graph_checksums(graph, groups)
    return {
        "seconds": round(seconds, 4),
        "aggregations_per_s": round(rounds / seconds, 2),
        "checksums": checksums,
    }


# ------------------------------------------------------------------- assembly
def _paired(name: str, baseline: Dict[str, object], current: Dict[str, object],
            throughput_key: str, workload: Dict[str, object]) -> Dict[str, object]:
    base_rate = float(baseline[throughput_key])  # type: ignore[arg-type]
    cur_rate = float(current[throughput_key])  # type: ignore[arg-type]
    return {
        "workload": workload,
        "throughput_key": throughput_key,
        "baseline": baseline,
        "current": current,
        "speedup": round(cur_rate / base_rate, 3) if base_rate else None,
        "checksums_match": baseline["checksums"] == current["checksums"],
    }


def run_benchmarks(scale_name: str = "quick", seed: int = 1) -> Dict[str, object]:
    """Run every paired benchmark at *scale_name* and assemble the payload."""
    if scale_name not in SCALES:
        raise KeyError(f"unknown bench scale {scale_name!r}; "
                       f"known: {', '.join(SCALES)}")
    scale = SCALES[scale_name]
    benchmarks: Dict[str, object] = {}

    benchmarks["encounter_pipeline"] = _paired(
        "encounter_pipeline",
        bench_encounter_pipeline(scale, seed, reference=True),
        bench_encounter_pipeline(scale, seed, reference=False),
        "encounters_per_s",
        {"nodes": int(scale["nodes"]), "encounters": int(scale["encounters"]),
         "memd_every": int(scale["memd_every"]),
         "memd_batch": int(scale["memd_batch"])})

    benchmarks["buffer_churn"] = _paired(
        "buffer_churn",
        bench_buffer_churn(scale, seed, reference=True),
        bench_buffer_churn(scale, seed, reference=False),
        "ops_per_s",
        {"ops": int(scale["buffer_ops"])})

    benchmarks["collector_ingest"] = _paired(
        "collector_ingest",
        bench_collector_ingest(scale, seed, mode="lists"),
        bench_collector_ingest(scale, seed, mode="columnar"),
        "events_per_s",
        {"events": int(scale["collector_events"])})

    benchmarks["scenario_eer"] = _paired(
        "scenario_eer",
        bench_scenario(scale, seed, reference=True),
        bench_scenario(scale, seed, reference=False),
        "encounters_per_s",
        {"scenario": "bench", "protocol": "eer",
         "sim_time": float(scale["scenario_time"])})

    benchmarks["community_detection"] = _paired(
        "community_detection",
        bench_community_detection(scale, seed, reference=True),
        bench_community_detection(scale, seed, reference=False),
        "aggregations_per_s",
        {"nodes": int(scale["detect_nodes"]),
         "contacts": int(scale["detect_contacts"]),
         "rounds": int(scale["detect_rounds"])})

    world_reference = bench_world_tick(scale, seed, reference=True)
    world_current = bench_world_tick(scale, seed, reference=False)
    benchmarks["world_tick_10k"] = _paired(
        "world_tick_10k",
        world_reference,
        world_current,
        "detect_ticks_per_s",
        {"scenario": "rwp-10k", "nodes": int(scale["world_nodes"]),
         "ticks": int(scale["world_ticks"])})

    # the transfers phase isolated: the rwp-10k-traffic workload (Poisson
    # arrivals, 1 MiB payloads over a slow radio keep thousands of links
    # draining at once) with only the columnar TransferEngine toggled;
    # gated on payload bytes completed per wall-second of transfers phase.
    # The CRC checksums chain every relayed/delivered/aborted record, so
    # the pair also pins completion order and byte accounting
    benchmarks["transfer_churn"] = _paired(
        "transfer_churn",
        bench_transfer_churn(scale, seed, reference=True),
        bench_transfer_churn(scale, seed, reference=False),
        "transfer_bytes_per_s",
        {"scenario": "rwp-10k-traffic", "nodes": int(scale["traffic_nodes"]),
         "ticks": int(scale["traffic_ticks"]),
         "traffic_rate": float(scale["traffic_rate"]),
         "baseline": "transfer_engine=False (per-connection advance loop)"})

    # the routers phase isolated: the same 10k scenario with only the SoA
    # sweep disabled (per-router skip-scan baseline; sharded detection,
    # batched movement and the flat tick stay on) against the full current
    # configuration, gated on routers-phase throughput.  Reuses
    # world_current as the current half, so the pair shares one
    # measurement of the vectorized run.
    benchmarks["router_sweep"] = _paired(
        "router_sweep",
        bench_world_tick(scale, seed, reference=False,
                         extra_overrides={"router_soa": False}),
        world_current,
        "router_ticks_per_s",
        {"scenario": "rwp-10k", "nodes": int(scale["world_nodes"]),
         "ticks": int(scale["world_ticks"]),
         "baseline": "router_soa=False (per-router skip-scan)"})

    # the same two runs gate a second claim: whole-tick throughput of the
    # flattened pipeline (skip-list + batched links + O(active) transfers)
    # against the pre-tentpole serial world, at 10k nodes where repeats are
    # cheap; the completed 100k run rides along with its own parity bit
    entry = _paired(
        "world_tick_100k",
        world_reference,
        world_current,
        "ticks_per_s",
        {"scenario": "rwp-10k", "nodes": int(scale["world_nodes"]),
         "ticks": int(scale["world_ticks"]),
         "scale_scenario": "rwp-100k",
         "scale_nodes": int(scale["world100k_nodes"])})
    entry["scale_100k"] = bench_world_tick_100k_run(scale, seed)
    benchmarks["world_tick_100k"] = entry

    return {
        "schema": 1,
        "tool": "python -m repro bench",
        "repro_version": __version__,
        "scale": scale_name,
        "seed": seed,
        "python": platform.python_version(),
        "numpy": np.__version__,
        # provenance, aligned with the results store's per-row fields: when
        # and on what platform this trajectory point was measured
        "created_utc": datetime.datetime.now(datetime.timezone.utc)
                       .isoformat(timespec="seconds"),
        "platform": platform.platform(),
        "peak_rss_mb": peak_rss_mb(),
        "benchmarks": benchmarks,
    }


def compare_to_baseline(payload: Dict[str, object], baseline: Dict[str, object],
                        max_regression: float = 0.25) -> List[str]:
    """Regressions of *payload* against a committed baseline payload.

    Every benchmark is *paired* — reference and vectorized run back to back
    on the same machine — so the hardware-neutral trajectory metric is the
    **speedup ratio**, not the absolute throughput (a CI runner is not the
    laptop that wrote the committed baseline).  A benchmark regresses when
    its current speedup fell more than ``max_regression`` (fraction) below
    the committed one: that means the vectorized path lost ground against
    the very same reference code on the very same machine.  Returns
    human-readable failure strings (empty = gate passes); a scale mismatch
    is reported as a failure since workloads would not be comparable.
    """
    failures: List[str] = []
    if payload.get("scale") != baseline.get("scale"):
        failures.append(
            f"scale mismatch: current {payload.get('scale')!r} vs "
            f"baseline {baseline.get('scale')!r}")
        return failures
    current_benchmarks = payload.get("benchmarks", {})
    for name, base_entry in baseline.get("benchmarks", {}).items():
        entry = current_benchmarks.get(name)  # type: ignore[union-attr]
        if entry is None:
            failures.append(f"{name}: benchmark missing from current run")
            continue
        base_speedup = base_entry.get("speedup")
        cur_speedup = entry.get("speedup")
        if base_speedup is None or cur_speedup is None:
            continue
        floor = (1.0 - max_regression) * float(base_speedup)
        if float(cur_speedup) < floor:
            failures.append(
                f"{name}: speedup {float(cur_speedup):.2f}x fell below "
                f"{floor:.2f}x ({(1.0 - max_regression) * 100:.0f}% of the "
                f"committed {float(base_speedup):.2f}x)")
    return failures


def format_summary(payload: Dict[str, object]) -> str:
    """Human-readable table of one bench payload."""
    lines = [f"repro bench — scale {payload['scale']}, seed {payload['seed']}, "
             f"python {payload['python']}, numpy {payload['numpy']}"]
    header = (f"{'benchmark':<22}{'baseline':>14}{'current':>14}"
              f"{'speedup':>9}  {'checksums':<9}")
    lines.append(header)
    lines.append("-" * len(header))
    for name, entry in payload["benchmarks"].items():  # type: ignore[union-attr]
        key = entry["throughput_key"]
        base = entry["baseline"][key]
        cur = entry["current"][key]
        match = "match" if entry["checksums_match"] else "MISMATCH"
        speedup = entry["speedup"]
        lines.append(f"{name:<22}{base:>14,.0f}{cur:>14,.0f}"
                     f"{speedup:>8.2f}x  {match:<9} ({key})")
    rss = payload.get("peak_rss_mb")
    if rss is not None:
        lines.append(f"peak RSS: {rss:.1f} MiB")
    return "\n".join(lines)


def write_payload(payload: Dict[str, object], path: str) -> None:
    """Write the payload as pretty JSON (the ``BENCH_*.json`` artifact)."""
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_payload(path: str) -> Dict[str, object]:
    """Read a previously written ``BENCH_*.json``."""
    with open(path) as handle:
        return json.load(handle)
