"""Running scenarios and averaging over seeds.

Seed replicates (and, for the figure drivers, whole grids of scenario
points) fan out through an :class:`~repro.experiments.backend.ExecutionBackend`.
Results are merged in seed order regardless of completion order, so a run
with :class:`~repro.experiments.backend.ProcessPoolBackend` produces results
identical to the serial backend.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.backend import BackendLike, resolve_backend
from repro.experiments.builder import build_scenario
from repro.experiments.scenario import ScenarioConfig
from repro.metrics.collector import StatsCollector
from repro.metrics.reports import SimulationReport, build_report


def finalize_report(stats: StatsCollector,
                    config: ScenarioConfig) -> SimulationReport:
    """Summarise a finished (or resumed-and-finished) run's collector.

    This is the one report-construction path shared by straight-through
    runs, checkpointed runs and resumed runs — the resume-equality contract
    (docs/checkpointing.md) compares its canonical output byte for byte.
    """
    extra = {
        "alpha": float(config.router_params.get("alpha", float("nan")))
        if "alpha" in config.router_params else float("nan"),
        "copies": float(config.message_copies),
        "ttl": float(config.message_ttl),
        "buffer": float(config.buffer_capacity),
    }
    return build_report(stats, protocol=config.protocol,
                        num_nodes=config.num_nodes, sim_time=config.sim_time,
                        seed=config.seed, extra=extra)


def run_scenario(config: ScenarioConfig) -> SimulationReport:
    """Build, run and summarise one scenario."""
    built = build_scenario(config)
    try:
        built.run()
    finally:
        # release world-held resources (the sharded detector's worker pool)
        # eagerly — even on a failed run — instead of waiting for a GC pass
        # to break the world cycle
        built.world.stop()
    return finalize_report(built.stats, config)


def _drive_with_checkpoints(world, config: ScenarioConfig, every: float,
                            directory: str, written: List[str]) -> None:
    """Run *world* to the horizon, snapshotting at every ``every`` boundary.

    The run is split into ``run(until=boundary)`` segments; a split run is
    event-identical to one uninterrupted ``run`` (events exactly at a
    boundary fire before the segment returns, later ones after), so the
    snapshots observe exactly the state a straight-through run would have
    had at those times.  A snapshot is also written at the horizon, so a
    finished run always leaves a warm world to fork sweeps from.
    """
    simulator = world.simulator
    end = float(config.sim_time)
    if every <= 0:
        raise ValueError("checkpoint interval must be positive")
    while simulator.now < end:
        boundary = (math.floor(simulator.now / every) + 1) * every
        simulator.run(until=min(end, boundary))
        path = os.path.join(
            directory,
            f"{config.name}-seed{config.seed}-t{simulator.now:g}.ckpt")
        world.save_checkpoint(path, config=config)
        written.append(path)


def run_scenario_checkpointed(
        config: ScenarioConfig, every: float,
        directory: str = ".") -> Tuple[SimulationReport, List[str]]:
    """Run one scenario, writing a snapshot every ``every`` sim-seconds.

    Returns the (unchanged — see :func:`finalize_report`) report plus the
    snapshot paths written, in chronological order.
    """
    built = build_scenario(config)
    written: List[str] = []
    try:
        _drive_with_checkpoints(built.world, config, every, directory, written)
    finally:
        built.world.stop()
    return finalize_report(built.stats, config), written


def resume_scenario(
        path: str, *, sim_time: Optional[float] = None,
        checkpoint_every: Optional[float] = None,
        checkpoint_dir: str = ".",
) -> Tuple[SimulationReport, ScenarioConfig, List[str]]:
    """Resume a snapshot to its (or an extended/shortened) horizon.

    Parameters
    ----------
    path:
        A snapshot written by :func:`run_scenario_checkpointed` /
        ``World.save_checkpoint`` *with an embedded config*.
    sim_time:
        Optional replacement horizon (must not precede the snapshot time).
        This is the only safe post-hoc override: everything else — protocol,
        traffic, topology — is baked into the serialized world.
    checkpoint_every / checkpoint_dir:
        Keep snapshotting the resumed run at this cadence.

    Returns ``(report, config, written_paths)`` where *config* is the
    embedded scenario (horizon-adjusted when *sim_time* is given).
    """
    from repro.checkpoint import CheckpointError, load_checkpoint

    restored = load_checkpoint(path)
    world = restored.world
    config = restored.config
    if config is None:
        raise CheckpointError(
            f"snapshot {path!r} has no embedded scenario config; save it "
            "with config= (the CLI does) to make it resumable")
    if sim_time is not None:
        if float(sim_time) < restored.sim_now:
            raise ValueError(
                f"sim_time={sim_time:g} precedes the snapshot time "
                f"t={restored.sim_now:g}; a snapshot only runs forward")
        config = config.with_overrides(sim_time=float(sim_time))
        world.simulator.end_time = float(sim_time)
    written: List[str] = []
    try:
        if checkpoint_every:
            _drive_with_checkpoints(world, config, checkpoint_every,
                                    checkpoint_dir, written)
        else:
            world.simulator.run(until=config.sim_time)
    finally:
        world.stop()
    return finalize_report(world.stats, config), config, written


@dataclass
class AveragedResult:
    """Mean metrics over several seeds of the same scenario."""

    protocol: str
    num_nodes: int
    seeds: List[int]
    reports: List[SimulationReport] = field(default_factory=list)

    def mean(self, metric: str) -> float:
        """Mean of *metric* over the seed runs."""
        values = [report.metric(metric) for report in self.reports]
        finite = [v for v in values if np.isfinite(v)]
        if not finite:
            return float("nan")
        return float(np.mean(finite))

    def std(self, metric: str) -> float:
        """Sample standard deviation of *metric* over the seed runs."""
        values = [report.metric(metric) for report in self.reports]
        finite = [v for v in values if np.isfinite(v)]
        if len(finite) < 2:
            return 0.0
        return float(np.std(finite, ddof=1))

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly summary (means of the headline metrics)."""
        return {
            "protocol": self.protocol,
            "num_nodes": self.num_nodes,
            "seeds": list(self.seeds),
            "delivery_ratio": self.mean("delivery_ratio"),
            "latency": self.mean("average_latency"),
            "goodput": self.mean("goodput"),
            "overhead_ratio": self.mean("overhead_ratio"),
            "control_rows_exchanged": self.mean("control_rows_exchanged"),
            "community_detections": self.mean("community_detections"),
            "community_detection_seconds": self.mean("community_detection_seconds"),
        }


def run_averaged(config: ScenarioConfig, seeds: Sequence[int],
                 backend: BackendLike = None) -> AveragedResult:
    """Run *config* once per seed and collect the reports.

    The paper averages every plotted point over 10 simulation runs; the
    benchmark harness defaults to fewer seeds (see the benchmark modules).
    Seed runs are independent, so they fan out across *backend*; the report
    list is merged in seed order regardless of completion order.
    """
    return run_many_averaged([config], seeds, backend=backend)[0]


def run_many_averaged(configs: Sequence[ScenarioConfig], seeds: Sequence[int],
                      backend: BackendLike = None) -> List[AveragedResult]:
    """Run every config × seed combination and average per config.

    This is the fan-out point for the figure drivers and sweeps: the full
    ``len(configs) * len(seeds)`` grid of runs is handed to *backend* in one
    order-preserving :meth:`~repro.experiments.backend.ExecutionBackend.map`
    call, then regrouped into one :class:`AveragedResult` per config, in
    config order with reports in seed order — deterministic by construction.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    seed_list = [int(seed) for seed in seeds]
    executor = resolve_backend(backend)
    run_configs = [config.with_overrides(seed=seed)
                   for config in configs for seed in seed_list]
    try:
        reports = executor.map(run_scenario, run_configs)
    finally:
        if executor is not backend:
            # we resolved a name/None into a fresh backend: release its
            # workers here instead of leaking them to the garbage collector
            executor.close()
    results: List[AveragedResult] = []
    for index, config in enumerate(configs):
        chunk = reports[index * len(seed_list):(index + 1) * len(seed_list)]
        results.append(AveragedResult(
            protocol=config.protocol, num_nodes=config.num_nodes,
            seeds=list(seed_list), reports=list(chunk)))
    return results
