"""Running scenarios and averaging over seeds.

Seed replicates (and, for the figure drivers, whole grids of scenario
points) fan out through an :class:`~repro.experiments.backend.ExecutionBackend`.
Results are merged in seed order regardless of completion order, so a run
with :class:`~repro.experiments.backend.ProcessPoolBackend` produces results
identical to the serial backend.
"""

from __future__ import annotations

import math
import os
import time
import warnings
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.backend import BackendLike, resolve_backend
from repro.experiments.builder import build_scenario
from repro.experiments.results import AveragedResult as _AveragedResult
from repro.experiments.scenario import ScenarioConfig
from repro.metrics.collector import StatsCollector
from repro.metrics.reports import SimulationReport, build_report

#: progress callback: receives one dict per resolved cell (see
#: run_many_averaged's ``progress`` parameter)
ProgressCallback = Callable[[Dict[str, object]], None]


def __getattr__(name: str):
    if name == "AveragedResult":
        warnings.warn(
            "importing AveragedResult from repro.experiments.runner is "
            "deprecated; import it from repro.experiments (or repro.api)",
            DeprecationWarning, stacklevel=2)
        return _AveragedResult
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def finalize_report(stats: StatsCollector,
                    config: ScenarioConfig) -> SimulationReport:
    """Summarise a finished (or resumed-and-finished) run's collector.

    This is the one report-construction path shared by straight-through
    runs, checkpointed runs and resumed runs — the resume-equality contract
    (docs/checkpointing.md) compares its canonical output byte for byte.
    """
    extra = {
        "alpha": float(config.router_params.get("alpha", float("nan")))
        if "alpha" in config.router_params else float("nan"),
        "copies": float(config.message_copies),
        "ttl": float(config.message_ttl),
        "buffer": float(config.buffer_capacity),
    }
    return build_report(stats, protocol=config.protocol,
                        num_nodes=config.num_nodes, sim_time=config.sim_time,
                        seed=config.seed, extra=extra)


def run_scenario(config: ScenarioConfig) -> SimulationReport:
    """Build, run and summarise one scenario."""
    built = build_scenario(config)
    try:
        built.run()
    finally:
        # release world-held resources (the sharded detector's worker pool)
        # eagerly — even on a failed run — instead of waiting for a GC pass
        # to break the world cycle
        built.world.stop()
    return finalize_report(built.stats, config)


def _drive_with_checkpoints(world, config: ScenarioConfig, every: float,
                            directory: str, written: List[str]) -> None:
    """Run *world* to the horizon, snapshotting at every ``every`` boundary.

    The run is split into ``run(until=boundary)`` segments; a split run is
    event-identical to one uninterrupted ``run`` (events exactly at a
    boundary fire before the segment returns, later ones after), so the
    snapshots observe exactly the state a straight-through run would have
    had at those times.  A snapshot is also written at the horizon, so a
    finished run always leaves a warm world to fork sweeps from.
    """
    simulator = world.simulator
    end = float(config.sim_time)
    if every <= 0:
        raise ValueError("checkpoint interval must be positive")
    while simulator.now < end:
        boundary = (math.floor(simulator.now / every) + 1) * every
        simulator.run(until=min(end, boundary))
        path = os.path.join(
            directory,
            f"{config.name}-seed{config.seed}-t{simulator.now:g}.ckpt")
        world.save_checkpoint(path, config=config)
        written.append(path)


def run_scenario_checkpointed(
        config: ScenarioConfig, every: float,
        directory: str = ".") -> Tuple[SimulationReport, List[str]]:
    """Run one scenario, writing a snapshot every ``every`` sim-seconds.

    Returns the (unchanged — see :func:`finalize_report`) report plus the
    snapshot paths written, in chronological order.
    """
    built = build_scenario(config)
    written: List[str] = []
    try:
        _drive_with_checkpoints(built.world, config, every, directory, written)
    finally:
        built.world.stop()
    return finalize_report(built.stats, config), written


def resume_scenario(
        path: str, *, sim_time: Optional[float] = None,
        checkpoint_every: Optional[float] = None,
        checkpoint_dir: str = ".",
) -> Tuple[SimulationReport, ScenarioConfig, List[str]]:
    """Resume a snapshot to its (or an extended/shortened) horizon.

    Parameters
    ----------
    path:
        A snapshot written by :func:`run_scenario_checkpointed` /
        ``World.save_checkpoint`` *with an embedded config*.
    sim_time:
        Optional replacement horizon (must not precede the snapshot time).
        This is the only safe post-hoc override: everything else — protocol,
        traffic, topology — is baked into the serialized world.
    checkpoint_every / checkpoint_dir:
        Keep snapshotting the resumed run at this cadence.

    Returns ``(report, config, written_paths)`` where *config* is the
    embedded scenario (horizon-adjusted when *sim_time* is given).
    """
    from repro.checkpoint import CheckpointError, load_checkpoint

    restored = load_checkpoint(path)
    world = restored.world
    config = restored.config
    if config is None:
        raise CheckpointError(
            f"snapshot {path!r} has no embedded scenario config; save it "
            "with config= (the CLI does) to make it resumable")
    if sim_time is not None:
        if float(sim_time) < restored.sim_now:
            raise ValueError(
                f"sim_time={sim_time:g} precedes the snapshot time "
                f"t={restored.sim_now:g}; a snapshot only runs forward")
        config = config.with_overrides(sim_time=float(sim_time))
        world.simulator.end_time = float(sim_time)
    written: List[str] = []
    try:
        if checkpoint_every:
            _drive_with_checkpoints(world, config, checkpoint_every,
                                    checkpoint_dir, written)
        else:
            world.simulator.run(until=config.sim_time)
    finally:
        world.stop()
    return finalize_report(world.stats, config), config, written


def _timed_run(config: ScenarioConfig) -> Tuple[SimulationReport, float]:
    """Picklable top-level wrapper: one run plus its wall-clock seconds.

    The elapsed time is store provenance only — the report is untouched, so
    stored and fresh results stay byte-identical.
    """
    start = time.perf_counter()
    report = run_scenario(config)
    return report, time.perf_counter() - start


def _progress_event(status: str, index: int, total: int,
                    config: ScenarioConfig) -> Dict[str, object]:
    return {
        "event": "cell",
        "status": status,
        "index": index,
        "total": total,
        "scenario": config.name,
        "protocol": config.protocol,
        "seed": config.seed,
        "config_hash": config.config_hash(),
    }


def _run_with_store(run_configs: Sequence[ScenarioConfig], executor, store,
                    progress: Optional[ProgressCallback]
                    ) -> List[SimulationReport]:
    """Resolve every run config through *store*, computing only the misses.

    Cached cells load without simulating; missing cells fan out over
    *executor* and are persisted **as each one completes** (the incremental
    :meth:`~repro.experiments.backend.ExecutionBackend.imap` seam), so an
    interrupted sweep resumes from exactly the cells it finished.
    """
    total = len(run_configs)
    reports: List[Optional[SimulationReport]] = store.get_many(run_configs)
    missing = [i for i, report in enumerate(reports) if report is None]
    if progress is not None:
        for index, report in enumerate(reports):
            if report is not None:
                progress(_progress_event("cached", index, total,
                                         run_configs[index]))
    outcomes = executor.imap(_timed_run, [run_configs[i] for i in missing])
    for index, (report, elapsed) in zip(missing, outcomes):
        store.put(run_configs[index], report, wall_seconds=elapsed)
        reports[index] = report
        if progress is not None:
            progress(_progress_event("computed", index, total,
                                     run_configs[index]))
    return reports  # type: ignore[return-value]


def run_averaged(config: ScenarioConfig, seeds: Sequence[int],
                 backend: BackendLike = None, *, store=None,
                 progress: Optional[ProgressCallback] = None
                 ) -> _AveragedResult:
    """Run *config* once per seed and collect the reports.

    The paper averages every plotted point over 10 simulation runs; the
    benchmark harness defaults to fewer seeds (see the benchmark modules).
    Seed runs are independent, so they fan out across *backend*; the report
    list is merged in seed order regardless of completion order.  With a
    *store*, already-recorded seeds are served from it instead of rerunning
    (see :func:`run_many_averaged`).
    """
    return run_many_averaged([config], seeds, backend=backend, store=store,
                             progress=progress)[0]


def run_many_averaged(configs: Sequence[ScenarioConfig], seeds: Sequence[int],
                      backend: BackendLike = None, *, store=None,
                      progress: Optional[ProgressCallback] = None
                      ) -> List[_AveragedResult]:
    """Run every config × seed combination and average per config.

    This is the fan-out point for the figure drivers and sweeps: the full
    ``len(configs) * len(seeds)`` grid of runs is handed to *backend* in one
    order-preserving :meth:`~repro.experiments.backend.ExecutionBackend.map`
    call, then regrouped into one :class:`AveragedResult` per config, in
    config order with reports in seed order — deterministic by construction.

    Parameters
    ----------
    configs, seeds, backend:
        As before (the grid is ``configs × seeds``).
    store:
        Optional :class:`repro.store.ResultsStore`.  Every cell already in
        the store is loaded instead of simulated (exact dedupe on the
        canonical identity key); every freshly computed cell is appended the
        moment it finishes, so an interrupted grid resumes for free.  Stored
        and fresh reports are byte-identical in their canonical form, so the
        merged results do not depend on which cells were cached.
    progress:
        Optional callable receiving one dict per resolved cell
        (``status`` ``"cached"``/``"computed"``, grid ``index``/``total``
        and the cell identity); the CLI streams these as progress lines.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    seed_list = [int(seed) for seed in seeds]
    executor = resolve_backend(backend)
    run_configs = [config.with_overrides(seed=seed)
                   for config in configs for seed in seed_list]
    try:
        if store is None:
            reports = executor.map(run_scenario, run_configs)
        else:
            reports = _run_with_store(run_configs, executor, store, progress)
    finally:
        if executor is not backend:
            # we resolved a name/None into a fresh backend: release its
            # workers here instead of leaking them to the garbage collector
            executor.close()
    results: List[_AveragedResult] = []
    for index, config in enumerate(configs):
        chunk = reports[index * len(seed_list):(index + 1) * len(seed_list)]
        results.append(_AveragedResult(
            protocol=config.protocol, num_nodes=config.num_nodes,
            seeds=list(seed_list), reports=list(chunk), config=config))
    return results
