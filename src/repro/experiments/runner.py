"""Running scenarios and averaging over seeds.

Seed replicates (and, for the figure drivers, whole grids of scenario
points) fan out through an :class:`~repro.experiments.backend.ExecutionBackend`.
Results are merged in seed order regardless of completion order, so a run
with :class:`~repro.experiments.backend.ProcessPoolBackend` produces results
identical to the serial backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.experiments.backend import BackendLike, resolve_backend
from repro.experiments.builder import build_scenario
from repro.experiments.scenario import ScenarioConfig
from repro.metrics.reports import SimulationReport, build_report


def run_scenario(config: ScenarioConfig) -> SimulationReport:
    """Build, run and summarise one scenario."""
    built = build_scenario(config)
    try:
        built.run()
    finally:
        # release world-held resources (the sharded detector's worker pool)
        # eagerly — even on a failed run — instead of waiting for a GC pass
        # to break the world cycle
        built.world.stop()
    extra = {
        "alpha": float(config.router_params.get("alpha", float("nan")))
        if "alpha" in config.router_params else float("nan"),
        "copies": float(config.message_copies),
        "ttl": float(config.message_ttl),
        "buffer": float(config.buffer_capacity),
    }
    return build_report(built.stats, protocol=config.protocol,
                        num_nodes=config.num_nodes, sim_time=config.sim_time,
                        seed=config.seed, extra=extra)


@dataclass
class AveragedResult:
    """Mean metrics over several seeds of the same scenario."""

    protocol: str
    num_nodes: int
    seeds: List[int]
    reports: List[SimulationReport] = field(default_factory=list)

    def mean(self, metric: str) -> float:
        """Mean of *metric* over the seed runs."""
        values = [report.metric(metric) for report in self.reports]
        finite = [v for v in values if np.isfinite(v)]
        if not finite:
            return float("nan")
        return float(np.mean(finite))

    def std(self, metric: str) -> float:
        """Sample standard deviation of *metric* over the seed runs."""
        values = [report.metric(metric) for report in self.reports]
        finite = [v for v in values if np.isfinite(v)]
        if len(finite) < 2:
            return 0.0
        return float(np.std(finite, ddof=1))

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly summary (means of the headline metrics)."""
        return {
            "protocol": self.protocol,
            "num_nodes": self.num_nodes,
            "seeds": list(self.seeds),
            "delivery_ratio": self.mean("delivery_ratio"),
            "latency": self.mean("average_latency"),
            "goodput": self.mean("goodput"),
            "overhead_ratio": self.mean("overhead_ratio"),
            "control_rows_exchanged": self.mean("control_rows_exchanged"),
            "community_detections": self.mean("community_detections"),
            "community_detection_seconds": self.mean("community_detection_seconds"),
        }


def run_averaged(config: ScenarioConfig, seeds: Sequence[int],
                 backend: BackendLike = None) -> AveragedResult:
    """Run *config* once per seed and collect the reports.

    The paper averages every plotted point over 10 simulation runs; the
    benchmark harness defaults to fewer seeds (see the benchmark modules).
    Seed runs are independent, so they fan out across *backend*; the report
    list is merged in seed order regardless of completion order.
    """
    return run_many_averaged([config], seeds, backend=backend)[0]


def run_many_averaged(configs: Sequence[ScenarioConfig], seeds: Sequence[int],
                      backend: BackendLike = None) -> List[AveragedResult]:
    """Run every config × seed combination and average per config.

    This is the fan-out point for the figure drivers and sweeps: the full
    ``len(configs) * len(seeds)`` grid of runs is handed to *backend* in one
    order-preserving :meth:`~repro.experiments.backend.ExecutionBackend.map`
    call, then regrouped into one :class:`AveragedResult` per config, in
    config order with reports in seed order — deterministic by construction.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    seed_list = [int(seed) for seed in seeds]
    executor = resolve_backend(backend)
    run_configs = [config.with_overrides(seed=seed)
                   for config in configs for seed in seed_list]
    try:
        reports = executor.map(run_scenario, run_configs)
    finally:
        if executor is not backend:
            # we resolved a name/None into a fresh backend: release its
            # workers here instead of leaking them to the garbage collector
            executor.close()
    results: List[AveragedResult] = []
    for index, config in enumerate(configs):
        chunk = reports[index * len(seed_list):(index + 1) * len(seed_list)]
        results.append(AveragedResult(
            protocol=config.protocol, num_nodes=config.num_nodes,
            seeds=list(seed_list), reports=list(chunk)))
    return results
