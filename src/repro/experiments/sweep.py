"""Parameter sweeps.

A sweep runs a base scenario once per point of a parameter grid (optionally
crossed with several seeds) and returns the per-point averaged results.  This
is the workhorse behind every figure driver in
:mod:`repro.experiments.figures`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from repro.experiments.backend import BackendLike
from repro.experiments.runner import AveragedResult, run_many_averaged
from repro.experiments.scenario import ScenarioConfig, apply_overrides


@dataclass
class SweepPoint:
    """One grid point of a sweep with its averaged result."""

    overrides: Dict[str, object]
    result: AveragedResult

    def value(self, metric: str) -> float:
        """Mean metric value at this point."""
        return self.result.mean(metric)


def sweep(base: ScenarioConfig, grid: Mapping[str, Sequence[object]],
          seeds: Sequence[int] = (1,),
          backend: BackendLike = None) -> List[SweepPoint]:
    """Run *base* across the Cartesian product of *grid*.

    Parameters
    ----------
    base:
        Scenario every point starts from.
    grid:
        Mapping of field name -> sequence of values.  Keys prefixed with
        ``router.`` are routed into ``router_params`` (e.g. ``router.alpha``).
    seeds:
        Seeds to average over at every point.
    backend:
        Execution backend; every grid point × seed fans out in a single
        batch, so with a process pool the whole sweep parallelises.

    Returns
    -------
    list of SweepPoint
        In the grid's row-major order (identical for every backend).
    """
    if not grid:
        raise ValueError("sweep grid is empty")
    keys = list(grid)
    all_overrides: List[Dict[str, object]] = []
    configs: List[ScenarioConfig] = []
    for combination in itertools.product(*(grid[key] for key in keys)):
        overrides = dict(zip(keys, combination))
        all_overrides.append(overrides)
        configs.append(apply_overrides(base, overrides))
    results = run_many_averaged(configs, seeds, backend=backend)
    return [SweepPoint(overrides=overrides, result=result)
            for overrides, result in zip(all_overrides, results)]
