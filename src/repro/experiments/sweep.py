"""Parameter sweeps.

A sweep runs a base scenario once per point of a parameter grid (optionally
crossed with several seeds) and returns the per-point averaged results.  This
is the workhorse behind every figure driver in
:mod:`repro.experiments.figures`.

Given a :class:`repro.store.ResultsStore`, a sweep becomes a resumable job:
cells already in the store are served without simulating, and every freshly
computed cell is appended the moment it finishes — so an interrupted
thousand-cell grid reruns only its missing cells, and the merged results are
byte-identical to an uninterrupted run.
"""

from __future__ import annotations

import itertools
import warnings
from typing import Dict, List, Mapping, Optional, Sequence

from repro.experiments.backend import BackendLike
from repro.experiments.results import SweepPoint as _SweepPoint
from repro.experiments.runner import ProgressCallback, run_many_averaged
from repro.experiments.scenario import ScenarioConfig, apply_overrides


def __getattr__(name: str):
    if name == "SweepPoint":
        warnings.warn(
            "importing SweepPoint from repro.experiments.sweep is "
            "deprecated; import it from repro.experiments (or repro.api)",
            DeprecationWarning, stacklevel=2)
        return _SweepPoint
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def sweep_grid(base: ScenarioConfig, grid: Mapping[str, Sequence[object]]
               ) -> List[Dict[str, object]]:
    """The override mapping of every grid cell, in row-major order.

    This is the (deterministic) cell enumeration :func:`sweep` runs;
    exposing it lets callers (the serve mode, tests) reason about a grid —
    count cells, compute identity keys — without running anything.
    """
    if not grid:
        raise ValueError("sweep grid is empty")
    keys = list(grid)
    return [dict(zip(keys, combination))
            for combination in itertools.product(*(grid[key] for key in keys))]


def sweep(base: ScenarioConfig, grid: Mapping[str, Sequence[object]],
          seeds: Sequence[int] = (1,),
          backend: BackendLike = None, *, store=None,
          progress: Optional[ProgressCallback] = None) -> List[_SweepPoint]:
    """Run *base* across the Cartesian product of *grid*.

    Parameters
    ----------
    base:
        Scenario every point starts from.
    grid:
        Mapping of field name -> sequence of values.  Keys prefixed with
        ``router.`` are routed into ``router_params`` (e.g. ``router.alpha``).
    seeds:
        Seeds to average over at every point.
    backend:
        Execution backend; every grid point × seed fans out in a single
        batch, so with a process pool the whole sweep parallelises.
    store:
        Optional :class:`repro.store.ResultsStore`: cells found in it are
        not simulated, fresh cells are appended as they complete (see
        :func:`repro.experiments.runner.run_many_averaged`).
    progress:
        Optional per-cell progress callback (forwarded to the runner).

    Returns
    -------
    list of SweepPoint
        In the grid's row-major order (identical for every backend and for
        any cached/computed split).
    """
    all_overrides = sweep_grid(base, grid)
    configs = [apply_overrides(base, overrides)
               for overrides in all_overrides]
    results = run_many_averaged(configs, seeds, backend=backend, store=store,
                                progress=progress)
    return [_SweepPoint(overrides=overrides, result=result)
            for overrides, result in zip(all_overrides, results)]
