"""The experiment-layer result types and their shared contract.

:class:`AveragedResult` (what :func:`~repro.experiments.runner.run_averaged`
returns) and :class:`SweepPoint` (the cell type of
:func:`~repro.experiments.sweep.sweep`) share one convention, used by the
``repro.api`` facade and the results store alike:

* ``as_dict()`` — a JSON-friendly summary whose floats round-trip exactly,
* ``identity_keys()`` — the results-store identity
  ``(scenario_name, protocol, seed, config_hash)`` of every underlying run
  (empty when the originating :class:`ScenarioConfig` is unknown, e.g. for
  hand-assembled results).

Both types historically lived in :mod:`repro.experiments.runner` and
:mod:`repro.experiments.sweep`; those import paths still work but emit a
:class:`DeprecationWarning` — import from :mod:`repro.experiments` (or
:mod:`repro.api`) instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.experiments.scenario import ScenarioConfig
from repro.metrics.reports import SimulationReport

#: one results-store identity: (scenario_name, protocol, seed, config_hash)
IdentityKey = Tuple[str, str, int, str]


@dataclass
class AveragedResult:
    """Mean metrics over several seeds of the same scenario."""

    protocol: str
    num_nodes: int
    seeds: List[int]
    reports: List[SimulationReport] = field(default_factory=list)
    #: the scenario the reports came from (seed field irrelevant — each
    #: report pins its own); optional so hand-assembled results still work
    config: Optional[ScenarioConfig] = None

    def mean(self, metric: str) -> float:
        """Mean of *metric* over the seed runs."""
        values = [report.metric(metric) for report in self.reports]
        finite = [v for v in values if np.isfinite(v)]
        if not finite:
            return float("nan")
        return float(np.mean(finite))

    def std(self, metric: str) -> float:
        """Sample standard deviation of *metric* over the seed runs."""
        values = [report.metric(metric) for report in self.reports]
        finite = [v for v in values if np.isfinite(v)]
        if len(finite) < 2:
            return 0.0
        return float(np.std(finite, ddof=1))

    def identity_keys(self) -> List[IdentityKey]:
        """Results-store identity of every seed run (see the module docs)."""
        if self.config is None:
            return []
        return [self.config.with_overrides(seed=seed).identity_key()
                for seed in self.seeds]

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly summary (means of the headline metrics)."""
        return {
            "protocol": self.protocol,
            "num_nodes": self.num_nodes,
            "seeds": list(self.seeds),
            "delivery_ratio": self.mean("delivery_ratio"),
            "latency": self.mean("average_latency"),
            "goodput": self.mean("goodput"),
            "overhead_ratio": self.mean("overhead_ratio"),
            "control_rows_exchanged": self.mean("control_rows_exchanged"),
            "community_detections": self.mean("community_detections"),
            "community_detection_seconds": self.mean("community_detection_seconds"),
        }


@dataclass
class SweepPoint:
    """One grid point of a sweep with its averaged result."""

    overrides: Dict[str, object]
    result: AveragedResult

    def value(self, metric: str) -> float:
        """Mean metric value at this point."""
        return self.result.mean(metric)

    def identity_keys(self) -> List[IdentityKey]:
        """Results-store identity of every run behind this point."""
        return self.result.identity_keys()

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly summary: the overrides plus the averaged summary."""
        return {
            "overrides": dict(self.overrides),
            "summary": self.result.as_dict(),
        }
