"""Per-figure experiment drivers.

Each function regenerates the data behind one of the paper's evaluation
figures (or one of the ablations the paper mentions but omits), returning a
:class:`FigureResult` whose series can be rendered as text tables, asserted on
by the benchmarks or dumped to JSON.

The defaults are the reduced ``bench_scale`` settings so a figure regenerates
in minutes; pass ``base=ScenarioConfig.paper_scale(...)`` (and more seeds) for
a full-scale reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.backend import BackendLike
from repro.experiments.runner import run_many_averaged
from repro.experiments.scenario import ScenarioConfig

#: the protocols compared in Figure 2, in the paper's legend order
FIGURE2_PROTOCOLS: Tuple[str, ...] = (
    "eer", "cr", "ebr", "maxprop", "spray-and-wait", "spray-and-focus")

#: the three metrics every figure reports, keyed by sub-figure letter
FIGURE_METRICS: Dict[str, str] = {
    "a": "delivery_ratio",
    "b": "average_latency",
    "c": "goodput",
}


@dataclass
class FigureResult:
    """Data reproducing one figure: three metrics, one series per curve."""

    figure_id: str
    title: str
    x_label: str
    #: metric name -> series label -> list of (x, mean value)
    metrics: Dict[str, Dict[str, List[Tuple[float, float]]]] = field(default_factory=dict)
    #: free-form metadata (extra metrics such as control overhead)
    extra: Dict[str, Dict[str, List[Tuple[float, float]]]] = field(default_factory=dict)

    def add_point(self, metric: str, series: str, x: float, y: float,
                  extra: bool = False) -> None:
        """Append one ``(x, y)`` point to the *series* curve of *metric*.

        With ``extra=True`` the point goes to the free-form :attr:`extra`
        store instead of the headline metrics.
        """
        target = self.extra if extra else self.metrics
        target.setdefault(metric, {}).setdefault(series, []).append((float(x), float(y)))

    def series(self, metric: str, label: str) -> List[Tuple[float, float]]:
        """The ``(x, y)`` points of the *label* curve for *metric* (a copy;
        empty list when the curve does not exist)."""
        return list(self.metrics.get(metric, {}).get(label, []))

    def series_labels(self, metric: str) -> List[str]:
        """All curve labels available for *metric*, in insertion order."""
        return list(self.metrics.get(metric, {}))

    def values(self, metric: str, label: str) -> List[float]:
        """Just the y-values of the *label* curve for *metric*, in x order."""
        return [y for _, y in sorted(self.series(metric, label))]

    def mean_value(self, metric: str, label: str) -> float:
        """Mean of a curve's y-values (``nan`` for an empty curve; used by
        the benchmarks' shape assertions)."""
        values = self.values(metric, label)
        if not values:
            return float("nan")
        return sum(values) / len(values)

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly representation (what ``python -m repro figure``
        emits with ``--json``/``--output``)."""
        return {
            "figure_id": self.figure_id,
            "title": self.title,
            "x_label": self.x_label,
            "metrics": {m: {s: list(points) for s, points in series.items()}
                        for m, series in self.metrics.items()},
            "extra": {m: {s: list(points) for s, points in series.items()}
                      for m, series in self.extra.items()},
        }


def _base_config(base: Optional[ScenarioConfig]) -> ScenarioConfig:
    return base if base is not None else ScenarioConfig.bench_scale()


def _record_run(figure: FigureResult, series: str, x: float, result) -> None:
    figure.add_point("delivery_ratio", series, x, result.mean("delivery_ratio"))
    figure.add_point("average_latency", series, x, result.mean("average_latency"))
    figure.add_point("goodput", series, x, result.mean("goodput"))
    figure.add_point("overhead_ratio", series, x, result.mean("overhead_ratio"), extra=True)
    figure.add_point("control_rows_exchanged", series, x,
                     result.mean("control_rows_exchanged"), extra=True)


# --------------------------------------------------------------------------- Figure 2
def figure2_comparison(node_counts: Sequence[int] = (40, 80, 120),
                       protocols: Sequence[str] = FIGURE2_PROTOCOLS,
                       seeds: Sequence[int] = (1,),
                       base: Optional[ScenarioConfig] = None,
                       copies: int = 10,
                       backend: BackendLike = None, *, store=None,
                       progress=None) -> FigureResult:
    """Figure 2: protocol comparison vs. number of nodes.

    Delivery ratio (a), latency (b) and goodput (c) for EER, CR and the four
    baselines, with lambda = 10 replicas for the quota-based protocols.  The
    whole protocol × node-count × seed grid fans out over *backend* in one
    batch; the figure is assembled in grid order, so it is identical for
    every backend.

    Parameters
    ----------
    node_counts:
        Network sizes forming the x axis.
    protocols:
        Protocol names (one curve each), in legend order.
    seeds:
        Seeds averaged at every point (the paper uses 10 runs per point).
    base:
        Base scenario; defaults to ``ScenarioConfig.bench_scale()``.
    copies:
        The replica quota lambda applied to every protocol.
    backend:
        Execution backend instance, name (``"serial"``/``"process"``) or
        ``None`` for serial.

    Returns
    -------
    FigureResult
        Headline metrics plus overhead/control-plane extras per protocol.
    """
    config = _base_config(base)
    figure = FigureResult("fig2", "Protocol comparison (lambda=10)", "num_nodes")
    points = [(protocol, n) for protocol in protocols for n in node_counts]
    configs = [config.with_overrides(protocol=protocol, num_nodes=int(n),
                                     message_copies=copies)
               for protocol, n in points]
    results = run_many_averaged(configs, seeds, backend=backend,
                                store=store, progress=progress)
    for (protocol, n), result in zip(points, results):
        _record_run(figure, protocol, float(n), result)
    return figure


# --------------------------------------------------------------------- Figures 3 & 4
def _lambda_sweep(figure_id: str, protocol: str, node_counts: Sequence[int],
                  lambdas: Sequence[int], seeds: Sequence[int],
                  base: Optional[ScenarioConfig],
                  backend: BackendLike = None, store=None,
                  progress=None) -> FigureResult:
    config = _base_config(base)
    figure = FigureResult(figure_id,
                          f"Effect of lambda on {protocol.upper()}", "num_nodes")
    points = [(lam, n) for lam in lambdas for n in node_counts]
    configs = [config.with_overrides(protocol=protocol, num_nodes=int(n),
                                     message_copies=int(lam))
               for lam, n in points]
    results = run_many_averaged(configs, seeds, backend=backend,
                                store=store, progress=progress)
    for (lam, n), result in zip(points, results):
        _record_run(figure, f"lambda={lam}", float(n), result)
    return figure


def figure3_lambda_eer(node_counts: Sequence[int] = (40, 80, 120),
                       lambdas: Sequence[int] = (6, 8, 10, 12),
                       seeds: Sequence[int] = (1,),
                       base: Optional[ScenarioConfig] = None,
                       backend: BackendLike = None, *, store=None,
                       progress=None) -> FigureResult:
    """Figure 3: effect of the initial replica count lambda on EER.

    Parameters
    ----------
    node_counts:
        Network sizes forming the x axis.
    lambdas:
        Replica quotas, one ``lambda=L`` curve each.
    seeds, base, backend:
        As for :func:`figure2_comparison`.

    Returns
    -------
    FigureResult
    """
    return _lambda_sweep("fig3", "eer", node_counts, lambdas, seeds, base,
                         backend=backend, store=store, progress=progress)


def figure4_lambda_cr(node_counts: Sequence[int] = (40, 80, 120),
                      lambdas: Sequence[int] = (6, 8, 10, 12),
                      seeds: Sequence[int] = (1,),
                      base: Optional[ScenarioConfig] = None,
                      backend: BackendLike = None, *, store=None,
                      progress=None) -> FigureResult:
    """Figure 4: effect of the initial replica count lambda on CR.

    Parameters
    ----------
    node_counts:
        Network sizes forming the x axis.
    lambdas:
        Replica quotas, one ``lambda=L`` curve each.
    seeds, base, backend:
        As for :func:`figure2_comparison`.

    Returns
    -------
    FigureResult
    """
    return _lambda_sweep("fig4", "cr", node_counts, lambdas, seeds, base,
                         backend=backend, store=store, progress=progress)


# ------------------------------------------------------------------------- Ablations
def ablation_alpha(alphas: Sequence[float] = (0.1, 0.28, 0.5, 1.0),
                   protocol: str = "eer", num_nodes: int = 60,
                   seeds: Sequence[int] = (1,),
                   base: Optional[ScenarioConfig] = None,
                   backend: BackendLike = None, *, store=None,
                   progress=None) -> FigureResult:
    """Ablation A1: effect of the horizon scaling parameter alpha.

    The paper fixes alpha = 0.28 "indicated to be a reasonable value from the
    preliminary simulations" and omits the sweep; this regenerates it.

    Parameters
    ----------
    alphas:
        Horizon scaling values forming the x axis.
    protocol:
        Protocol under the sweep (``eer`` or ``cr`` make sense).
    num_nodes:
        Fixed network size.
    seeds, base, backend:
        As for :func:`figure2_comparison`.

    Returns
    -------
    FigureResult
    """
    config = _base_config(base)
    figure = FigureResult("ablation-alpha", f"Effect of alpha on {protocol.upper()}",
                          "alpha")
    configs = [config.with_overrides(
        protocol=protocol, num_nodes=num_nodes,
        router_params={**config.router_params, "alpha": float(alpha)})
        for alpha in alphas]
    results = run_many_averaged(configs, seeds, backend=backend,
                                store=store, progress=progress)
    for alpha, result in zip(alphas, results):
        _record_run(figure, protocol, float(alpha), result)
    return figure


def ablation_ttl(ttls: Sequence[float] = (300.0, 600.0, 1200.0, 2400.0),
                 protocol: str = "eer", num_nodes: int = 60,
                 seeds: Sequence[int] = (1,),
                 base: Optional[ScenarioConfig] = None,
                 backend: BackendLike = None, *, store=None,
                 progress=None) -> FigureResult:
    """Ablation A2: effect of the message TTL.

    Parameters
    ----------
    ttls:
        TTL values in seconds, forming the x axis.
    protocol, num_nodes, seeds, base, backend:
        As for :func:`ablation_alpha`.

    Returns
    -------
    FigureResult
    """
    config = _base_config(base)
    figure = FigureResult("ablation-ttl", f"Effect of TTL on {protocol.upper()}",
                          "ttl_seconds")
    configs = [config.with_overrides(protocol=protocol, num_nodes=num_nodes,
                                     message_ttl=float(ttl)) for ttl in ttls]
    results = run_many_averaged(configs, seeds, backend=backend,
                                store=store, progress=progress)
    for ttl, result in zip(ttls, results):
        _record_run(figure, protocol, float(ttl), result)
    return figure


def ablation_buffer(buffers: Sequence[float] = (256 * 1024, 512 * 1024,
                                                1024 * 1024, 2048 * 1024),
                    protocol: str = "eer", num_nodes: int = 60,
                    seeds: Sequence[int] = (1,),
                    base: Optional[ScenarioConfig] = None,
                    backend: BackendLike = None, *, store=None,
                    progress=None) -> FigureResult:
    """Ablation A3: effect of the per-node buffer capacity.

    Parameters
    ----------
    buffers:
        Buffer capacities in bytes, forming the x axis.
    protocol, num_nodes, seeds, base, backend:
        As for :func:`ablation_alpha`.

    Returns
    -------
    FigureResult
    """
    config = _base_config(base)
    figure = FigureResult("ablation-buffer", f"Effect of buffer size on {protocol.upper()}",
                          "buffer_bytes")
    configs = [config.with_overrides(protocol=protocol, num_nodes=num_nodes,
                                     buffer_capacity=float(capacity))
               for capacity in buffers]
    results = run_many_averaged(configs, seeds, backend=backend,
                                store=store, progress=progress)
    for capacity, result in zip(buffers, results):
        _record_run(figure, protocol, float(capacity), result)
    return figure


# ------------------------------------------------------------------ dispatch
#: every renderable figure/ablation, in presentation order (the CLI's
#: ``figure`` choices; ``figure_set`` renders them all)
FIGURE_NAMES: Tuple[str, ...] = (
    "fig2", "fig3", "fig4",
    "ablation-alpha", "ablation-ttl", "ablation-buffer")

_DRIVERS = {
    "fig2": figure2_comparison,
    "fig3": figure3_lambda_eer,
    "fig4": figure4_lambda_cr,
    "ablation-alpha": ablation_alpha,
    "ablation-ttl": ablation_ttl,
    "ablation-buffer": ablation_buffer,
}


def figure(name: str, *, seeds: Sequence[int] = (1,),
           base: Optional[ScenarioConfig] = None,
           backend: BackendLike = None, store=None, progress=None,
           **kwargs) -> FigureResult:
    """Render one figure/ablation by name (the ``repro.api`` entry point).

    Parameters
    ----------
    name:
        One of :data:`FIGURE_NAMES`.
    seeds, base, backend, store, progress:
        Shared driver parameters; with a *store* every already-recorded cell
        renders without simulating.
    kwargs:
        Driver-specific knobs (``node_counts``/``protocols`` for fig2,
        ``lambdas`` for fig3/fig4, ``alphas``/``ttls``/``buffers`` for the
        ablations), forwarded verbatim.
    """
    try:
        driver = _DRIVERS[name]
    except KeyError:
        raise KeyError(f"unknown figure {name!r}; known: "
                       f"{', '.join(FIGURE_NAMES)}") from None
    return driver(seeds=seeds, base=base, backend=backend, store=store,
                  progress=progress, **kwargs)


def figure_set(names: Sequence[str] = FIGURE_NAMES, *,
               seeds: Sequence[int] = (1,),
               base: Optional[ScenarioConfig] = None,
               backend: BackendLike = None, store=None,
               progress=None) -> Dict[str, FigureResult]:
    """Render every named figure (default: all of them), in order.

    With a populated results store this regenerates the whole paper figure
    set without running a single simulation — the "one cheap command"
    behind ``repro figure all --from-store`` and its CI artifact.
    """
    return {name: figure(name, seeds=seeds, base=base, backend=backend,
                         store=store, progress=progress) for name in names}
