"""The scenario registry.

Every runnable workload is a named, discoverable :class:`ScenarioEntry` here:
the paper's bus scenario at both scales, the other geometric mobility models,
synthetic trace-replay scenarios, and two file-backed demo traces (one per
supported on-disk format).  The CLI's ``list``/``run``/``sweep`` commands and
future workload PRs all go through this module — a scenario that is not in
the catalog is invisible to users who are not reading the source.

Registering a new scenario is one call::

    from repro.experiments.catalog import register_scenario
    from repro.experiments.scenario import ScenarioConfig

    register_scenario(
        "rush-hour",
        lambda: ScenarioConfig.bench_scale(num_nodes=120,
                                           message_interval=(5.0, 10.0)),
        summary="bus scenario under 4x traffic load",
    )

Factories return a fresh :class:`ScenarioConfig`; per-invocation overrides
(protocol, seeds, ``router.alpha``, …) are applied on top by
:func:`make_scenario`, so one entry covers every protocol and sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional

from repro.experiments.scenario import MobilityKind, ScenarioConfig, apply_overrides

#: directory holding the demo trace fixtures shipped with the package
TRACE_DATA_DIR = Path(__file__).resolve().parent.parent / "traces" / "data"


@dataclass(frozen=True)
class ScenarioEntry:
    """One named, runnable workload.

    Attributes
    ----------
    name:
        Registry key (what ``python -m repro run <name>`` takes).
    factory:
        Zero-argument callable returning a fresh base :class:`ScenarioConfig`.
    summary:
        One line for ``python -m repro list``.
    kind:
        ``"geometric"`` (mobility-model driven) or ``"trace"`` (replayed).
    provenance:
        Where the workload comes from (paper section, trace format, …).
    """

    name: str
    factory: Callable[[], ScenarioConfig]
    summary: str = ""
    kind: str = "geometric"
    provenance: str = ""

    def describe(self) -> Dict[str, object]:
        """JSON-friendly summary (builds one config to report its shape)."""
        config = self.factory()
        return {
            "name": self.name,
            "kind": self.kind,
            "summary": self.summary,
            "provenance": self.provenance,
            "mobility": config.mobility.value,
            "num_nodes": config.num_nodes,
            "sim_time": config.sim_time,
            "default_protocol": config.protocol,
        }


_SCENARIOS: Dict[str, ScenarioEntry] = {}


def register_scenario(name: str, factory: Callable[[], ScenarioConfig], *,
                      summary: str = "", kind: str = "geometric",
                      provenance: str = "",
                      overwrite: bool = False) -> ScenarioEntry:
    """Register *factory* under *name* and return the created entry.

    Parameters
    ----------
    name:
        Registry key; must be new unless *overwrite* is set.
    factory:
        Zero-argument callable producing the base :class:`ScenarioConfig`.
    summary, kind, provenance:
        Catalog metadata (see :class:`ScenarioEntry`).
    overwrite:
        Allow replacing an existing entry.

    Raises
    ------
    ValueError
        If *name* is taken and *overwrite* is false, or *factory* is not
        callable.
    """
    if not callable(factory):
        raise ValueError("scenario factory must be callable")
    if name in _SCENARIOS and not overwrite:
        raise ValueError(f"scenario {name!r} is already registered "
                         f"(pass overwrite=True to replace it)")
    entry = ScenarioEntry(name=name, factory=factory, summary=summary,
                          kind=kind, provenance=provenance)
    _SCENARIOS[name] = entry
    return entry


def available_scenarios() -> List[str]:
    """Sorted names of every registered scenario."""
    return sorted(_SCENARIOS)


def scenario_entries() -> List[ScenarioEntry]:
    """All registry entries, sorted by name."""
    return [_SCENARIOS[name] for name in available_scenarios()]


def get_scenario_entry(name: str) -> ScenarioEntry:
    """Look up one entry.

    Raises
    ------
    KeyError
        With the list of known names, if *name* is not registered.
    """
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: "
            f"{', '.join(available_scenarios())}") from None


def make_scenario(name: str,
                  overrides: Optional[Mapping[str, object]] = None,
                  **kw_overrides) -> ScenarioConfig:
    """Build the named scenario's config with overrides applied.

    Overrides may be passed as a mapping, as keyword arguments, or both
    (keywords win); ``router.``-prefixed keys go to ``router_params`` as in
    :func:`~repro.experiments.scenario.apply_overrides`.

    Examples
    --------
    >>> config = make_scenario("bench", protocol="cr", num_nodes=60)
    >>> config = make_scenario("trace-periodic", {"router.alpha": 0.5})
    """
    entry = get_scenario_entry(name)
    config = entry.factory()
    merged: Dict[str, object] = dict(overrides or {})
    merged.update(kw_overrides)
    if merged:
        config = apply_overrides(config, merged)
    return config


# --------------------------------------------------------------- built-ins
def _trace_base(**overrides) -> ScenarioConfig:
    """Shared radio/traffic settings for the synthetic trace scenarios.

    The geometry fields are irrelevant (nodes are stationary); radio and
    traffic follow ``bench_scale`` so trace and mobility runs are comparable.
    """
    base = dict(
        mobility=MobilityKind.TRACE,
        num_nodes=40,
        sim_time=3_000.0,
        update_interval=1.0,
        transmit_speed=2_000_000 / 8,
        buffer_capacity=1024 * 1024,
        message_interval=(20.0, 30.0),
        message_ttl=20 * 60.0,
        message_copies=10,
    )
    base.update(overrides)
    return ScenarioConfig(**base)


def _register_builtins() -> None:
    register_scenario(
        "paper",
        lambda: ScenarioConfig.paper_scale(),
        summary="the paper's bus scenario at full Section V-A settings "
                "(0.1 s updates, 10 m range, 10 000 s)",
        provenance="conf_icpp_ChenL11 Section V-A")
    register_scenario(
        "bench",
        lambda: ScenarioConfig.bench_scale(),
        summary="reduced-scale bus scenario (minutes, not hours; "
                "calibrated contact rate)",
        provenance="conf_icpp_ChenL11 Section V-A, reduced (DESIGN.md)")
    register_scenario(
        "community",
        lambda: ScenarioConfig.bench_scale().with_overrides(
            name="bench-community", mobility=MobilityKind.COMMUNITY),
        summary="community-home random waypoint over the bench map",
        provenance="community ablations (repro.mobility.community)")
    register_scenario(
        "random-waypoint",
        lambda: ScenarioConfig.bench_scale().with_overrides(
            name="bench-rwp", mobility=MobilityKind.RANDOM_WAYPOINT),
        summary="plain random waypoint over the bench rectangle",
        provenance="memoryless mobility baseline")
    register_scenario(
        "shortest-path",
        lambda: ScenarioConfig.bench_scale().with_overrides(
            name="bench-spm", mobility=MobilityKind.SHORTEST_PATH),
        summary="pedestrians on shortest road-map paths (bench map)",
        provenance="ONE simulator's ShortestPathMapBasedMovement lineage")
    register_scenario(
        "rwp-10k",
        lambda: ScenarioConfig.bench_scale(
            protocol="direct", num_nodes=10_000).with_overrides(
            name="rwp-10k", mobility=MobilityKind.RANDOM_WAYPOINT,
            sim_time=600.0,
            min_speed=0.5, max_speed=1.5, stop_wait=(0.0, 120.0),
            message_interval=(2.0, 4.0),
            detector="sharded",
            record_mode="columnar"),
        summary="10 000 pedestrians on the bench map: sharded strip "
                "connectivity + batch movement (the scale tentpole)",
        provenance="ROADMAP sharded-worlds item; repro.world.sharded")
    register_scenario(
        "rwp-10k-traffic",
        lambda: ScenarioConfig.bench_scale(
            protocol="epidemic", num_nodes=10_000).with_overrides(
            name="rwp-10k-traffic", mobility=MobilityKind.RANDOM_WAYPOINT,
            sim_time=600.0,
            # sparse-DTN geometry (~1 neighbour per node, thousands of live
            # links) but *saturated* links: Poisson arrivals at 2 msg/s of
            # 1 MiB payloads over a 62.5 kB/s radio keep each busy link
            # draining one head transfer for ~17 consecutive ticks — the
            # transfers phase is the dominant cost, which is the regime the
            # TransferEngine benchmark (transfer_churn) measures
            map_width=6_000.0, map_height=4_500.0, transmit_range=30.0,
            min_speed=0.5, max_speed=1.5, stop_wait=(0.0, 120.0),
            traffic_model="poisson", traffic_rate=2.0,
            message_size=1024 * 1024, message_ttl=900.0,
            transmit_speed=62_500.0,
            buffer_capacity=32 * 1024 * 1024,
            detector="sharded",
            record_mode="columnar"),
        summary="10 000 pedestrians under Poisson traffic load that "
                "saturates links (1 MiB messages, slow radio): the columnar "
                "transfers-phase benchmark workload",
        provenance="ISSUE 10 traffic workload; repro.net.engine")
    register_scenario(
        "rwp-100k",
        lambda: ScenarioConfig.bench_scale(
            protocol="direct", num_nodes=100_000).with_overrides(
            name="rwp-100k", mobility=MobilityKind.RANDOM_WAYPOINT,
            sim_time=600.0,
            # city-scale rectangle, pedestrian radio: ~1.2 neighbours per
            # node (the paper's sparse-DTN regime), ~60k live links — the
            # contact rate per node-hour stays comparable to rwp-10k while
            # the population grows 10x
            map_width=12_000.0, map_height=9_000.0, transmit_range=20.0,
            min_speed=0.5, max_speed=1.5, stop_wait=(0.0, 120.0),
            message_interval=(2.0, 4.0),
            detector="sharded",
            record_mode="columnar"),
        summary="100 000 pedestrians at city scale: idle-router skip-list + "
                "batched link events + sharded connectivity (optionally the "
                "shared-memory process pool via world_workers_mode)",
        provenance="ISSUE 6 scale tentpole; repro.world.sharded")
    register_scenario(
        "bench-grid",
        lambda: ScenarioConfig.bench_scale().with_overrides(
            name="bench-grid", mobility=MobilityKind.RANDOM_WAYPOINT,
            detector="grid"),
        summary="bench random waypoint on the grid detector (non-default "
                "detector coverage)",
        provenance="repro.world.connectivity.GridConnectivity")
    register_scenario(
        "hcmm",
        lambda: ScenarioConfig.bench_scale(protocol="cr").with_overrides(
            name="bench-hcmm", mobility=MobilityKind.HCMM,
            roaming_probability=0.15),
        summary="home-cell (caveman/HCMM) mobility; communities emerge from "
                "cell gravitation",
        provenance="repro.mobility.hcmm (Musolesi & Mascolo HCMM lineage)")
    register_scenario(
        "community-sparse",
        lambda: _trace_base(
            name="community-sparse", protocol="cr", num_communities=4,
            trace_generator="community",
            trace_params={"intra_period": 200.0, "inter_period": 2400.0}),
        kind="trace",
        summary="4 well-separated communities (rare inter-community "
                "contacts); CR's best case",
        provenance="repro.traces.generators.community_structured_trace")
    register_scenario(
        "community-dense",
        lambda: _trace_base(
            name="community-dense", protocol="cr", num_communities=8,
            trace_generator="community",
            trace_params={"intra_period": 250.0, "inter_period": 700.0}),
        kind="trace",
        summary="8 weakly-separated communities (frequent inter-community "
                "contacts); detection's hard case",
        provenance="repro.traces.generators.community_structured_trace")
    register_scenario(
        "community-drift",
        lambda: _trace_base(
            name="community-drift", protocol="cr", num_communities=4,
            sim_time=4_000.0,
            trace_generator="drifting",
            trace_params={"drift_interval": 1_000.0, "drift_fraction": 0.3}),
        kind="trace",
        summary="community membership drifts mid-run: the oracle assignment "
                "goes stale, online detection tracks it",
        provenance="repro.traces.generators.drifting_community_trace")
    register_scenario(
        "community-detect",
        lambda: _trace_base(
            name="community-detect", protocol="cr", num_nodes=30,
            num_communities=3, sim_time=2_000.0,
            trace_generator="community",
            trace_params={"intra_period": 150.0, "inter_period": 1500.0}),
        kind="trace",
        summary="detection-vs-oracle comparison bed: run with --protocol "
                "cr / cr-kclique / cr-newman (or sweep "
                "router.community_mode)",
        provenance="CR community modes (docs/communities.md)")
    register_scenario(
        "trace-periodic",
        lambda: _trace_base(name="trace-periodic",
                            trace_generator="periodic"),
        kind="trace",
        summary="synthetic trace: every pair meets near-periodically "
                "(contact expectation's best case)",
        provenance="repro.traces.generators.periodic_contact_trace")
    register_scenario(
        "trace-memoryless",
        lambda: _trace_base(name="trace-memoryless",
                            trace_generator="memoryless"),
        kind="trace",
        summary="synthetic trace: exponential inter-contact times "
                "(memoryless baseline)",
        provenance="repro.traces.generators.random_waypoint_like_trace")
    register_scenario(
        "trace-community",
        lambda: _trace_base(name="trace-community",
                            trace_generator="community"),
        kind="trace",
        summary="synthetic trace with planted community structure "
                "(ground truth for CR)",
        provenance="repro.traces.generators.community_structured_trace")
    register_scenario(
        "trace-csv",
        lambda: _trace_base(
            name="trace-csv",
            num_nodes=12,
            num_communities=3,  # the fixture's planted structure (node % 3)
            sim_time=2_000.0,
            message_interval=(30.0, 60.0),
            trace_path=str(TRACE_DATA_DIR / "demo_contacts.csv"),
            trace_format="csv"),
        kind="trace",
        summary="bundled 12-node CSV contact trace replayed from disk",
        provenance="repro/traces/data/demo_contacts.csv (generic CSV format)")
    register_scenario(
        "trace-one",
        lambda: _trace_base(
            name="trace-one",
            num_nodes=12,
            num_communities=3,  # the fixture's planted structure (node % 3)
            sim_time=2_000.0,
            message_interval=(30.0, 60.0),
            trace_path=str(TRACE_DATA_DIR / "demo_contacts_one.txt"),
            trace_format="one"),
        kind="trace",
        summary="the same bundled trace in the ONE simulator's report format",
        provenance="repro/traces/data/demo_contacts_one.txt (ONE report)")


_register_builtins()
