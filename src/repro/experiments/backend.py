"""Execution backends: where experiment runs actually execute.

Every figure or sweep in :mod:`repro.experiments` reduces to "run this list
of fully-specified :class:`~repro.experiments.scenario.ScenarioConfig`\\ s and
collect one report each".  An :class:`ExecutionBackend` decides *where* those
independent runs execute:

* :class:`SerialBackend` — in-process, one after another (the default and
  the reference semantics),
* :class:`ProcessPoolBackend` — fanned out over a
  :class:`concurrent.futures.ProcessPoolExecutor`.

The contract is deliberately tiny: :meth:`ExecutionBackend.map` must be
**order-preserving** and must apply a picklable top-level function to every
item.  Because each simulation is fully determined by its config (the seed
drives every random stream), the merged results are byte-identical across
backends — parallelism changes wall-clock time, never the science.

Backends can be passed as instances or by name (``"serial"``,
``"process"``); ``None`` resolves to the serial backend.
"""

from __future__ import annotations

import abc
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterator, List, Optional, Sequence, TypeVar, Union

T = TypeVar("T")
R = TypeVar("R")

BackendLike = Union[None, str, "ExecutionBackend"]


class ExecutionBackend(abc.ABC):
    """Executes independent experiment runs."""

    name = "abstract"

    @abc.abstractmethod
    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply *fn* to every item, returning results in input order."""

    def imap(self, fn: Callable[[T], R], items: Sequence[T]) -> Iterator[R]:
        """Like :meth:`map`, but yield results (still in input order) as
        they become available.

        The store-backed experiment drivers consume this so every finished
        cell is persisted the moment it completes — a crashed sweep keeps
        everything already computed.  The default delegates to :meth:`map`
        (all results at once); backends override it with a genuinely
        incremental implementation where they can.
        """
        return iter(self.map(fn, items))

    def close(self) -> None:
        """Release any held workers (idempotent)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


class SerialBackend(ExecutionBackend):
    """Run everything in-process, in order (the reference backend)."""

    name = "serial"

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        return [fn(item) for item in items]

    def imap(self, fn: Callable[[T], R], items: Sequence[T]) -> Iterator[R]:
        return (fn(item) for item in items)


class ProcessPoolBackend(ExecutionBackend):
    """Fan runs out across CPU cores with :mod:`concurrent.futures`.

    Parameters
    ----------
    max_workers:
        Worker process count; defaults to ``os.cpu_count()``.

    The executor is created lazily on first :meth:`map` and reused until
    :meth:`close` (the instance is also a context manager).  ``map`` blocks
    until all results are in and returns them in input order, so a caller
    sees exactly the :class:`SerialBackend` semantics, only faster.
    """

    name = "process"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be positive")
        self.max_workers = max_workers
        self._executor: Optional[ProcessPoolExecutor] = None

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._executor

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        items = list(items)
        if len(items) <= 1:
            # nothing to fan out; skip worker round-trips entirely
            return [fn(item) for item in items]
        executor = self._ensure_executor()
        chunksize = max(1, len(items) // (4 * (self.max_workers or os.cpu_count() or 1)))
        return list(executor.map(fn, items, chunksize=chunksize))

    def imap(self, fn: Callable[[T], R], items: Sequence[T]) -> Iterator[R]:
        items = list(items)
        if len(items) <= 1:
            return (fn(item) for item in items)
        # chunksize 1: executor.map yields each result as its run finishes
        # (in input order), so the consumer can persist cells incrementally
        return iter(self._ensure_executor().map(fn, items, chunksize=1))

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None


def resolve_backend(backend: BackendLike) -> ExecutionBackend:
    """Turn ``None`` / a name / an instance into an :class:`ExecutionBackend`."""
    if backend is None:
        return SerialBackend()
    if isinstance(backend, ExecutionBackend):
        return backend
    if isinstance(backend, str):
        key = backend.strip().lower()
        if key in ("", "serial"):
            return SerialBackend()
        if key in ("process", "processes", "process-pool", "processpool"):
            return ProcessPoolBackend()
        raise ValueError(f"unknown execution backend {backend!r}")
    raise TypeError(f"cannot resolve backend from {type(backend).__name__}")
