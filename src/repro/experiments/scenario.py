"""Scenario configuration.

A :class:`ScenarioConfig` captures everything needed to build and run one
simulation: the mobility scenario, radio/buffer parameters, traffic load and
the routing protocol under test.  Two preset factories are provided:

* :meth:`ScenarioConfig.paper_scale` — the paper's settings (Section V-A):
  0.1 s update interval, 10 m range, 2 Mbit/s, 1 MB buffers, 25 KB messages,
  20 min TTL, alpha = 0.28, lambda = 10, 10 000 s runs.
* :meth:`ScenarioConfig.bench_scale` — a reduced-scale variant used by the
  test-suite and the benchmark harness so a full figure regenerates in
  minutes on a laptop.  The update interval is coarser (1 s) and the radio
  range is widened to 40 m to keep the *contact rate per bus-hour* comparable
  to the paper's fine-grained setting (see DESIGN.md, substitutions).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional, Tuple


class MobilityKind(enum.Enum):
    """Which mobility scenario to build."""

    #: bus lines over the synthetic downtown map (the paper's scenario)
    BUS = "bus"
    #: community-home random waypoint (used by community examples/ablations)
    COMMUNITY = "community"
    #: home-cell attraction with configurable roaming and optional
    #: membership drift (caveman/HCMM-style, repro.mobility.hcmm)
    HCMM = "hcmm"
    #: plain random waypoint over a rectangle
    RANDOM_WAYPOINT = "random_waypoint"
    #: pedestrians walking shortest paths on the road map
    SHORTEST_PATH = "shortest_path"
    #: connectivity replayed from a contact trace (file or named generator);
    #: nodes are stationary and the trace drives link-up/link-down
    TRACE = "trace"


@dataclass
class ScenarioConfig:
    """Full description of one simulation run."""

    # identity
    name: str = "scenario"
    seed: int = 1

    # routing
    protocol: str = "eer"
    router_params: Dict[str, object] = field(default_factory=dict)

    # population / time
    num_nodes: int = 40
    sim_time: float = 10_000.0
    update_interval: float = 1.0

    # mobility
    mobility: MobilityKind = MobilityKind.BUS
    map_width: float = 4500.0
    map_height: float = 3400.0
    map_spacing: float = 300.0
    num_communities: int = 4
    lines_per_district: int = 2
    stops_per_line: int = 5
    express_lines: int = 2
    min_speed: float = 2.7
    max_speed: float = 13.9
    stop_wait: Tuple[float, float] = (10.0, 30.0)
    local_probability: float = 0.85  # community mobility only
    # HCMM mobility only
    #: probability that a waypoint decision leaves the home cell
    roaming_probability: float = 0.15
    #: mean seconds between home-cell migrations (None = static membership)
    rehome_interval: Optional[float] = None

    # trace replay (MobilityKind.TRACE only; exactly one source must be set)
    #: path to an external trace file (ONE report or CSV, see repro.traces.io)
    trace_path: Optional[str] = None
    #: trace file format: "auto", "one" or "csv"
    trace_format: str = "auto"
    #: name of a synthetic generator from repro.traces.generators
    #: ("periodic", "memoryless", "community")
    trace_generator: Optional[str] = None
    #: extra keyword arguments for the generator (seed/num_nodes/duration
    #: default to the scenario's own values)
    trace_params: Dict[str, object] = field(default_factory=dict)
    #: optional (start, end) clip window applied to file traces, rebased to 0
    trace_window: Optional[Tuple[float, Optional[float]]] = None
    #: compact sparse file-trace node ids onto 0..n-1 before building nodes
    trace_remap_ids: bool = True

    # radio / buffers
    transmit_range: float = 10.0
    transmit_speed: float = 2_000_000 / 8
    buffer_capacity: float = 1024 * 1024

    # world tick (geometric mobility kinds only)
    #: connectivity detector: "kdtree", "grid", "brute" or "sharded"
    detector: str = "kdtree"
    #: rebuild slack as a fraction of the maximum radio range, for the
    #: kdtree/sharded detectors (None = the implementation's default)
    rebuild_margin: Optional[float] = None
    #: worker threads for sharded world phases (None = autodetect)
    world_workers: Optional[int] = None
    #: sharded-detector execution mode: "thread" fans rebuild strips over a
    #: thread pool, "process" over a persistent process pool with the
    #: position snapshot in shared memory (bit-identical; see
    #: repro.world.sharded)
    world_workers_mode: str = "thread"
    #: advance batch-capable mobility models through the vectorized
    #: MovementEngine kernel (False pins the exact per-follower loop)
    batch_movement: bool = True
    #: let the routers phase skip provably idle routers (False pins the
    #: historical tick-every-router loop; bit-identical either way, see
    #: DESIGN.md "The idle router contract")
    router_skiplist: bool = True
    #: False pins the historical tick structure — per-event contact stats,
    #: no connection pooling, O(live links) transfer scan — as the reference
    #: half of the world-tick benchmarks (requires router_skiplist=False);
    #: bit-identical simulation outcomes either way
    flat_tick: bool = True
    #: resolve the routers phase through the struct-of-arrays sweep
    #: (RouterStateStore): the idle-router skip predicate evaluates as
    #: vectorized masks over columnar per-router state, and provably no-op
    #: ticks of batch-capable protocols resolve without executing.  False
    #: pins the per-router skip-scan as the benchmark baseline (requires
    #: router_skiplist=True when on); bit-identical simulation outcomes
    #: either way, see DESIGN.md "Struct-of-arrays router state"
    router_soa: bool = True
    #: resolve the transfers phase through the columnar TransferEngine:
    #: in-flight head-of-queue bytes drain in one vectorized subtraction,
    #: with an exact per-connection replay only for completed heads.  False
    #: pins the per-connection Connection.advance loop as the benchmark
    #: baseline (requires flat_tick=True when on); byte-identical reports
    #: either way, see DESIGN.md "Columnar transfer accounting"
    transfer_engine: bool = True

    # traffic
    message_interval: Tuple[float, float] = (25.0, 35.0)
    message_size: int = 25 * 1024
    message_ttl: float = 20 * 60.0
    message_copies: int = 10
    traffic_start: float = 0.0
    traffic_end: Optional[float] = None
    #: arrival process for message creation: "uniform" draws inter-arrival
    #: gaps from message_interval (the historical model), "poisson" draws
    #: exponential gaps at traffic_rate messages/s, "bursty" emits bursts of
    #: traffic_burst_size messages traffic_burst_spacing seconds apart with
    #: exponential gaps between bursts (mean burst rate = traffic_rate).
    #: All three are deterministic given the scenario seed
    traffic_model: str = "uniform"
    #: mean arrival rate in messages per second (poisson/bursty only)
    traffic_rate: Optional[float] = None
    #: messages per burst (bursty only)
    traffic_burst_size: int = 20
    #: seconds between messages inside one burst (bursty only)
    traffic_burst_spacing: float = 0.0

    # bookkeeping
    contact_window: int = 20
    keep_records: bool = True
    #: per-event record keeping: None derives "lists"/"off" from
    #: keep_records; "columnar" stores event fields in NumPy column stores
    #: (identical metrics, far fewer allocations on million-event sweeps)
    record_mode: Optional[str] = None

    def __post_init__(self) -> None:
        if self.num_nodes < 2:
            raise ValueError("a scenario needs at least two nodes")
        if self.sim_time <= 0:
            raise ValueError("sim_time must be positive")
        if self.update_interval <= 0:
            raise ValueError("update_interval must be positive")
        if self.message_copies < 1:
            raise ValueError("message_copies (lambda) must be >= 1")
        if self.num_communities < 1:
            raise ValueError("num_communities must be >= 1")
        if not 0.0 <= self.roaming_probability <= 1.0:
            raise ValueError("roaming_probability must be in [0, 1]")
        if self.rehome_interval is not None and self.rehome_interval <= 0:
            raise ValueError("rehome_interval must be positive (or None)")
        if isinstance(self.mobility, str):
            self.mobility = MobilityKind(self.mobility)
        if self.detector not in ("kdtree", "grid", "brute", "sharded"):
            raise ValueError(
                f"detector must be 'kdtree', 'grid', 'brute' or 'sharded', "
                f"got {self.detector!r}")
        if self.rebuild_margin is not None and self.rebuild_margin < 0:
            raise ValueError("rebuild_margin must be non-negative (or None)")
        if self.detector == "sharded" and self.rebuild_margin == 0:
            # zero slack would invalidate the sharded detector's candidate
            # cache on any movement; fail at config time rather than letting
            # ShardedConnectivity raise from a different layer at build time
            raise ValueError(
                "rebuild_margin must be positive (or None) with "
                "detector='sharded'; 0 is only meaningful for the kdtree "
                "detector (rebuild every tick)")
        if self.world_workers is not None and self.world_workers < 1:
            raise ValueError("world_workers must be >= 1 (or None)")
        if self.world_workers_mode not in ("thread", "process"):
            raise ValueError(
                f"world_workers_mode must be 'thread' or 'process', "
                f"got {self.world_workers_mode!r}")
        if self.world_workers_mode == "process" and self.detector != "sharded":
            raise ValueError(
                "world_workers_mode='process' requires detector='sharded' "
                "(the other detectors have no worker pool)")
        if self.router_skiplist and not self.flat_tick:
            raise ValueError(
                "flat_tick=False (the historical reference tick) requires "
                "router_skiplist=False")
        if self.router_soa and not self.router_skiplist:
            raise ValueError(
                "router_skiplist=False (the per-router reference loop) "
                "requires router_soa=False (the SoA sweep is a vectorized "
                "evaluation of the skip predicate)")
        if self.transfer_engine and not self.flat_tick:
            raise ValueError(
                "flat_tick=False (the historical reference tick) requires "
                "transfer_engine=False (the engine's push seams only exist "
                "on the flattened tick)")
        if self.traffic_model not in ("uniform", "poisson", "bursty"):
            raise ValueError(
                f"traffic_model must be 'uniform', 'poisson' or 'bursty', "
                f"got {self.traffic_model!r}")
        if self.traffic_model == "uniform":
            if self.traffic_rate is not None:
                raise ValueError(
                    "traffic_rate only applies to traffic_model "
                    "'poisson'/'bursty' (uniform draws from message_interval)")
        elif self.traffic_rate is None or self.traffic_rate <= 0:
            raise ValueError(
                f"traffic_model {self.traffic_model!r} requires a positive "
                "traffic_rate (messages per second)")
        if self.traffic_burst_size < 1:
            raise ValueError("traffic_burst_size must be >= 1")
        if self.traffic_burst_spacing < 0:
            raise ValueError("traffic_burst_spacing must be non-negative")
        if self.record_mode is not None and self.record_mode not in (
                "off", "lists", "columnar"):
            raise ValueError(
                f"record_mode must be 'off', 'lists' or 'columnar', "
                f"got {self.record_mode!r}")
        if self.mobility is MobilityKind.TRACE:
            if (self.trace_path is None) == (self.trace_generator is None):
                raise ValueError(
                    "a TRACE scenario needs exactly one of trace_path or "
                    "trace_generator")
        elif self.trace_path is not None or self.trace_generator is not None:
            raise ValueError(
                "trace_path/trace_generator require mobility=MobilityKind.TRACE")

    # ------------------------------------------------------------------ presets
    @classmethod
    def paper_scale(cls, protocol: str = "eer", num_nodes: int = 40,
                    seed: int = 1, **overrides) -> "ScenarioConfig":
        """The paper's simulation settings (Section V-A)."""
        config = cls(
            name=f"paper-{protocol}-{num_nodes}",
            protocol=protocol,
            num_nodes=num_nodes,
            seed=seed,
            sim_time=10_000.0,
            update_interval=0.1,
            transmit_range=10.0,
            message_ttl=20 * 60.0,
            message_copies=10,
        )
        return replace(config, **overrides) if overrides else config

    @classmethod
    def bench_scale(cls, protocol: str = "eer", num_nodes: int = 40,
                    seed: int = 1, **overrides) -> "ScenarioConfig":
        """Reduced-scale settings used by tests and benchmarks.

        The map is smaller, the update interval coarser and the radio range
        wider; the *shape* of the protocol comparison is preserved (see
        EXPERIMENTS.md for the calibration notes).
        """
        config = cls(
            name=f"bench-{protocol}-{num_nodes}",
            protocol=protocol,
            num_nodes=num_nodes,
            seed=seed,
            sim_time=3_000.0,
            update_interval=1.0,
            map_width=2400.0,
            map_height=1800.0,
            map_spacing=300.0,
            transmit_range=40.0,
            message_interval=(20.0, 30.0),
            message_ttl=20 * 60.0,
            message_copies=10,
            stops_per_line=4,
        )
        return replace(config, **overrides) if overrides else config

    # ------------------------------------------------------------------ helpers
    def with_overrides(self, **overrides) -> "ScenarioConfig":
        """A copy of this configuration with the given fields replaced."""
        return replace(self, **overrides)

    # -------------------------------------------------------- canonical identity
    def canonical_payload(self) -> Dict[str, object]:
        """JSON-ready dict of every field, in a normalised form.

        Enums become their values and tuples become lists (recursively), so
        the payload survives a JSON round trip unchanged.  This is the same
        normalisation checkpoint manifests embed (see
        :func:`repro.checkpoint.config_to_payload`).
        """
        payload = dataclasses.asdict(self)
        payload["mobility"] = self.mobility.value
        return {key: _jsonify(value) for key, value in payload.items()}

    def identity_payload(self) -> Dict[str, object]:
        """The fields that define this scenario's *physics*, canonically.

        Three normalisations make the result a stable hashing basis:

        * ``name`` and ``seed`` are dropped — they are separate columns of
          the results-store identity key, not part of the configuration
          (two labels of the same physics share a hash; every seed of one
          cell shares a hash).
        * fields holding their dataclass default are dropped, so a config
          written before a new default-valued field existed hashes the same
          as one written after (stores and manifests stay valid across
          repro versions).
        * values are JSON-normalised as in :meth:`canonical_payload` and
          keys are emitted sorted, so field ordering never matters.
        """
        defaults = _field_defaults()
        payload = self.canonical_payload()
        identity: Dict[str, object] = {}
        for key in sorted(payload):
            if key in ("name", "seed"):
                continue
            if key in defaults and payload[key] == defaults[key]:
                continue
            identity[key] = payload[key]
        return identity

    def config_hash(self) -> str:
        """SHA-256 hex digest of :meth:`identity_payload`.

        Stable across field ordering, default-valued fields and JSON round
        trips; this is the dedupe key of :class:`repro.store.ResultsStore`
        and the ``config_hash`` field of checkpoint manifests.
        """
        data = json.dumps(self.identity_payload(), sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
        return hashlib.sha256(data).hexdigest()

    def identity_key(self) -> Tuple[str, str, int, str]:
        """The results-store identity ``(name, protocol, seed, config_hash)``."""
        return (self.name, self.protocol, int(self.seed), self.config_hash())

    @property
    def effective_traffic_end(self) -> float:
        """When traffic generation stops (defaults to the whole run, as in the
        ONE simulator's default message event generator)."""
        if self.traffic_end is not None:
            return self.traffic_end
        return self.sim_time


def _jsonify(value: object) -> object:
    """Normalise *value* so it round-trips through JSON unchanged."""
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonify(item) for key, item in value.items()}
    return value


_FIELD_DEFAULTS: Optional[Dict[str, object]] = None


def _field_defaults() -> Dict[str, object]:
    """Normalised default value per ScenarioConfig field (memoised).

    Built from a default-constructed instance so ``default_factory`` fields
    (the parameter dicts) are covered too.  ``__post_init__`` requires no
    field combination the defaults violate, so plain construction is safe.
    """
    global _FIELD_DEFAULTS
    if _FIELD_DEFAULTS is None:
        _FIELD_DEFAULTS = ScenarioConfig().canonical_payload()
    return _FIELD_DEFAULTS


def apply_overrides(config: ScenarioConfig,
                    overrides: Mapping[str, object]) -> ScenarioConfig:
    """Apply a flat override mapping, routing ``router.``-prefixed keys.

    Keys like ``router.alpha`` are merged into ``router_params`` (this is the
    convention shared by :func:`repro.experiments.sweep.sweep`, the scenario
    catalog and the CLI's ``--set``); every other key replaces the scenario
    field of the same name.

    Parameters
    ----------
    config:
        The base scenario.
    overrides:
        Field name (or ``router.<param>``) -> new value.

    Returns
    -------
    ScenarioConfig
        A new, re-validated configuration; *config* is untouched.
    """
    plain: Dict[str, object] = {}
    router_params = dict(config.router_params)
    for key, value in overrides.items():
        if key.startswith("router."):
            router_params[key[len("router."):]] = value
        else:
            plain[key] = value
    return config.with_overrides(router_params=router_params, **plain)
