"""Experiment drivers: scenario configuration, catalog, builders, runners and figures."""

from repro.experiments.scenario import ScenarioConfig, MobilityKind, apply_overrides
from repro.experiments.catalog import (
    ScenarioEntry,
    available_scenarios,
    get_scenario_entry,
    make_scenario,
    register_scenario,
    scenario_entries,
)
from repro.experiments.backend import (
    ExecutionBackend,
    SerialBackend,
    ProcessPoolBackend,
    resolve_backend,
)
from repro.experiments.builder import build_scenario, BuiltScenario
from repro.experiments.results import AveragedResult, SweepPoint
from repro.experiments.runner import (
    run_scenario,
    run_averaged,
    run_many_averaged,
)
from repro.experiments.sweep import sweep, sweep_grid
from repro.experiments.figures import (
    figure,
    figure_set,
    figure2_comparison,
    figure3_lambda_eer,
    figure4_lambda_cr,
    ablation_alpha,
    ablation_ttl,
    ablation_buffer,
    FigureResult,
    FIGURE_NAMES,
)
from repro.experiments.tables import (
    format_series_table,
    format_report_table,
    format_figure,
)

__all__ = [
    "ScenarioConfig",
    "MobilityKind",
    "apply_overrides",
    "ScenarioEntry",
    "available_scenarios",
    "get_scenario_entry",
    "make_scenario",
    "register_scenario",
    "scenario_entries",
    "build_scenario",
    "BuiltScenario",
    "run_scenario",
    "run_averaged",
    "run_many_averaged",
    "AveragedResult",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "resolve_backend",
    "sweep",
    "sweep_grid",
    "SweepPoint",
    "figure",
    "figure_set",
    "FIGURE_NAMES",
    "figure2_comparison",
    "figure3_lambda_eer",
    "figure4_lambda_cr",
    "ablation_alpha",
    "ablation_ttl",
    "ablation_buffer",
    "FigureResult",
    "format_series_table",
    "format_report_table",
    "format_figure",
]
