"""Text rendering of figure series and run reports."""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.experiments.figures import FigureResult
from repro.metrics.reports import SimulationReport


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "nan"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if abs(value) >= 10:
        return f"{value:.1f}"
    return f"{value:.3f}"


def format_series_table(figure: FigureResult, metric: str) -> str:
    """Render one metric of a figure as an aligned text table.

    Rows are the series (protocols / lambda values); columns are the x values
    (number of nodes, alpha, ...), mirroring how the paper's curves read.
    """
    series_map = figure.metrics.get(metric, {})
    if not series_map:
        return f"(no data for metric {metric!r})"
    xs: List[float] = sorted({x for points in series_map.values() for x, _ in points})
    header = [f"{metric} ({figure.x_label})"] + [_format_value(x) for x in xs]
    rows: List[List[str]] = [header]
    for label in series_map:
        by_x = dict(series_map[label])
        row = [label] + [_format_value(by_x[x]) if x in by_x else "-" for x in xs]
        rows.append(row)
    widths = [max(len(row[col]) for row in rows) for col in range(len(header))]
    lines = []
    for row_index, row in enumerate(rows):
        line = "  ".join(cell.ljust(widths[col]) for col, cell in enumerate(row))
        lines.append(line.rstrip())
        if row_index == 0:
            lines.append("-" * len(line))
    return "\n".join(lines)


def format_figure(figure: FigureResult, metrics: Sequence[str] = (
        "delivery_ratio", "average_latency", "goodput")) -> str:
    """Render a whole figure (all three sub-plots) as text."""
    sections = [f"== {figure.figure_id}: {figure.title} =="]
    for metric in metrics:
        sections.append(format_series_table(figure, metric))
        sections.append("")
    return "\n".join(sections).rstrip() + "\n"


def format_report_table(reports: Iterable[SimulationReport]) -> str:
    """Render a list of run reports as an aligned text table."""
    columns = ["protocol", "nodes", "created", "delivered", "relayed",
               "delivery_ratio", "latency", "goodput", "overhead"]
    rows: List[List[str]] = [columns]
    for report in reports:
        rows.append([
            report.protocol,
            str(report.num_nodes),
            str(report.created),
            str(report.delivered),
            str(report.relayed),
            _format_value(report.delivery_ratio),
            _format_value(report.average_latency),
            _format_value(report.goodput),
            _format_value(report.overhead_ratio),
        ])
    widths = [max(len(row[col]) for row in rows) for col in range(len(columns))]
    lines = []
    for row_index, row in enumerate(rows):
        line = "  ".join(cell.ljust(widths[col]) for col, cell in enumerate(row))
        lines.append(line.rstrip())
        if row_index == 0:
            lines.append("-" * len(line))
    return "\n".join(lines)
