"""Turn a :class:`~repro.experiments.scenario.ScenarioConfig` into a runnable world."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.experiments.scenario import MobilityKind, ScenarioConfig
from repro.metrics.collector import StatsCollector
from repro.mobility.base import MovementModel
from repro.mobility.community import CommunityLayout, CommunityMovement
from repro.mobility.map_generator import assign_districts, generate_downtown_map
from repro.mobility.map_route import BusRoute, MapRouteMovement, generate_bus_routes
from repro.mobility.random_waypoint import RandomWaypointMovement
from repro.mobility.roadmap import RoadMap
from repro.mobility.shortest_path import ShortestPathMapBasedMovement
from repro.net.generators import MessageEventGenerator, TrafficSpec
from repro.routing.registry import create_router
from repro.sim.engine import Simulator
from repro.world.interface import Interface
from repro.world.node import DTNNode
from repro.world.world import World


@dataclass
class BuiltScenario:
    """Everything :func:`build_scenario` assembles for one run."""

    config: ScenarioConfig
    simulator: Simulator
    world: World
    stats: StatsCollector
    traffic: MessageEventGenerator
    roadmap: Optional[RoadMap] = None
    routes: Optional[List[BusRoute]] = None

    def run(self) -> float:
        """Run the simulation to the configured horizon; returns the end time."""
        return self.simulator.run(until=self.config.sim_time)


def _bus_movements(config: ScenarioConfig, simulator: Simulator):
    """Build the bus-line mobility pieces: road map, routes, per-node models."""
    roadmap = generate_downtown_map(
        width=config.map_width, height=config.map_height,
        spacing=config.map_spacing, seed=config.seed)
    districts = assign_districts(roadmap, config.num_communities)
    routes = generate_bus_routes(
        roadmap, districts,
        lines_per_district=config.lines_per_district,
        stops_per_line=config.stops_per_line,
        express_lines=config.express_lines,
        seed=config.seed + 1)
    movements: List[MovementModel] = []
    communities: List[int] = []
    for index in range(config.num_nodes):
        route = routes[index % len(routes)]
        movements.append(MapRouteMovement(
            route, min_speed=config.min_speed, max_speed=config.max_speed,
            stop_wait=config.stop_wait))
        # Express lines have no home district; spread their buses round-robin
        # over the communities so every node has a community id (the paper
        # predefines a community for every node).
        if route.district is not None:
            communities.append(route.district)
        else:
            communities.append(index % config.num_communities)
    return roadmap, routes, movements, communities


def _community_movements(config: ScenarioConfig):
    layout = CommunityLayout(area=(config.map_width, config.map_height),
                             num_communities=config.num_communities)
    movements: List[MovementModel] = []
    communities: List[int] = []
    for index in range(config.num_nodes):
        community = index % config.num_communities
        movements.append(CommunityMovement(
            layout, community, local_probability=config.local_probability,
            min_speed=config.min_speed, max_speed=config.max_speed,
            wait=config.stop_wait))
        communities.append(community)
    return movements, communities


def _random_waypoint_movements(config: ScenarioConfig):
    movements: List[MovementModel] = []
    communities: List[int] = []
    for index in range(config.num_nodes):
        movements.append(RandomWaypointMovement(
            area=(config.map_width, config.map_height),
            min_speed=config.min_speed, max_speed=config.max_speed,
            wait=config.stop_wait))
        communities.append(index % config.num_communities)
    return movements, communities


def _shortest_path_movements(config: ScenarioConfig):
    roadmap = generate_downtown_map(
        width=config.map_width, height=config.map_height,
        spacing=config.map_spacing, seed=config.seed)
    districts = assign_districts(roadmap, config.num_communities)
    movements: List[MovementModel] = []
    communities: List[int] = []
    by_district: dict = {}
    for vertex, district in districts.items():
        by_district.setdefault(district, []).append(vertex)
    for index in range(config.num_nodes):
        community = index % config.num_communities
        allowed = by_district.get(community)
        movements.append(ShortestPathMapBasedMovement(
            roadmap, min_speed=config.min_speed, max_speed=config.max_speed,
            wait=config.stop_wait, allowed_vertices=allowed))
        communities.append(community)
    return roadmap, movements, communities


def build_scenario(config: ScenarioConfig) -> BuiltScenario:
    """Assemble the simulator, world, nodes, routers and traffic for *config*."""
    simulator = Simulator(seed=config.seed, end_time=config.sim_time)
    stats = StatsCollector(keep_records=config.keep_records)
    world = World(simulator, update_interval=config.update_interval, stats=stats)

    roadmap: Optional[RoadMap] = None
    routes: Optional[List[BusRoute]] = None
    if config.mobility is MobilityKind.BUS:
        roadmap, routes, movements, communities = _bus_movements(config, simulator)
    elif config.mobility is MobilityKind.COMMUNITY:
        movements, communities = _community_movements(config)
    elif config.mobility is MobilityKind.RANDOM_WAYPOINT:
        movements, communities = _random_waypoint_movements(config)
    elif config.mobility is MobilityKind.SHORTEST_PATH:
        roadmap, movements, communities = _shortest_path_movements(config)
    else:  # pragma: no cover - defensive
        raise ValueError(f"unknown mobility kind {config.mobility!r}")

    interface = Interface(transmit_range=config.transmit_range,
                          transmit_speed=config.transmit_speed)
    router_params = dict(config.router_params)
    for node_id in range(config.num_nodes):
        movement = movements[node_id]
        node_rng = simulator.random.python(f"mobility-{node_id}")
        node = DTNNode(
            node_id=node_id,
            movement=movement,
            rng=node_rng,
            interface=interface,
            buffer_capacity=config.buffer_capacity,
            community=communities[node_id],
        )
        router = create_router(config.protocol, **router_params)
        router.attach(node, world)
        world.add_node(node)

    spec = TrafficSpec(
        interval=config.message_interval,
        size=config.message_size,
        ttl=config.message_ttl,
        copies=config.message_copies,
        start=config.traffic_start,
        end=config.effective_traffic_end,
    )
    traffic = MessageEventGenerator(simulator, world, spec)
    return BuiltScenario(config=config, simulator=simulator, world=world,
                         stats=stats, traffic=traffic, roadmap=roadmap,
                         routes=routes)
