"""Turn a :class:`~repro.experiments.scenario.ScenarioConfig` into a runnable world."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.experiments.scenario import MobilityKind, ScenarioConfig
from repro.metrics.collector import StatsCollector
from repro.mobility.base import MovementModel
from repro.mobility.community import CommunityLayout, CommunityMovement
from repro.mobility.hcmm import HomeCellMovement
from repro.mobility.map_generator import assign_districts, generate_downtown_map
from repro.mobility.map_route import BusRoute, MapRouteMovement, generate_bus_routes
from repro.mobility.random_waypoint import RandomWaypointMovement
from repro.mobility.roadmap import RoadMap
from repro.mobility.shortest_path import ShortestPathMapBasedMovement
from repro.mobility.stationary import StationaryMovement
from repro.net.generators import MessageEventGenerator, TrafficSpec
from repro.routing.registry import create_router
from repro.sim.engine import Simulator
from repro.traces.contact_trace import ContactTrace
from repro.traces.generators import generate_trace
from repro.traces.io import load_trace
from repro.traces.replay import TraceReplayWorld
from repro.world.connectivity import (
    BruteForceConnectivity,
    ConnectivityDetector,
    GridConnectivity,
    KDTreeConnectivity,
)
from repro.world.interface import Interface
from repro.world.node import DTNNode
from repro.world.sharded import ShardedConnectivity
from repro.world.world import World


@dataclass
class BuiltScenario:
    """Everything :func:`build_scenario` assembles for one run."""

    config: ScenarioConfig
    simulator: Simulator
    world: World
    stats: StatsCollector
    traffic: MessageEventGenerator
    roadmap: Optional[RoadMap] = None
    routes: Optional[List[BusRoute]] = None
    #: the replayed contact trace (``MobilityKind.TRACE`` scenarios only)
    trace: Optional[ContactTrace] = None

    def run(self) -> float:
        """Run the simulation to the configured horizon; returns the end time."""
        return self.simulator.run(until=self.config.sim_time)


def _bus_movements(config: ScenarioConfig, simulator: Simulator):
    """Build the bus-line mobility pieces: road map, routes, per-node models."""
    roadmap = generate_downtown_map(
        width=config.map_width, height=config.map_height,
        spacing=config.map_spacing, seed=config.seed)
    districts = assign_districts(roadmap, config.num_communities)
    routes = generate_bus_routes(
        roadmap, districts,
        lines_per_district=config.lines_per_district,
        stops_per_line=config.stops_per_line,
        express_lines=config.express_lines,
        seed=config.seed + 1)
    movements: List[MovementModel] = []
    communities: List[int] = []
    for index in range(config.num_nodes):
        route = routes[index % len(routes)]
        movements.append(MapRouteMovement(
            route, min_speed=config.min_speed, max_speed=config.max_speed,
            stop_wait=config.stop_wait))
        # Express lines have no home district; spread their buses round-robin
        # over the communities so every node has a community id (the paper
        # predefines a community for every node).
        if route.district is not None:
            communities.append(route.district)
        else:
            communities.append(index % config.num_communities)
    return roadmap, routes, movements, communities


def _community_movements(config: ScenarioConfig):
    layout = CommunityLayout(area=(config.map_width, config.map_height),
                             num_communities=config.num_communities)
    movements: List[MovementModel] = []
    communities: List[int] = []
    for index in range(config.num_nodes):
        community = index % config.num_communities
        movements.append(CommunityMovement(
            layout, community, local_probability=config.local_probability,
            min_speed=config.min_speed, max_speed=config.max_speed,
            wait=config.stop_wait))
        communities.append(community)
    return movements, communities


def _hcmm_movements(config: ScenarioConfig):
    """Home-cell (caveman/HCMM) mobility; communities are the initial homes.

    With ``rehome_interval`` set the *actual* home cells drift during the
    run while the returned community labels stay the initial assignment —
    CR's oracle mode keeps routing on stale structure, the detected modes
    re-learn it (see docs/communities.md).
    """
    layout = CommunityLayout(area=(config.map_width, config.map_height),
                             num_communities=config.num_communities)
    movements: List[MovementModel] = []
    communities: List[int] = []
    for index in range(config.num_nodes):
        home = index % config.num_communities
        movements.append(HomeCellMovement(
            layout, home, roaming_probability=config.roaming_probability,
            min_speed=config.min_speed, max_speed=config.max_speed,
            wait=config.stop_wait, rehome_interval=config.rehome_interval))
        communities.append(home)
    return movements, communities


def _random_waypoint_movements(config: ScenarioConfig):
    movements: List[MovementModel] = []
    communities: List[int] = []
    for index in range(config.num_nodes):
        movements.append(RandomWaypointMovement(
            area=(config.map_width, config.map_height),
            min_speed=config.min_speed, max_speed=config.max_speed,
            wait=config.stop_wait))
        communities.append(index % config.num_communities)
    return movements, communities


def _shortest_path_movements(config: ScenarioConfig):
    roadmap = generate_downtown_map(
        width=config.map_width, height=config.map_height,
        spacing=config.map_spacing, seed=config.seed)
    districts = assign_districts(roadmap, config.num_communities)
    movements: List[MovementModel] = []
    communities: List[int] = []
    by_district: dict = {}
    for vertex, district in districts.items():
        by_district.setdefault(district, []).append(vertex)
    for index in range(config.num_nodes):
        community = index % config.num_communities
        allowed = by_district.get(community)
        movements.append(ShortestPathMapBasedMovement(
            roadmap, min_speed=config.min_speed, max_speed=config.max_speed,
            wait=config.stop_wait, allowed_vertices=allowed))
        communities.append(community)
    return roadmap, movements, communities


def _load_scenario_trace(config: ScenarioConfig):
    """Resolve a TRACE config's contact trace (file or named generator).

    Returns the trace and an optional ground-truth node -> community mapping
    (only the ``community`` generator provides one).
    """
    if config.trace_path is not None:
        trace = load_trace(config.trace_path, config.trace_format,
                           window=config.trace_window,
                           remap=config.trace_remap_ids)
        return trace, None
    params = dict(config.trace_params)
    params.setdefault("num_nodes", config.num_nodes)
    params.setdefault("duration", config.sim_time)
    params.setdefault("seed", config.seed)
    if config.trace_generator in ("community", "drifting"):
        params.setdefault("num_communities", config.num_communities)
    return generate_trace(config.trace_generator, **params)


def _trace_movements(config: ScenarioConfig):
    """Build the trace-replay pieces: trace, stationary movements, communities."""
    trace, trace_communities = _load_scenario_trace(config)
    ids = trace.node_ids()
    highest = ids[-1] if ids else -1
    if highest >= config.num_nodes:
        hint = ("raise num_nodes" if config.trace_remap_ids or
                config.trace_path is None
                else "raise num_nodes or enable trace_remap_ids")
        raise ValueError(
            f"trace references node id {highest} but the scenario has only "
            f"{config.num_nodes} nodes; {hint}")
    movements: List[MovementModel] = []
    communities: List[int] = []
    for index in range(config.num_nodes):
        movements.append(StationaryMovement((float(index), 0.0)))
        if trace_communities is not None and index in trace_communities:
            communities.append(trace_communities[index])
        else:
            communities.append(index % config.num_communities)
    return trace, movements, communities


def build_detector(config: ScenarioConfig) -> ConnectivityDetector:
    """Construct the configured connectivity detector.

    ``config.rebuild_margin`` (when set) overrides the kdtree/sharded
    rebuild slack; ``config.world_workers`` sizes the sharded detector's
    worker pool.  The grid and brute-force detectors take no parameters.
    """
    name = config.detector
    if name == "kdtree":
        if config.rebuild_margin is None:
            return KDTreeConnectivity()
        return KDTreeConnectivity(rebuild_margin=config.rebuild_margin)
    if name == "grid":
        return GridConnectivity()
    if name == "brute":
        return BruteForceConnectivity()
    assert name == "sharded", name  # ScenarioConfig validated the choice
    if config.rebuild_margin is None:
        return ShardedConnectivity(workers=config.world_workers,
                                   workers_mode=config.world_workers_mode)
    return ShardedConnectivity(rebuild_margin=config.rebuild_margin,
                               workers=config.world_workers,
                               workers_mode=config.world_workers_mode)


def build_scenario(config: ScenarioConfig) -> BuiltScenario:
    """Assemble the simulator, world, nodes, routers and traffic for *config*.

    Geometric mobility kinds get a :class:`~repro.world.world.World` with
    range-based connectivity detection; ``MobilityKind.TRACE`` gets a
    :class:`~repro.traces.replay.TraceReplayWorld` whose link events come from
    the configured contact trace.  Everything downstream (routers, traffic,
    statistics, runners, backends) is identical for both.
    """
    simulator = Simulator(seed=config.seed, end_time=config.sim_time)
    stats = StatsCollector(keep_records=config.keep_records,
                           mode=config.record_mode)

    roadmap: Optional[RoadMap] = None
    routes: Optional[List[BusRoute]] = None
    trace: Optional[ContactTrace] = None
    if config.mobility is MobilityKind.BUS:
        roadmap, routes, movements, communities = _bus_movements(config, simulator)
    elif config.mobility is MobilityKind.COMMUNITY:
        movements, communities = _community_movements(config)
    elif config.mobility is MobilityKind.HCMM:
        movements, communities = _hcmm_movements(config)
    elif config.mobility is MobilityKind.RANDOM_WAYPOINT:
        movements, communities = _random_waypoint_movements(config)
    elif config.mobility is MobilityKind.SHORTEST_PATH:
        roadmap, movements, communities = _shortest_path_movements(config)
    elif config.mobility is MobilityKind.TRACE:
        trace, movements, communities = _trace_movements(config)
    else:  # pragma: no cover - defensive
        raise ValueError(f"unknown mobility kind {config.mobility!r}")

    if trace is not None:
        world: World = TraceReplayWorld(
            simulator, trace, update_interval=config.update_interval,
            stats=stats, router_skiplist=config.router_skiplist,
            flat_tick=config.flat_tick, router_soa=config.router_soa,
            transfer_engine=config.transfer_engine)
    else:
        world = World(simulator, update_interval=config.update_interval,
                      stats=stats, detector=build_detector(config),
                      batch_movement=config.batch_movement,
                      router_skiplist=config.router_skiplist,
                      flat_tick=config.flat_tick,
                      router_soa=config.router_soa,
                      transfer_engine=config.transfer_engine)

    interface = Interface(transmit_range=config.transmit_range,
                          transmit_speed=config.transmit_speed)
    router_params = dict(config.router_params)
    for node_id in range(config.num_nodes):
        movement = movements[node_id]
        node_rng = simulator.random.python(f"mobility-{node_id}")
        node = DTNNode(
            node_id=node_id,
            movement=movement,
            rng=node_rng,
            interface=interface,
            buffer_capacity=config.buffer_capacity,
            community=communities[node_id],
        )
        router = create_router(config.protocol, **router_params)
        router.attach(node, world)
        world.add_node(node)

    spec = TrafficSpec(
        interval=config.message_interval,
        size=config.message_size,
        ttl=config.message_ttl,
        copies=config.message_copies,
        start=config.traffic_start,
        end=config.effective_traffic_end,
        model=config.traffic_model,
        rate=config.traffic_rate,
        burst_size=config.traffic_burst_size,
        burst_spacing=config.traffic_burst_spacing,
    )
    traffic = MessageEventGenerator(simulator, world, spec)
    return BuiltScenario(config=config, simulator=simulator, world=world,
                         stats=stats, traffic=traffic, roadmap=roadmap,
                         routes=routes, trace=trace)
