"""Contact-trace data model and (de)serialisation.

The text format is the ONE simulator's connectivity ("StandardEventsReader")
style, one event per line::

    <time> CONN <node_a> <node_b> up
    <time> CONN <node_a> <node_b> down

Traces can be produced from a finished simulation's contact records, loaded
from disk (e.g. converted real-world traces such as the Cambridge/Infocom
Bluetooth sightings), or generated synthetically
(:mod:`repro.traces.generators`), and replayed with
:class:`repro.traces.replay.TraceReplayWorld`.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Set, Tuple


@dataclass(frozen=True, order=True)
class ContactEvent:
    """One link-up or link-down event."""

    time: float
    node_a: int
    node_b: int
    up: bool

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("event time must be non-negative")
        if self.node_a == self.node_b:
            raise ValueError("a node cannot contact itself")

    @property
    def pair(self) -> Tuple[int, int]:
        """Canonical ``(min, max)`` node-id pair."""
        return (min(self.node_a, self.node_b), max(self.node_a, self.node_b))

    def to_line(self) -> str:
        """Serialise to one trace line."""
        state = "up" if self.up else "down"
        return f"{self.time:.3f} CONN {self.node_a} {self.node_b} {state}"

    @classmethod
    def from_line(cls, line: str) -> "ContactEvent":
        """Parse one trace line (raises ``ValueError`` on malformed input)."""
        parts = line.split()
        if len(parts) != 5 or parts[1].upper() != "CONN":
            raise ValueError(f"malformed trace line: {line!r}")
        time, _, a, b, state = parts
        if state.lower() not in ("up", "down"):
            raise ValueError(f"malformed connection state in line: {line!r}")
        return cls(float(time), int(a), int(b), state.lower() == "up")


class ContactTrace:
    """An ordered collection of contact events."""

    def __init__(self, events: Optional[Iterable[ContactEvent]] = None) -> None:
        self._events: List[ContactEvent] = sorted(events or [], key=lambda e: e.time)

    # -------------------------------------------------------------- inspection
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[ContactEvent]:
        return iter(self._events)

    @property
    def events(self) -> List[ContactEvent]:
        """All events in time order (copy)."""
        return list(self._events)

    def duration(self) -> float:
        """Time of the last event (0 for an empty trace)."""
        return self._events[-1].time if self._events else 0.0

    def node_ids(self) -> List[int]:
        """Sorted list of node ids appearing in the trace."""
        ids: Set[int] = set()
        for event in self._events:
            ids.add(event.node_a)
            ids.add(event.node_b)
        return sorted(ids)

    def contacts(self) -> List[Tuple[Tuple[int, int], float, float]]:
        """Closed contacts as ``(pair, start, end)`` tuples.

        Up events without a matching down are closed at the trace duration.
        """
        open_contacts: dict = {}
        closed: List[Tuple[Tuple[int, int], float, float]] = []
        for event in self._events:
            if event.up:
                open_contacts.setdefault(event.pair, event.time)
            else:
                start = open_contacts.pop(event.pair, None)
                if start is not None:
                    closed.append((event.pair, start, event.time))
        end = self.duration()
        for pair, start in open_contacts.items():
            closed.append((pair, start, end))
        closed.sort(key=lambda c: c[1])
        return closed

    def active_pairs(self, time: float) -> Set[Tuple[int, int]]:
        """Pairs in contact at the given instant."""
        active: Set[Tuple[int, int]] = set()
        for event in self._events:
            if event.time > time:
                break
            if event.up:
                active.add(event.pair)
            else:
                active.discard(event.pair)
        return active

    # -------------------------------------------------------------- mutation
    def add(self, event: ContactEvent) -> None:
        """Insert an event, keeping time order."""
        self._events.append(event)
        self._events.sort(key=lambda e: e.time)

    # ----------------------------------------------------------------- builders
    @classmethod
    def from_contact_records(cls, records, horizon: Optional[float] = None) -> "ContactTrace":
        """Build a trace from the collector's :class:`ContactRecord` list."""
        events: List[ContactEvent] = []
        for record in records:
            events.append(ContactEvent(record.start, record.node_a, record.node_b, True))
            end = record.end if record.end is not None else horizon
            if end is not None:
                events.append(ContactEvent(end, record.node_a, record.node_b, False))
        return cls(events)

    # --------------------------------------------------------------------- I/O
    def save(self, path) -> None:
        """Write the trace to *path* in the ONE-style text format."""
        path = Path(path)
        lines = [event.to_line() for event in self._events]
        path.write_text("\n".join(lines) + ("\n" if lines else ""))

    @classmethod
    def load(cls, path) -> "ContactTrace":
        """Read a trace written by :meth:`save` (blank lines and ``#`` comments allowed).

        Delegates to :func:`repro.traces.io.load_one_trace`, the single
        ONE-format parser, so malformed lines raise
        :class:`~repro.traces.io.TraceFormatError` with their line number.
        """
        from repro.traces.io import load_one_trace  # deferred: io imports us

        return load_one_trace(path)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ContactTrace({len(self._events)} events, {len(self.node_ids())} nodes)"
