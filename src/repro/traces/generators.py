"""Synthetic contact-trace generators.

These produce traces with controlled statistical structure, used by the unit
tests (known ground truth), the trace-replay example and the ablations:

* :func:`periodic_contact_trace` — every pair meets with its own fixed period
  plus jitter; the regime where contact-expectation predictions are most
  accurate.
* :func:`random_waypoint_like_trace` — exponential inter-contact times, the
  memoryless baseline where conditioning on the elapsed time brings nothing.
* :func:`community_structured_trace` — intra-community pairs meet much more
  often than inter-community pairs; ground truth for community detection and
  the CR protocol.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.traces.contact_trace import ContactEvent, ContactTrace


def _emit_pair_contacts(events: List[ContactEvent], rng: random.Random,
                        a: int, b: int, duration: float, mean_gap: float,
                        contact_duration: float, jitter: float,
                        periodic: bool) -> None:
    """Append up/down events for one pair across the trace duration."""
    t = rng.uniform(0.0, mean_gap)
    while t < duration:
        end = min(duration, t + contact_duration)
        events.append(ContactEvent(t, a, b, True))
        events.append(ContactEvent(end, a, b, False))
        if periodic:
            gap = mean_gap * (1.0 + rng.uniform(-jitter, jitter))
        else:
            gap = rng.expovariate(1.0 / mean_gap)
        t = end + max(1.0, gap)


def periodic_contact_trace(num_nodes: int, duration: float,
                           period_range: Tuple[float, float] = (200.0, 600.0),
                           contact_duration: float = 20.0,
                           jitter: float = 0.1,
                           pair_fraction: float = 1.0,
                           seed: int = 0) -> ContactTrace:
    """Every selected pair meets with its own near-constant period.

    Parameters
    ----------
    num_nodes:
        Number of nodes (ids ``0..num_nodes-1``).
    duration:
        Trace length in seconds.
    period_range:
        Per-pair meeting period drawn uniformly from this range.
    contact_duration:
        Length of each contact in seconds.
    jitter:
        Relative jitter applied to each period (0 = perfectly periodic).
    pair_fraction:
        Fraction of all pairs that ever meet.
    seed:
        RNG seed.
    """
    if num_nodes < 2:
        raise ValueError("need at least two nodes")
    if not 0 < pair_fraction <= 1:
        raise ValueError("pair_fraction must be in (0, 1]")
    rng = random.Random(seed)
    events: List[ContactEvent] = []
    for a in range(num_nodes):
        for b in range(a + 1, num_nodes):
            if rng.random() > pair_fraction:
                continue
            period = rng.uniform(*period_range)
            _emit_pair_contacts(events, rng, a, b, duration, period,
                                contact_duration, jitter, periodic=True)
    return ContactTrace(events)


def random_waypoint_like_trace(num_nodes: int, duration: float,
                               mean_intercontact: float = 400.0,
                               contact_duration: float = 20.0,
                               pair_fraction: float = 1.0,
                               seed: int = 0) -> ContactTrace:
    """Memoryless (exponential inter-contact time) trace."""
    if num_nodes < 2:
        raise ValueError("need at least two nodes")
    rng = random.Random(seed)
    events: List[ContactEvent] = []
    for a in range(num_nodes):
        for b in range(a + 1, num_nodes):
            if rng.random() > pair_fraction:
                continue
            _emit_pair_contacts(events, rng, a, b, duration, mean_intercontact,
                                contact_duration, jitter=0.0, periodic=False)
    return ContactTrace(events)


def community_structured_trace(num_nodes: int, num_communities: int,
                               duration: float,
                               intra_period: float = 200.0,
                               inter_period: float = 1500.0,
                               contact_duration: float = 20.0,
                               jitter: float = 0.2,
                               seed: int = 0,
                               ) -> Tuple[ContactTrace, Dict[int, int]]:
    """Trace where intra-community pairs meet far more often than others.

    Returns the trace and the ground-truth node -> community assignment.
    """
    if num_nodes < 2 or num_communities < 1:
        raise ValueError("need at least two nodes and one community")
    rng = random.Random(seed)
    assignment = {node: node % num_communities for node in range(num_nodes)}
    events: List[ContactEvent] = []
    for a in range(num_nodes):
        for b in range(a + 1, num_nodes):
            same = assignment[a] == assignment[b]
            period = intra_period if same else inter_period
            period *= 1.0 + rng.uniform(-0.2, 0.2)
            _emit_pair_contacts(events, rng, a, b, duration, period,
                                contact_duration, jitter, periodic=True)
    return ContactTrace(events), assignment


def drifting_community_trace(num_nodes: int, num_communities: int,
                             duration: float,
                             drift_interval: float = 1000.0,
                             drift_fraction: float = 0.25,
                             intra_period: float = 200.0,
                             inter_period: float = 1500.0,
                             contact_duration: float = 20.0,
                             jitter: float = 0.2,
                             seed: int = 0,
                             ) -> Tuple[ContactTrace, Dict[int, int]]:
    """Community-structured trace whose membership *drifts* over time.

    Time is split into epochs of ``drift_interval`` seconds.  The first
    epoch uses the round-robin assignment ``node % num_communities``; at
    every epoch boundary each node re-homes to a uniformly random community
    with probability ``drift_fraction``.  Within an epoch, pairs sharing a
    community meet with period ``intra_period`` and other pairs with
    ``inter_period``, as in :func:`community_structured_trace`.

    Returns the trace and the ground-truth assignment **of the first
    epoch** — exactly what a predefined (oracle) assignment would be.  By
    the end of the trace that oracle is stale, which is the regime the
    ``community-drift`` catalog scenario uses to compare CR's oracle mode
    against online detection.
    """
    if num_nodes < 2 or num_communities < 1:
        raise ValueError("need at least two nodes and one community")
    if drift_interval <= 0:
        raise ValueError("drift_interval must be positive")
    if not 0 <= drift_fraction <= 1:
        raise ValueError("drift_fraction must be in [0, 1]")
    rng = random.Random(seed)
    epochs = max(1, int(duration // drift_interval) + 1)
    assignments: List[Dict[int, int]] = [
        {node: node % num_communities for node in range(num_nodes)}]
    for _ in range(1, epochs):
        previous = assignments[-1]
        current = dict(previous)
        for node in range(num_nodes):
            if rng.random() < drift_fraction:
                current[node] = rng.randrange(num_communities)
        assignments.append(current)
    events: List[ContactEvent] = []
    first_epoch = assignments[0]
    for a in range(num_nodes):
        for b in range(a + 1, num_nodes):
            pair_scale = 1.0 + rng.uniform(-0.2, 0.2)
            # phase the first contact by the pair's own first-epoch period
            # (the community_structured_trace convention) — a shared short
            # phase window would burst every inter-community pair at t=0
            # and wash out the structure the scenario plants
            first_same = first_epoch[a] == first_epoch[b]
            t = rng.uniform(
                0.0, (intra_period if first_same else inter_period) * pair_scale)
            while t < duration:
                epoch = min(int(t // drift_interval), epochs - 1)
                same = assignments[epoch][a] == assignments[epoch][b]
                period = (intra_period if same else inter_period) * pair_scale
                end = min(duration, t + contact_duration)
                events.append(ContactEvent(t, a, b, True))
                events.append(ContactEvent(end, a, b, False))
                gap = period * (1.0 + rng.uniform(-jitter, jitter))
                t = end + max(1.0, gap)
    return ContactTrace(events), assignments[0]


#: named generators, resolvable from picklable scenario configs
#: (``ScenarioConfig.trace_generator``) and the scenario catalog
TRACE_GENERATORS = {
    "periodic": periodic_contact_trace,
    "memoryless": random_waypoint_like_trace,
    "community": community_structured_trace,
    "drifting": drifting_community_trace,
}


def generate_trace(name: str, **params) -> Tuple[ContactTrace,
                                                 Optional[Dict[int, int]]]:
    """Run the generator registered under *name* with *params*.

    Parameters
    ----------
    name:
        A key of :data:`TRACE_GENERATORS` (``periodic``, ``memoryless``,
        ``community``).
    params:
        Forwarded to the generator (``num_nodes``, ``duration``, ``seed``, …).

    Returns
    -------
    (ContactTrace, dict or None)
        The trace and, for generators with community structure, the
        ground-truth node -> community assignment (``None`` otherwise).

    Raises
    ------
    KeyError
        If *name* is not a registered generator.
    """
    try:
        generator = TRACE_GENERATORS[name]
    except KeyError:
        raise KeyError(
            f"unknown trace generator {name!r}; known: "
            f"{', '.join(sorted(TRACE_GENERATORS))}") from None
    result = generator(**params)
    if isinstance(result, tuple):
        trace, communities = result
        return trace, dict(communities)
    return result, None
