"""External contact-trace ingestion.

This module is the boundary between on-disk trace files and the in-memory
:class:`~repro.traces.contact_trace.ContactTrace` the replay machinery
consumes.  Two text formats are supported:

* **ONE report** — the ONE simulator's ``StandardEventsReader`` connectivity
  style, one whitespace-separated event per line::

      <time> CONN <node_a> <node_b> up
      <time> CONN <node_a> <node_b> down

  Blank lines and ``#`` comments are ignored.

* **Generic CSV** — one ``up``/``down`` event per row with the columns
  ``time,node_a,node_b,event`` (a header row is detected and skipped; blank
  lines and ``#`` comments are ignored)::

      time,node_a,node_b,event
      12.0,0,3,up
      40.5,0,3,down

On top of parsing, the module provides the three transforms real traces need
before they can drive a simulation (see DESIGN.md, *trace ingestion
contract*):

* :func:`validate_trace` — structural checks (duplicate ups, orphan downs,
  down-before-up) reported with pair and time;
* :func:`remap_node_ids` — compact arbitrary sparse node ids onto
  ``0..n-1`` so they can index the contact matrices;
* :func:`clip_trace` — cut a time window out of a longer trace, synthesising
  boundary events so the clipped trace is self-contained.

:func:`load_trace` chains all of the above behind one call and is what
:mod:`repro.experiments.builder` uses for ``MobilityKind.TRACE`` scenarios.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.traces.contact_trace import ContactEvent, ContactTrace

#: recognised trace formats (``auto`` sniffs, see :func:`detect_format`)
TRACE_FORMATS = ("auto", "one", "csv")

_CSV_STATES = {"up": True, "down": False, "1": True, "0": False}


class TraceFormatError(ValueError):
    """A trace file (or line) could not be parsed.

    Carries the source path/label and the 1-based line number when known, so
    CLI users get actionable messages.
    """

    def __init__(self, message: str, *, source: str = "<trace>",
                 line_number: Optional[int] = None) -> None:
        location = source if line_number is None else f"{source}:{line_number}"
        super().__init__(f"{location}: {message}")
        self.source = source
        self.line_number = line_number


def _event_lines(text: str) -> Iterable[Tuple[int, str]]:
    """Yield ``(line_number, stripped_line)`` for non-blank, non-comment lines."""
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        yield number, line


def _parse_int(token: str, what: str, *, source: str,
               line_number: int) -> int:
    try:
        return int(token)
    except ValueError:
        raise TraceFormatError(f"{what} must be an integer, got {token!r}",
                               source=source, line_number=line_number) from None


def _parse_time(token: str, *, source: str, line_number: int) -> float:
    try:
        value = float(token)
    except ValueError:
        raise TraceFormatError(f"event time must be a number, got {token!r}",
                               source=source, line_number=line_number) from None
    if value < 0:
        raise TraceFormatError(f"event time must be non-negative, got {value}",
                               source=source, line_number=line_number)
    return value


def _make_event(time: float, a: int, b: int, up: bool, *, source: str,
                line_number: int) -> ContactEvent:
    if a == b:
        raise TraceFormatError(f"self-contact of node {a}",
                               source=source, line_number=line_number)
    return ContactEvent(time, a, b, up)


# ------------------------------------------------------------------ ONE format
def parse_one_trace(text: str, *, source: str = "<one>") -> ContactTrace:
    """Parse ONE-report connectivity text into a :class:`ContactTrace`.

    Parameters
    ----------
    text:
        Full file contents (``<time> CONN <a> <b> up|down`` lines).
    source:
        Label used in :class:`TraceFormatError` messages.

    Raises
    ------
    TraceFormatError
        On any malformed line, with its line number.
    """
    events: List[ContactEvent] = []
    for number, line in _event_lines(text):
        parts = line.split()
        if len(parts) != 5:
            raise TraceFormatError(
                f"expected 5 fields '<time> CONN <a> <b> up|down', got "
                f"{len(parts)}: {line!r}", source=source, line_number=number)
        time_token, tag, a_token, b_token, state = parts
        if tag.upper() != "CONN":
            raise TraceFormatError(
                f"expected CONN event tag, got {tag!r}",
                source=source, line_number=number)
        if state.lower() not in ("up", "down"):
            raise TraceFormatError(
                f"connection state must be 'up' or 'down', got {state!r}",
                source=source, line_number=number)
        events.append(_make_event(
            _parse_time(time_token, source=source, line_number=number),
            _parse_int(a_token, "node id", source=source, line_number=number),
            _parse_int(b_token, "node id", source=source, line_number=number),
            state.lower() == "up", source=source, line_number=number))
    return ContactTrace(events)


def load_one_trace(path) -> ContactTrace:
    """Read a ONE-report connectivity file from *path*."""
    path = Path(path)
    return parse_one_trace(path.read_text(), source=str(path))


# ------------------------------------------------------------------ CSV format
def parse_csv_trace(text: str, *, source: str = "<csv>") -> ContactTrace:
    """Parse generic ``time,node_a,node_b,event`` CSV text.

    The event column accepts ``up``/``down`` (case-insensitive) or ``1``/``0``.
    A leading header row is skipped when its first cell is not a number.

    Raises
    ------
    TraceFormatError
        On wrong column counts, non-numeric times/ids or unknown states.
    """
    events: List[ContactEvent] = []
    first_data_line = True
    for number, line in _event_lines(text):
        cells = [cell.strip() for cell in line.split(",")]
        if len(cells) != 4:
            raise TraceFormatError(
                f"expected 4 columns 'time,node_a,node_b,event', got "
                f"{len(cells)}: {line!r}", source=source, line_number=number)
        if first_data_line:
            first_data_line = False
            try:
                float(cells[0])
            except ValueError:
                # a header row has non-numeric id columns too; a data row
                # with just a typo'd time must still raise, not vanish
                if not (cells[1].lstrip("-").isdigit()
                        or cells[2].lstrip("-").isdigit()):
                    continue  # header row
        state = cells[3].lower()
        if state not in _CSV_STATES:
            raise TraceFormatError(
                f"event column must be up/down/1/0, got {cells[3]!r}",
                source=source, line_number=number)
        events.append(_make_event(
            _parse_time(cells[0], source=source, line_number=number),
            _parse_int(cells[1], "node id", source=source, line_number=number),
            _parse_int(cells[2], "node id", source=source, line_number=number),
            _CSV_STATES[state], source=source, line_number=number))
    return ContactTrace(events)


def load_csv_trace(path) -> ContactTrace:
    """Read a ``time,node_a,node_b,event`` CSV file from *path*."""
    path = Path(path)
    return parse_csv_trace(path.read_text(), source=str(path))


def save_csv_trace(trace: ContactTrace, path) -> None:
    """Write *trace* to *path* in the generic CSV format (with header).

    Round-trips exactly through :func:`load_csv_trace` (times are written
    with millisecond precision, matching :meth:`ContactEvent.to_line`).
    """
    path = Path(path)
    lines = ["time,node_a,node_b,event"]
    for event in trace:
        state = "up" if event.up else "down"
        lines.append(f"{event.time:.3f},{event.node_a},{event.node_b},{state}")
    path.write_text("\n".join(lines) + "\n")


# ------------------------------------------------------------------ transforms
def validate_trace(trace: ContactTrace, *, strict: bool = False) -> List[str]:
    """Check a trace for structural problems.

    Looks for pairs brought *up* twice without an intervening *down* and
    *down* events with no open contact.  Both appear in real converted traces
    (lost beacons, truncated captures) and silently corrupt replay state.

    Parameters
    ----------
    trace:
        The trace to check (events are already time-sorted by construction).
    strict:
        When true, raise :class:`TraceFormatError` on the first issue instead
        of returning the list.

    Returns
    -------
    list of str
        One human-readable description per issue (empty when clean).
    """
    issues: List[str] = []
    open_pairs: Dict[Tuple[int, int], float] = {}
    for event in trace:
        pair = event.pair
        if event.up:
            if pair in open_pairs:
                issues.append(
                    f"pair {pair} brought up again at t={event.time:g} "
                    f"(already up since t={open_pairs[pair]:g})")
            else:
                open_pairs[pair] = event.time
        else:
            if pair not in open_pairs:
                issues.append(
                    f"pair {pair} brought down at t={event.time:g} "
                    f"without a matching up event")
            else:
                del open_pairs[pair]
    if strict and issues:
        raise TraceFormatError("invalid trace: " + "; ".join(issues))
    return issues


def remap_node_ids(trace: ContactTrace,
                   mapping: Optional[Dict[int, int]] = None,
                   ) -> Tuple[ContactTrace, Dict[int, int]]:
    """Rewrite node ids onto a compact ``0..n-1`` range.

    Real traces use sparse or offset ids (MAC-derived, 1-based, …); the
    simulator wants dense ids it can use as matrix indices.

    Parameters
    ----------
    trace:
        The trace to remap.
    mapping:
        Optional explicit old-id -> new-id mapping.  By default the sorted
        distinct ids of the trace are numbered ``0..n-1`` (order-preserving).

    Returns
    -------
    (ContactTrace, dict)
        The remapped trace and the old-id -> new-id mapping used.

    Raises
    ------
    TraceFormatError
        If an explicit *mapping* misses an id present in the trace.
    """
    if mapping is None:
        mapping = {old: new for new, old in enumerate(trace.node_ids())}
    events: List[ContactEvent] = []
    for event in trace:
        try:
            a = mapping[event.node_a]
            b = mapping[event.node_b]
        except KeyError as missing:
            raise TraceFormatError(
                f"id mapping has no entry for node {missing.args[0]}") from None
        events.append(ContactEvent(event.time, a, b, event.up))
    return ContactTrace(events), dict(mapping)


def clip_trace(trace: ContactTrace, start: float = 0.0,
               end: Optional[float] = None, *,
               rebase: bool = True) -> ContactTrace:
    """Cut the ``[start, end]`` window out of *trace*.

    Clipping semantics (the *trace ingestion contract*, see DESIGN.md):

    * contacts already open at *start* get a synthetic ``up`` event at the
      window start;
    * events with ``start <= time <= end`` are kept as-is;
    * contacts still open at *end* get a synthetic ``down`` event at the
      window end, so every contact in the result is closed inside it;
    * with ``rebase`` (the default) all times are shifted by ``-start`` so
      the clipped trace starts at ``t = 0`` — what a fresh simulation expects.

    Parameters
    ----------
    trace:
        The source trace.
    start, end:
        Window bounds in trace time; *end* defaults to the trace duration.

    Returns
    -------
    ContactTrace
        The self-contained window.

    Raises
    ------
    ValueError
        If the window is empty or negative.
    """
    if end is None:
        end = trace.duration()
    if start < 0 or end <= start:
        raise ValueError(f"invalid clip window [{start}, {end}]")
    shift = start if rebase else 0.0
    open_pairs: set = set()
    events: List[ContactEvent] = []
    for event in trace:
        if event.time > end:
            break
        if event.time < start:
            # before the window: only roll the open/closed state forward
            if event.up:
                open_pairs.add(event.pair)
            else:
                open_pairs.discard(event.pair)
            continue
        if not events:
            # entering the window: materialise the carried-over contacts
            events.extend(ContactEvent(start - shift, a, b, True)
                          for a, b in sorted(open_pairs))
        if event.up:
            open_pairs.add(event.pair)
        else:
            open_pairs.discard(event.pair)
        events.append(ContactEvent(event.time - shift, event.node_a,
                                   event.node_b, event.up))
    if not events:
        # no event fell inside the window; contacts may still span it
        events.extend(ContactEvent(start - shift, a, b, True)
                      for a, b in sorted(open_pairs))
    # close whatever the window leaves open so the result is self-contained
    events.extend(ContactEvent(end - shift, a, b, False)
                  for a, b in sorted(open_pairs))
    return ContactTrace(events)


# ------------------------------------------------------------------ dispatcher
def _sniff_format(path: Path, text: str) -> str:
    """Decide ONE vs CSV from the extension and the first non-comment line."""
    if path.suffix.lower() == ".csv":
        return "csv"
    for _, line in _event_lines(text):
        if "CONN" in line.upper().split():
            return "one"
        if "," in line:
            return "csv"
        break
    raise TraceFormatError("cannot detect trace format (not ONE, not CSV)",
                           source=str(path))


def detect_format(path) -> str:
    """Sniff whether *path* is a ONE report or a CSV trace.

    ``.csv`` extensions win immediately; otherwise the first non-comment line
    decides (a ``CONN`` token means ONE, a comma means CSV).  Reads at most
    the leading comment block plus one line.

    Raises
    ------
    TraceFormatError
        When neither signature matches.
    """
    path = Path(path)
    if path.suffix.lower() == ".csv":
        return "csv"
    with path.open() as handle:
        for raw in handle:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            return _sniff_format(path, line)
    raise TraceFormatError("cannot detect trace format (not ONE, not CSV)",
                           source=str(path))


def load_trace(path, fmt: str = "auto", *,
               window: Optional[Tuple[float, Optional[float]]] = None,
               remap: bool = False, strict: bool = True) -> ContactTrace:
    """Load, validate and normalise an external trace in one call.

    Parameters
    ----------
    path:
        Trace file (ONE report or CSV, see the module docstring).
    fmt:
        ``"one"``, ``"csv"`` or ``"auto"`` (sniff via :func:`detect_format`).
    window:
        Optional ``(start, end)`` clip window (*end* may be ``None`` for the
        trace duration); applied via :func:`clip_trace` with rebasing, before
        any remapping.
    remap:
        Compact node ids onto ``0..n-1`` via :func:`remap_node_ids`.
    strict:
        Run :func:`validate_trace` and raise on structural issues.

    Returns
    -------
    ContactTrace
        Ready for :class:`~repro.traces.replay.TraceReplayWorld`.
    """
    if fmt not in TRACE_FORMATS:
        raise ValueError(
            f"unknown trace format {fmt!r}; expected one of {TRACE_FORMATS}")
    path = Path(path)
    text = path.read_text()  # read once; sniffing and parsing share it
    if fmt == "auto":
        fmt = _sniff_format(path, text)
    if fmt == "one":
        trace = parse_one_trace(text, source=str(path))
    else:
        trace = parse_csv_trace(text, source=str(path))
    if strict:
        validate_trace(trace, strict=True)
    if window is not None:
        start, end = window
        trace = clip_trace(trace, start, end)
    if remap:
        trace, _ = remap_node_ids(trace)
    return trace
