"""Replaying contact traces.

:class:`TraceReplayWorld` drives connectivity from a
:class:`~repro.traces.contact_trace.ContactTrace` instead of node positions:
at every update the set of active pairs prescribed by the trace replaces the
geometric detection.  Nodes are stationary; everything else (buffers,
transfers, routers, statistics) behaves exactly as in the mobility-driven
world, so any protocol can be evaluated on recorded or synthetic traces.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.metrics.collector import StatsCollector
from repro.mobility.stationary import StationaryMovement
from repro.routing.registry import create_router
from repro.sim.engine import Simulator
from repro.traces.contact_trace import ContactTrace
from repro.world.interface import Interface
from repro.world.node import DTNNode
from repro.world.world import World


class TraceReplayWorld(World):
    """A world whose connectivity follows a contact trace.

    The base class's detector and sorted link-code diffing are bypassed (the
    inherited ``_link_codes`` array stays empty); the trace is the sole
    source of link-up/link-down events.  A trace event is applied at the
    first world update whose time is ``>= `` the event time, so the
    effective contact timing is quantised to ``update_interval``.

    Parameters
    ----------
    simulator, update_interval, stats:
        As for :class:`~repro.world.world.World`.
    trace:
        The contact trace to replay (its events are already time-sorted by
        :class:`~repro.traces.contact_trace.ContactTrace` construction).
    """

    def __init__(self, simulator: Simulator, trace: ContactTrace,
                 update_interval: float = 1.0,
                 stats: Optional[StatsCollector] = None,
                 router_skiplist: bool = True,
                 flat_tick: bool = True,
                 router_soa: bool = True,
                 transfer_engine: bool = True) -> None:
        super().__init__(simulator, update_interval=update_interval,
                         stats=stats, router_skiplist=router_skiplist,
                         flat_tick=flat_tick, router_soa=router_soa,
                         transfer_engine=transfer_engine)
        self.trace = trace
        # pre-sort events once; replay walks them with an index
        self._events = trace.events
        self._event_index = 0
        self._active_pairs: Set[Tuple[int, int]] = set()

    def _refresh_connectivity(self, now: float) -> None:
        """Advance the trace cursor to *now* and diff the prescribed links.

        Replaces the geometric detection phase entirely: trace events up to
        (and including) the current time update the active-pair set, which is
        then diffed against the live connection table.  Events referencing
        node ids that were never registered are skipped.  Link events fire in
        ascending ``(id, id)`` pair order, matching the deterministic
        within-tick ordering contract of the vectorized
        :meth:`~repro.world.world.World._refresh_connectivity` (DESIGN.md).
        """
        while (self._event_index < len(self._events)
               and self._events[self._event_index].time <= now):
            event = self._events[self._event_index]
            self._event_index += 1
            pair = event.pair
            if pair[0] not in self._nodes or pair[1] not in self._nodes:
                continue
            if event.up:
                self._active_pairs.add(pair)
            else:
                self._active_pairs.discard(pair)
        previous = set(self._connections)
        current = set(self._active_pairs)
        down_keys = sorted(previous - current)
        up_keys = sorted(current - previous)
        if down_keys or up_keys:
            self._apply_link_changes(down_keys, up_keys, now)


def build_trace_world(trace: ContactTrace, protocol: str = "epidemic",
                      seed: int = 1, update_interval: float = 1.0,
                      buffer_capacity: float = 1024 * 1024,
                      transmit_range: float = 10.0,
                      transmit_speed: float = 2_000_000 / 8,
                      num_nodes: Optional[int] = None,
                      communities: Optional[Dict[int, int]] = None,
                      router_params: Optional[dict] = None,
                      router_skiplist: bool = True,
                      flat_tick: bool = True,
                      router_soa: bool = True,
                      transfer_engine: bool = True,
                      ) -> Tuple[Simulator, TraceReplayWorld]:
    """Build a simulator + trace-replay world with one router per trace node.

    This is the low-level assembly helper behind trace experiments; prefer
    ``MobilityKind.TRACE`` scenarios via
    :func:`repro.experiments.builder.build_scenario` when you want traffic,
    statistics and backend fan-out wired up too.

    Parameters
    ----------
    trace:
        The contact trace to replay.
    protocol:
        Router name from :mod:`repro.routing.registry`.
    seed:
        Simulator seed (drives the per-node RNG streams and traffic, not the
        trace, which is fixed).
    update_interval:
        World tick in seconds; trace events are applied at the first tick at
        or after their timestamp.
    buffer_capacity:
        Per-node buffer size in bytes.
    transmit_range, transmit_speed:
        Radio parameters: the range is irrelevant to connectivity here (the
        trace decides) but the speed still bounds transfer bandwidth.
    num_nodes:
        Number of nodes to create; defaults to ``max(trace node id) + 1`` so
        node ids can be used as MI-matrix indices.
    communities:
        Optional node -> community mapping (required by the CR protocol).
    router_params:
        Extra keyword arguments for the router factory.
    router_skiplist, flat_tick, router_soa, transfer_engine:
        World tick-structure flags, passed through to
        :class:`TraceReplayWorld` (see :class:`~repro.world.world.World`);
        the defaults match the scenario pipeline.

    Returns
    -------
    (Simulator, TraceReplayWorld)
        Ready to run with ``simulator.run(until=...)``; attach a
        :class:`~repro.net.generators.MessageEventGenerator` for traffic.

    Raises
    ------
    ValueError
        If *num_nodes* is too small for the ids appearing in the trace.
    """
    simulator = Simulator(seed=seed)
    world = TraceReplayWorld(simulator, trace, update_interval=update_interval,
                             router_skiplist=router_skiplist,
                             flat_tick=flat_tick, router_soa=router_soa,
                             transfer_engine=transfer_engine)
    trace_ids = trace.node_ids()
    highest = max(trace_ids) if trace_ids else -1
    count = num_nodes if num_nodes is not None else highest + 1
    if count <= highest:
        raise ValueError(
            f"num_nodes={count} is too small for trace node id {highest}")
    interface = Interface(transmit_range=transmit_range, transmit_speed=transmit_speed)
    params = dict(router_params or {})
    for node_id in range(count):
        movement = StationaryMovement((float(node_id), 0.0))
        node = DTNNode(
            node_id=node_id,
            movement=movement,
            rng=simulator.random.python(f"trace-node-{node_id}"),
            interface=interface,
            buffer_capacity=buffer_capacity,
            community=None if communities is None else communities.get(node_id),
        )
        router = create_router(protocol, **params)
        router.attach(node, world)
        world.add_node(node)
    return simulator, world
