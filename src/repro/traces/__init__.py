"""Contact traces: export, import, replay and synthetic generation."""

from repro.traces.contact_trace import ContactEvent, ContactTrace
from repro.traces.replay import TraceReplayWorld, build_trace_world
from repro.traces.generators import (
    periodic_contact_trace,
    random_waypoint_like_trace,
    community_structured_trace,
    generate_trace,
    TRACE_GENERATORS,
)
from repro.traces.io import (
    TraceFormatError,
    clip_trace,
    detect_format,
    load_csv_trace,
    load_one_trace,
    load_trace,
    parse_csv_trace,
    parse_one_trace,
    remap_node_ids,
    save_csv_trace,
    validate_trace,
)

__all__ = [
    "ContactEvent",
    "ContactTrace",
    "TraceReplayWorld",
    "build_trace_world",
    "periodic_contact_trace",
    "random_waypoint_like_trace",
    "community_structured_trace",
    "generate_trace",
    "TRACE_GENERATORS",
    "TraceFormatError",
    "clip_trace",
    "detect_format",
    "load_csv_trace",
    "load_one_trace",
    "load_trace",
    "parse_csv_trace",
    "parse_one_trace",
    "remap_node_ids",
    "save_csv_trace",
    "validate_trace",
]
