"""Contact traces: export, import, replay and synthetic generation."""

from repro.traces.contact_trace import ContactEvent, ContactTrace
from repro.traces.replay import TraceReplayWorld, build_trace_world
from repro.traces.generators import (
    periodic_contact_trace,
    random_waypoint_like_trace,
    community_structured_trace,
)

__all__ = [
    "ContactEvent",
    "ContactTrace",
    "TraceReplayWorld",
    "build_trace_world",
    "periodic_contact_trace",
    "random_waypoint_like_trace",
    "community_structured_trace",
]
