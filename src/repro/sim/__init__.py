"""Discrete-event simulation engine.

The engine is deliberately small: a binary-heap event queue, a simulation
clock, periodic (self-rescheduling) processes and named, seeded random
streams.  The DTN world (``repro.world``) registers a periodic *world update*
process with the engine; message generation, TTL bookkeeping and report
flushing are ordinary scheduled events.
"""

from repro.sim.events import Event, EventQueue, CallbackEvent
from repro.sim.engine import Simulator, SimulationError
from repro.sim.process import PeriodicProcess
from repro.sim.rng import RandomStreams

__all__ = [
    "Event",
    "EventQueue",
    "CallbackEvent",
    "Simulator",
    "SimulationError",
    "PeriodicProcess",
    "RandomStreams",
]
