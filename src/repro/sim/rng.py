"""Named, seeded random streams.

Every stochastic component of the simulation (mobility, traffic generation,
protocol tie-breaking, ...) draws from its own named stream so that changing
one component's consumption pattern does not perturb the others.  Streams are
derived deterministically from a single master seed with
:class:`numpy.random.SeedSequence` spawning.
"""

from __future__ import annotations

import random
from typing import Dict

import numpy as np


class RandomStreams:
    """A family of independent random generators derived from one seed.

    Parameters
    ----------
    seed:
        Master seed.  Two :class:`RandomStreams` constructed with the same
        seed hand out identical streams for identical names, regardless of
        the order in which the streams are requested.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._numpy_streams: Dict[str, np.random.Generator] = {}
        self._python_streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """The master seed."""
        return self._seed

    def _derive(self, name: str) -> int:
        # Stable 63-bit hash of (seed, name); Python's hash() is salted per
        # process so it cannot be used here.
        h = 1469598103934665603
        for byte in f"{self._seed}:{name}".encode():
            h ^= byte
            h = (h * 1099511628211) & 0x7FFFFFFFFFFFFFFF
        return h

    def numpy(self, name: str) -> np.random.Generator:
        """Return the NumPy generator for stream *name* (created on demand)."""
        gen = self._numpy_streams.get(name)
        if gen is None:
            gen = np.random.default_rng(self._derive(name))
            self._numpy_streams[name] = gen
        return gen

    def python(self, name: str) -> random.Random:
        """Return the stdlib :class:`random.Random` for stream *name*."""
        gen = self._python_streams.get(name)
        if gen is None:
            gen = random.Random(self._derive(name))
            self._python_streams[name] = gen
        return gen

    def spawn(self, name: str) -> "RandomStreams":
        """Return a child :class:`RandomStreams` keyed by *name*.

        Useful for giving every node its own family of streams.
        """
        return RandomStreams(self._derive(name))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(seed={self._seed})"
