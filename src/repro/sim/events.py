"""Event primitives for the discrete-event engine.

Events are ordered by ``(time, priority, sequence)``; the sequence number
breaks ties deterministically in insertion order so simulations are exactly
reproducible for a given seed.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional


class Event:
    """A schedulable simulation event.

    Subclasses override :meth:`fire`.  Events may be cancelled before they
    fire; cancelled events are skipped by the queue (lazy deletion).

    Parameters
    ----------
    time:
        Absolute simulation time at which the event fires.
    priority:
        Secondary ordering key for events scheduled at the same time.  Lower
        priorities fire first.  The world update uses priority ``0`` so that
        connectivity changes are processed before router-level events
        (priority ``10``) scheduled for the same instant.
    """

    __slots__ = ("time", "priority", "_cancelled", "_seq")

    def __init__(self, time: float, priority: int = 10) -> None:
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time!r}")
        self.time = float(time)
        self.priority = int(priority)
        self._cancelled = False
        self._seq: Optional[int] = None

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called on this event."""
        return self._cancelled

    def cancel(self) -> None:
        """Mark the event so the queue discards it instead of firing it."""
        self._cancelled = True

    def fire(self, simulator: "Any") -> None:  # pragma: no cover - abstract
        """Execute the event's effect.  Subclasses must override."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = " cancelled" if self._cancelled else ""
        return f"<{type(self).__name__} t={self.time:.3f} prio={self.priority}{flag}>"


class CallbackEvent(Event):
    """Event that invokes ``callback(simulator)`` when fired."""

    __slots__ = ("callback",)

    def __init__(self, time: float, callback: Callable[[Any], None], priority: int = 10) -> None:
        super().__init__(time, priority)
        self.callback = callback

    def fire(self, simulator: Any) -> None:
        self.callback(simulator)


class EventQueue:
    """Binary-heap priority queue of :class:`Event` objects.

    Supports lazy cancellation: cancelled events stay in the heap but are
    skipped on pop.  ``len(queue)`` counts only live (non-cancelled) events.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, event: Event) -> Event:
        """Insert *event* and return it (for chaining)."""
        seq = next(self._counter)
        event._seq = seq
        heapq.heappush(self._heap, (event.time, event.priority, seq, event))
        self._live += 1
        return event

    def pop(self) -> Event:
        """Remove and return the earliest live event.

        Raises
        ------
        IndexError
            If the queue holds no live events.
        """
        while self._heap:
            _, _, _, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        raise IndexError("pop from empty event queue")

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event, or ``None`` if empty."""
        while self._heap and self._heap[0][3].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0][0]

    def cancel(self, event: Event) -> None:
        """Cancel *event* if it is still pending."""
        if not event.cancelled:
            event.cancel()
            self._live = max(0, self._live - 1)

    def clear(self) -> None:
        """Drop all events."""
        self._heap.clear()
        self._live = 0
