"""The simulation engine.

:class:`Simulator` owns the clock and the event queue, and exposes
``schedule``/``schedule_at``/``run`` primitives.  It knows nothing about DTNs;
the world, traffic generators and reports all hook in through events.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.sim.events import CallbackEvent, Event, EventQueue
from repro.sim.rng import RandomStreams


class SimulationError(RuntimeError):
    """Raised for engine misuse (scheduling in the past, running twice, ...)."""


class Simulator:
    """Discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for the :class:`~repro.sim.rng.RandomStreams` family.
    end_time:
        Default simulation horizon used by :meth:`run` when no explicit
        ``until`` is given.

    Notes
    -----
    The clock only moves forward, to the timestamp of each fired event.
    Events scheduled for the same timestamp fire in (priority, insertion)
    order.
    """

    def __init__(self, seed: int = 0, end_time: float = float("inf")) -> None:
        self._now = 0.0
        self.end_time = float(end_time)
        self.queue = EventQueue()
        self.random = RandomStreams(seed)
        self._running = False
        self._stopped = False
        self._finish_hooks: List[Callable[["Simulator"], None]] = []
        self.fired_events = 0

    def __getstate__(self) -> dict:
        # checkpoint support: a snapshot may be taken between two `run`
        # segments (or, via an event callback, *during* one) — either way
        # the restored simulator must be startable, not "already running"
        state = self.__dict__.copy()
        state["_running"] = False
        state["_stopped"] = False
        return state

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    # ------------------------------------------------------------- scheduling
    def schedule(self, delay: float, callback: Callable[["Simulator"], None],
                 priority: int = 10) -> Event:
        """Schedule *callback* to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.queue.push(CallbackEvent(self._now + delay, callback, priority))

    def schedule_at(self, time: float, callback: Callable[["Simulator"], None],
                    priority: int = 10) -> Event:
        """Schedule *callback* to run at absolute simulation time *time*."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past (t={time}, now={self._now})")
        return self.queue.push(CallbackEvent(time, callback, priority))

    def schedule_event(self, event: Event) -> Event:
        """Schedule a pre-built :class:`Event` subclass instance."""
        if event.time < self._now:
            raise SimulationError(
                f"cannot schedule into the past (t={event.time}, now={self._now})")
        return self.queue.push(event)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event."""
        self.queue.cancel(event)

    def add_finish_hook(self, hook: Callable[["Simulator"], None]) -> None:
        """Register *hook* to be invoked once when the run finishes."""
        self._finish_hooks.append(hook)

    # ------------------------------------------------------------------- run
    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    def run(self, until: Optional[float] = None) -> float:
        """Run until the event queue drains or the horizon is reached.

        Parameters
        ----------
        until:
            Absolute stop time.  Defaults to ``end_time``.  Events scheduled
            exactly at the horizon still fire; later events remain queued.

        Returns
        -------
        float
            The simulation time when the run stopped.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        horizon = self.end_time if until is None else float(until)
        if horizon < self._now:
            raise SimulationError(f"horizon {horizon} is before current time {self._now}")
        self._running = True
        self._stopped = False
        try:
            while self.queue and not self._stopped:
                next_time = self.queue.peek_time()
                if next_time is None or next_time > horizon:
                    break
                event = self.queue.pop()
                self._now = event.time
                event.fire(self)
                self.fired_events += 1
            self._now = max(self._now, min(horizon, self.end_time)
                            if horizon != float("inf") else self._now)
        finally:
            self._running = False
        for hook in self._finish_hooks:
            hook(self)
        self._finish_hooks.clear()
        return self._now

    def step(self) -> bool:
        """Fire exactly one event.  Returns ``False`` if the queue is empty."""
        if not self.queue:
            return False
        event = self.queue.pop()
        self._now = event.time
        event.fire(self)
        self.fired_events += 1
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Simulator(now={self._now:.2f}, pending={len(self.queue)}, "
                f"fired={self.fired_events})")
