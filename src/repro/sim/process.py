"""Self-rescheduling periodic processes.

A :class:`PeriodicProcess` fires a callback every ``interval`` seconds until
the simulation horizon, an explicit stop, or an optional repetition limit.
The world update loop and periodic report snapshots are built on this.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.engine import Simulator
from repro.sim.events import Event


class PeriodicProcess:
    """Invoke ``callback(simulator)`` every *interval* seconds.

    Parameters
    ----------
    simulator:
        The engine to schedule on.
    interval:
        Period in seconds; must be positive.
    callback:
        Called with the simulator each period.
    start:
        Absolute time of the first invocation (defaults to ``now + interval``).
    priority:
        Event priority (see :class:`repro.sim.events.Event`).
    max_firings:
        Optional cap on the number of invocations.
    """

    def __init__(self, simulator: Simulator, interval: float,
                 callback: Callable[[Simulator], None],
                 start: Optional[float] = None, priority: int = 10,
                 max_firings: Optional[int] = None) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.simulator = simulator
        self.interval = float(interval)
        self.callback = callback
        self.priority = priority
        self.max_firings = max_firings
        self.firings = 0
        self._stopped = False
        self._pending: Optional[Event] = None
        first = simulator.now + self.interval if start is None else float(start)
        self._pending = simulator.schedule_at(first, self._fire, priority=priority)

    @property
    def stopped(self) -> bool:
        """Whether the process has been stopped or exhausted its firings."""
        return self._stopped

    def stop(self) -> None:
        """Stop the process; the pending occurrence (if any) is cancelled."""
        self._stopped = True
        if self._pending is not None:
            self.simulator.cancel(self._pending)
            self._pending = None

    def _fire(self, simulator: Simulator) -> None:
        if self._stopped:
            return
        self.firings += 1
        self.callback(simulator)
        if self._stopped:
            return
        if self.max_firings is not None and self.firings >= self.max_firings:
            self._stopped = True
            self._pending = None
            return
        self._pending = simulator.schedule_at(
            simulator.now + self.interval, self._fire, priority=self.priority)
