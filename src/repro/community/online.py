"""Online (incremental) community detection.

The :class:`OnlineCommunityTracker` turns the batch detection algorithms of
this package into something a running simulation can afford to consult on
every routing decision.  It accumulates an aggregate contact graph *edge by
edge* as contacts are observed and re-runs detection lazily, mirroring the
version-keyed invalidation contract of
:class:`~repro.contacts.memd.MemdCache`:

* every observed contact bumps :attr:`~OnlineCommunityTracker.edge_version`;
* a query serves the cached :class:`~repro.community.assignment.CommunityAssignment`
  while the edge version is unchanged, **or** while the cached detection is
  younger than the *staleness* budget — detection only re-runs when the graph
  has actually changed *and* the budget is spent;
* a :meth:`~OnlineCommunityTracker.flush` at any point produces exactly the
  assignment a from-scratch detection over the accumulated graph would
  produce (the property-based parity tests pin this).

Detection cost is measured per run and reported through an optional
:class:`~repro.metrics.collector.StatsCollector`, so the CR protocol's
detection overhead shows up next to its control-plane overhead.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Set, Tuple

from repro.community.assignment import CommunityAssignment
from repro.community.graph import graph_from_edge_weights
from repro.community.kclique import k_clique_communities
from repro.community.newman import newman_modularity_communities

#: detection algorithms the tracker can run on flush
DETECTION_ALGORITHMS = ("kclique", "newman")


def assignment_from_groups(groups: List[Set[int]],
                           num_nodes: int) -> CommunityAssignment:
    """Partition ``0..num_nodes-1`` from (possibly partial) detected groups.

    Detected groups get community ids ``0..k-1`` in the detection's
    deterministic order (decreasing size, then smallest member); overlap is
    resolved in favour of the first group, as in
    :meth:`~repro.community.assignment.CommunityAssignment.from_groups`.
    Every node no group claims becomes a singleton community, labelled
    ``k, k+1, ...`` in node order — routing-wise a singleton means "no known
    community structure for this node yet".
    """
    if num_nodes < 1:
        raise ValueError("need at least one node")
    mapping: Dict[int, int] = {}
    for community, members in enumerate(groups):
        for node in members:
            if 0 <= int(node) < num_nodes:
                mapping.setdefault(int(node), community)
    next_id = len(groups)
    for node in range(num_nodes):
        if node not in mapping:
            mapping[node] = next_id
            next_id += 1
    return CommunityAssignment(mapping)


def count_moved_nodes(old: CommunityAssignment, new: CommunityAssignment,
                      num_nodes: int) -> int:
    """Nodes that changed community between two assignments.

    Labels are ordinal (by size), so comparing them directly would count
    every node downstream of an unrelated new group as moved.  Instead each
    new community is greedily matched to the old community it overlaps
    most (largest new communities first, each old community used once);
    a node counts as moved iff its old community is not the one its new
    community matched.  One node migrating between two 10-member
    communities therefore counts as exactly 1, not 20.
    """
    old_of = old.as_dict()
    used: Set[int] = set()
    moved = 0
    for _, members in sorted(new.communities().items()):
        counts: Dict[int, int] = {}
        for node in members:
            label = old_of[node]
            counts[label] = counts.get(label, 0) + 1
        matched: Optional[int] = None
        best = 0
        for label in sorted(counts):
            if label in used:
                continue
            if counts[label] > best:
                best = counts[label]
                matched = label
        if matched is not None:
            used.add(matched)
        moved += sum(1 for node in members if old_of[node] != matched)
    return moved


class OnlineCommunityTracker:
    """Incrementally aggregated contact graph + lazily re-run detection.

    Parameters
    ----------
    num_nodes:
        Number of nodes in the world (assignments always cover
        ``0..num_nodes-1``).
    algorithm:
        ``"kclique"`` (Palla percolation) or ``"newman"`` (greedy
        modularity).
    staleness:
        Minimum seconds between detections (the staleness budget).  ``0``
        re-detects on every edge-version change — the most accurate and most
        expensive setting.
    min_weight:
        Minimum accumulated edge weight for an edge to participate in
        detection (filters one-off brushes between communities).
    k:
        Clique size for ``kclique``.
    max_communities:
        Community-count cap for ``newman`` (0 = stop at the modularity peak).
    stats:
        Optional collector; every detection reports its wall-clock cost and
        how many nodes changed community.

    Attributes
    ----------
    edge_version:
        Bumped on every :meth:`observe` (the cache key).
    detections:
        Number of detection runs so far.
    detection_seconds:
        Total wall-clock seconds spent inside detection.
    """

    def __init__(self, num_nodes: int, algorithm: str = "newman",
                 staleness: float = 300.0, min_weight: float = 1.0,
                 k: int = 3, max_communities: int = 0, stats=None) -> None:
        if num_nodes < 1:
            raise ValueError("need at least one node")
        if algorithm not in DETECTION_ALGORITHMS:
            raise ValueError(
                f"unknown detection algorithm {algorithm!r}; known: "
                f"{', '.join(DETECTION_ALGORITHMS)}")
        if staleness < 0:
            raise ValueError("staleness must be non-negative")
        self.num_nodes = int(num_nodes)
        self.algorithm = algorithm
        self.staleness = float(staleness)
        self.min_weight = float(min_weight)
        self.k = int(k)
        self.max_communities = int(max_communities)
        self.stats = stats
        self.edge_version = 0
        self.detections = 0
        self.detection_seconds = 0.0
        #: bumped only when a detection actually changed the node -> community
        #: mapping; consumers key membership masks / MEMD invalidation on it
        #: (same "effective changes only" contract as the MI matrix version)
        self.assignment_revision = 0
        self._weights: Dict[Tuple[int, int], float] = {}
        self._detected_version: Optional[int] = None
        self._detect_time = float("-inf")
        self._assignment = assignment_from_groups([], self.num_nodes)

    # ------------------------------------------------------------- observation
    def observe(self, a: int, b: int, weight: float = 1.0) -> None:
        """Fold one observed contact between nodes *a* and *b* into the graph."""
        a, b = int(a), int(b)
        if a == b:
            raise ValueError("a node cannot contact itself")
        key = (a, b) if a < b else (b, a)
        self._weights[key] = self._weights.get(key, 0.0) + float(weight)
        self.edge_version += 1

    def edge_count(self) -> int:
        """Number of distinct node pairs observed so far."""
        return len(self._weights)

    def edge_weights(self) -> Dict[Tuple[int, int], float]:
        """Copy of the accumulated canonical edge-weight map."""
        return dict(self._weights)

    # --------------------------------------------------------------- detection
    def detect_from_scratch(self) -> CommunityAssignment:
        """Run the configured detection over the accumulated graph, uncached.

        This is the semantic oracle the staleness machinery must agree with:
        :meth:`flush` stores exactly this result.
        """
        graph = graph_from_edge_weights(self._weights,
                                        nodes=range(self.num_nodes))
        if self.algorithm == "kclique":
            groups = k_clique_communities(graph, k=self.k,
                                          min_weight=self.min_weight)
        else:
            if self.min_weight > 0:
                drop = [(a, b) for (a, b), w in self._weights.items()
                        if w < self.min_weight]
                graph.remove_edges_from(drop)
            groups = newman_modularity_communities(
                graph, max_communities=self.max_communities)
        return assignment_from_groups([set(g) for g in groups], self.num_nodes)

    def flush(self, now: float) -> CommunityAssignment:
        """Force a detection at time *now* and cache the result."""
        started = time.perf_counter()
        assignment = self.detect_from_scratch()
        elapsed = time.perf_counter() - started
        # reported churn = nodes that actually migrated (overlap-matched,
        # see count_moved_nodes); the revision — which drives mask rebuilds
        # and cache invalidation — bumps on *any* structural change, since
        # a community gaining or losing a member changes consumers' masks
        old_map = self._assignment.communities()
        new_map = assignment.communities()
        structural_change = any(
            new_map[assignment.community_of(node)]
            != old_map[self._assignment.community_of(node)]
            for node in range(self.num_nodes))
        changed = (count_moved_nodes(self._assignment, assignment,
                                     self.num_nodes)
                   if structural_change else 0)
        if structural_change:
            self.assignment_revision += 1
        self._assignment = assignment
        self._detected_version = self.edge_version
        self._detect_time = float(now)
        self.detections += 1
        self.detection_seconds += elapsed
        if self.stats is not None:
            self.stats.community_detection(seconds=elapsed,
                                           reassigned=changed)
        return assignment

    def assignment(self, now: float) -> CommunityAssignment:
        """The current assignment at time *now* (detecting if due).

        Detection re-runs when the edge version advanced since the cached
        detection **and** the staleness budget is spent (or no detection has
        run yet) — the :class:`~repro.contacts.memd.MemdCache` contract with
        the staleness test inverted: there staleness forces extra recomputes,
        here it *rate-limits* them.
        """
        if self._detected_version is None:
            return self.flush(now)
        if (self.edge_version != self._detected_version
                and now - self._detect_time >= self.staleness):
            return self.flush(now)
        return self._assignment

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"OnlineCommunityTracker({self.algorithm}, "
                f"nodes={self.num_nodes}, edges={len(self._weights)}, "
                f"detections={self.detections})")
