"""Community structure: assignment, contact graphs and detection algorithms.

The CR protocol assumes a predefined community partition (the paper's
footnote 2).  This package provides that predefined assignment plus the three
construction approaches the paper cites as related work so users can derive
communities from observed contacts instead:

* k-clique percolation (Palla et al., the paper's [21]),
* Newman modularity / weighted network analysis (the paper's [22]),
* Clauset's local community detection (the paper's [23]).
"""

from repro.community.assignment import CommunityAssignment
from repro.community.graph import (
    aggregate_contact_graph,
    contact_edge_arrays,
    contact_graph_from_history,
    contact_graph_from_history_vectorized,
    graph_from_edge_weights,
)
from repro.community.kclique import k_clique_communities
from repro.community.newman import newman_modularity_communities, modularity
from repro.community.local import local_community
from repro.community.online import OnlineCommunityTracker, assignment_from_groups
from repro.community.provider import (
    COMMUNITY_MODES,
    CommunityProvider,
    DetectedCommunityProvider,
    OracleCommunityProvider,
    community_provider_for,
)

__all__ = [
    "CommunityAssignment",
    "contact_graph_from_history",
    "contact_graph_from_history_vectorized",
    "contact_edge_arrays",
    "graph_from_edge_weights",
    "aggregate_contact_graph",
    "k_clique_communities",
    "newman_modularity_communities",
    "modularity",
    "local_community",
    "OnlineCommunityTracker",
    "assignment_from_groups",
    "COMMUNITY_MODES",
    "CommunityProvider",
    "OracleCommunityProvider",
    "DetectedCommunityProvider",
    "community_provider_for",
]
