"""Local community detection (Clauset, the paper's [23]).

Grows a community around a seed node by greedily adding the neighbouring
vertex that maximises the *local modularity* R = B_in / B, where B is the
number of edges with at least one endpoint on the community boundary and B_in
those with both endpoints inside the community.  This is the distributed-
friendly construction the paper points to for future online use of CR.
"""

from __future__ import annotations

from typing import Optional, Set

import networkx as nx


def _local_modularity(graph: nx.Graph, community: Set[int]) -> float:
    boundary = {node for node in community
                if any(neigh not in community for neigh in graph.neighbors(node))}
    if not boundary:
        return 1.0
    b_total = 0
    b_in = 0
    for node in boundary:
        for neigh in graph.neighbors(node):
            b_total += 1
            if neigh in community:
                b_in += 1
    if b_total == 0:
        return 1.0
    return b_in / b_total


def local_community(graph: nx.Graph, seed: int, max_size: Optional[int] = None,
                    min_gain: float = 0.0) -> Set[int]:
    """Grow a community around *seed* by greedy local-modularity maximisation.

    Parameters
    ----------
    graph:
        Undirected contact graph.
    seed:
        The node to grow the community around.
    max_size:
        Optional cap on the community size.
    min_gain:
        Minimum local-modularity improvement required to keep growing.

    Returns
    -------
    set
        The detected community (always contains *seed*).
    """
    if seed not in graph:
        raise KeyError(f"seed node {seed} is not in the graph")
    community: Set[int] = {seed}
    if max_size is not None and max_size < 1:
        raise ValueError("max_size must be positive")
    current = _local_modularity(graph, community)
    while True:
        if max_size is not None and len(community) >= max_size:
            break
        frontier = {neigh for node in community for neigh in graph.neighbors(node)}
        frontier -= community
        if not frontier:
            break
        best_node = None
        best_score = current
        for candidate in sorted(frontier):
            score = _local_modularity(graph, community | {candidate})
            if score > best_score + min_gain:
                best_score = score
                best_node = candidate
        if best_node is None:
            break
        community.add(best_node)
        current = best_score
    return community
