"""k-clique percolation community detection (Palla et al., the paper's [21]).

Two k-cliques are *adjacent* if they share k-1 nodes; a community is the
union of all k-cliques reachable from each other through adjacency.  The
implementation enumerates maximal cliques (Bron-Kerbosch via networkx), breaks
them into k-cliques implicitly by connecting maximal cliques that overlap in
at least k-1 nodes, and returns the percolation components.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Set

import networkx as nx


def k_clique_communities(graph: nx.Graph, k: int = 3,
                         min_weight: float = 0.0) -> List[Set[int]]:
    """Find k-clique percolation communities of *graph*.

    Parameters
    ----------
    graph:
        Undirected contact graph; edges with ``weight`` below *min_weight*
        are ignored.
    k:
        Clique size (k >= 2).  ``k=3`` is the usual choice for contact graphs.
    min_weight:
        Minimum edge weight for an edge to participate.

    Returns
    -------
    list of set
        Communities as (possibly overlapping) sets of node ids, sorted by
        decreasing size then smallest member for determinism.
    """
    if k < 2:
        raise ValueError("k must be at least 2")
    if min_weight > 0:
        filtered = nx.Graph()
        filtered.add_nodes_from(graph.nodes)
        filtered.add_edges_from(
            (u, v, d) for u, v, d in graph.edges(data=True)
            if d.get("weight", 1.0) >= min_weight)
        graph = filtered

    # all maximal cliques of size >= k
    cliques = [frozenset(c) for c in nx.find_cliques(graph) if len(c) >= k]
    if not cliques:
        return []

    # percolation graph: cliques are adjacent if they share >= k-1 nodes
    percolation = nx.Graph()
    percolation.add_nodes_from(range(len(cliques)))
    for i, j in combinations(range(len(cliques)), 2):
        if len(cliques[i] & cliques[j]) >= k - 1:
            percolation.add_edge(i, j)

    communities: List[Set[int]] = []
    for component in nx.connected_components(percolation):
        members: Set[int] = set()
        for index in component:
            members |= cliques[index]
        communities.append(members)
    communities.sort(key=lambda c: (-len(c), min(c)))
    return communities
