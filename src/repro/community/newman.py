"""Modularity-based community detection (Newman's weighted network analysis,
the paper's [22]).

A greedy agglomerative scheme: start with every node in its own community and
repeatedly merge the pair of communities giving the largest modularity gain
until no merge improves modularity.  This is the classic CNM/WNA approach and
is more than adequate for contact graphs with a few hundred nodes.
"""

from __future__ import annotations

from typing import Dict, List, Set

import networkx as nx


def modularity(graph: nx.Graph, communities: List[Set[int]]) -> float:
    """Weighted modularity Q of a partition of *graph*.

    ``Q = sum_c (e_c / m - (a_c / 2m)^2)`` with ``e_c`` the intra-community
    weight, ``a_c`` the total degree-weight of community ``c`` and ``m`` the
    total edge weight.
    """
    m = graph.size(weight="weight")
    if m == 0:
        return 0.0
    membership: Dict[int, int] = {}
    for index, members in enumerate(communities):
        for node in members:
            membership[node] = index
    intra = [0.0] * len(communities)
    degree = [0.0] * len(communities)
    for u, v, data in graph.edges(data=True):
        w = data.get("weight", 1.0)
        cu, cv = membership.get(u), membership.get(v)
        if cu is None or cv is None:
            continue
        if cu == cv:
            intra[cu] += w
        degree[cu] += w
        degree[cv] += w
    q = 0.0
    for c in range(len(communities)):
        q += intra[c] / m - (degree[c] / (2.0 * m)) ** 2
    return q


def newman_modularity_communities(graph: nx.Graph,
                                  max_communities: int = 0) -> List[Set[int]]:
    """Greedy (CNM) modularity maximisation.

    Starting from singleton communities, repeatedly merge the connected pair
    with the largest modularity *gain* until no merge improves modularity.
    The gain of merging communities ``i`` and ``j`` is maintained
    incrementally from the inter-community weight ``e_ij`` and the community
    degree-weights ``a_i``:

    ``dQ = e_ij / m - a_i * a_j / (2 m^2)``

    which equals ``modularity(after) - modularity(before)`` exactly, so this
    selects the same merges as recomputing full modularity per candidate —
    in O(merges * inter-community-pairs) instead of
    O(merges * pairs * edges).  Exact gain *ties* (common on small-integer
    contact weights) are resolved lexicographically by community label;
    the previous full-recompute implementation broke them by Python-set
    iteration order, so tied inputs may partition differently than under
    pre-PR4 releases (neither choice is more optimal — greedy CNM makes no
    guarantee past the chosen merge).  The online tracker re-runs detection
    inside the simulation loop, which is why the from-scratch cost matters.

    Parameters
    ----------
    graph:
        Weighted undirected contact graph.
    max_communities:
        If positive, keep merging (even past the modularity peak) until at
        most this many communities remain — useful when the CR protocol needs
        a fixed community count.  Only connected communities ever merge.

    Returns
    -------
    list of set
        Disjoint communities covering every node of the graph, sorted by
        decreasing size then smallest member.
    """
    nodes = list(graph.nodes)
    if not nodes:
        return []
    m = graph.size(weight="weight")
    if m == 0:
        members = [{node} for node in nodes]
        members.sort(key=lambda c: (-len(c), min(c)))
        return members

    label_of = {node: label for label, node in enumerate(nodes)}
    members: Dict[int, Set[int]] = {label: {node} for node, label in label_of.items()}
    degree: Dict[int, float] = {label: 0.0 for label in members}
    # inter-community weights, symmetric dict-of-dicts (no self entries)
    links: Dict[int, Dict[int, float]] = {label: {} for label in members}
    for u, v, data in graph.edges(data=True):
        w = data.get("weight", 1.0)
        lu, lv = label_of[u], label_of[v]
        degree[lu] += w
        degree[lv] += w
        if lu != lv:
            links[lu][lv] = links[lu].get(lv, 0.0) + w
            links[lv][lu] = links[lv].get(lu, 0.0) + w

    two_m_sq = 2.0 * m * m
    while len(members) > 1:
        best_gain = float("-inf")
        best_pair = None
        for i in links:
            di = degree[i]
            for j, weight in links[i].items():
                if j <= i:
                    continue
                gain = weight / m - di * degree[j] / two_m_sq
                if gain > best_gain or (gain == best_gain
                                        and best_pair is not None
                                        and (i, j) < best_pair):
                    best_gain = gain
                    best_pair = (i, j)
        if best_pair is None:
            break  # remaining communities are disconnected
        force_merge = max_communities > 0 and len(members) > max_communities
        if best_gain <= 1e-12 and not force_merge:
            break
        i, j = best_pair
        members[i] |= members.pop(j)
        degree[i] += degree.pop(j)
        j_links = links.pop(j)
        i_links = links[i]
        i_links.pop(j, None)
        for k, weight in j_links.items():
            if k == i:
                continue
            i_links[k] = i_links.get(k, 0.0) + weight
            k_links = links[k]
            k_links.pop(j, None)
            k_links[i] = i_links[k]
        if max_communities > 0 and len(members) <= max_communities:
            break
    communities = list(members.values())
    communities.sort(key=lambda c: (-len(c), min(c)))
    return communities
