"""Modularity-based community detection (Newman's weighted network analysis,
the paper's [22]).

A greedy agglomerative scheme: start with every node in its own community and
repeatedly merge the pair of communities giving the largest modularity gain
until no merge improves modularity.  This is the classic CNM/WNA approach and
is more than adequate for contact graphs with a few hundred nodes.
"""

from __future__ import annotations

from typing import Dict, List, Set

import networkx as nx


def modularity(graph: nx.Graph, communities: List[Set[int]]) -> float:
    """Weighted modularity Q of a partition of *graph*.

    ``Q = sum_c (e_c / m - (a_c / 2m)^2)`` with ``e_c`` the intra-community
    weight, ``a_c`` the total degree-weight of community ``c`` and ``m`` the
    total edge weight.
    """
    m = graph.size(weight="weight")
    if m == 0:
        return 0.0
    membership: Dict[int, int] = {}
    for index, members in enumerate(communities):
        for node in members:
            membership[node] = index
    intra = [0.0] * len(communities)
    degree = [0.0] * len(communities)
    for u, v, data in graph.edges(data=True):
        w = data.get("weight", 1.0)
        cu, cv = membership.get(u), membership.get(v)
        if cu is None or cv is None:
            continue
        if cu == cv:
            intra[cu] += w
        degree[cu] += w
        degree[cv] += w
    q = 0.0
    for c in range(len(communities)):
        q += intra[c] / m - (degree[c] / (2.0 * m)) ** 2
    return q


def newman_modularity_communities(graph: nx.Graph,
                                  max_communities: int = 0) -> List[Set[int]]:
    """Greedy modularity maximisation.

    Parameters
    ----------
    graph:
        Weighted undirected contact graph.
    max_communities:
        If positive, keep merging (even past the modularity peak) until at
        most this many communities remain — useful when the CR protocol needs
        a fixed community count.

    Returns
    -------
    list of set
        Disjoint communities covering every node of the graph, sorted by
        decreasing size then smallest member.
    """
    nodes = list(graph.nodes)
    if not nodes:
        return []
    communities: List[Set[int]] = [{node} for node in nodes]

    def merged(partition: List[Set[int]], i: int, j: int) -> List[Set[int]]:
        out = [set(c) for k, c in enumerate(partition) if k not in (i, j)]
        out.append(set(partition[i]) | set(partition[j]))
        return out

    current_q = modularity(graph, communities)
    improved = True
    while improved and len(communities) > 1:
        improved = False
        best_q = current_q
        best_pair = None
        # only consider merging communities connected by at least one edge
        membership = {node: idx for idx, comm in enumerate(communities) for node in comm}
        candidate_pairs = set()
        for u, v in graph.edges:
            cu, cv = membership[u], membership[v]
            if cu != cv:
                candidate_pairs.add((min(cu, cv), max(cu, cv)))
        for i, j in candidate_pairs:
            q = modularity(graph, merged(communities, i, j))
            if q > best_q + 1e-12:
                best_q = q
                best_pair = (i, j)
        force_merge = max_communities > 0 and len(communities) > max_communities
        if best_pair is None and force_merge and candidate_pairs:
            # merge the least-bad pair to honour the community-count cap
            best_pair = min(
                candidate_pairs,
                key=lambda pair: -modularity(graph, merged(communities, *pair)))
            best_q = modularity(graph, merged(communities, *best_pair))
        if best_pair is not None:
            communities = merged(communities, *best_pair)
            current_q = best_q
            improved = True
        if max_communities > 0 and len(communities) <= max_communities:
            break
    communities.sort(key=lambda c: (-len(c), min(c)))
    return communities
