"""Community assignments.

A :class:`CommunityAssignment` is an explicit node -> community mapping with
the handful of queries the CR protocol and its tests need.  It can be built
directly (predefined communities, as the paper does), from a detection
algorithm's output (a list of member sets), or round-robin for synthetic
scenarios.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence


class CommunityAssignment:
    """An explicit partition of node ids into communities."""

    def __init__(self, mapping: Mapping[int, int]) -> None:
        if not mapping:
            raise ValueError("community assignment cannot be empty")
        self._community_of: Dict[int, int] = {int(k): int(v) for k, v in mapping.items()}
        self._members: Dict[int, List[int]] = {}
        for node, community in sorted(self._community_of.items()):
            self._members.setdefault(community, []).append(node)

    # ------------------------------------------------------------ constructors
    @classmethod
    def round_robin(cls, num_nodes: int, num_communities: int) -> "CommunityAssignment":
        """Assign ``num_nodes`` nodes to communities cyclically."""
        if num_nodes < 1 or num_communities < 1:
            raise ValueError("need at least one node and one community")
        return cls({node: node % num_communities for node in range(num_nodes)})

    @classmethod
    def from_groups(cls, groups: Sequence[Iterable[int]]) -> "CommunityAssignment":
        """Build from a list of member collections (one per community).

        Overlapping membership (possible with k-clique percolation) is
        resolved in favour of the first group listing the node, matching the
        paper's single-community-per-node simplification.
        """
        mapping: Dict[int, int] = {}
        for community, members in enumerate(groups):
            for node in members:
                mapping.setdefault(int(node), community)
        return cls(mapping)

    # ----------------------------------------------------------------- queries
    def community_of(self, node_id: int) -> int:
        """Community of *node_id* (raises ``KeyError`` if unknown)."""
        return self._community_of[int(node_id)]

    def members(self, community_id: int) -> List[int]:
        """Members of *community_id* (empty list if unknown)."""
        return list(self._members.get(int(community_id), []))

    def communities(self) -> Dict[int, List[int]]:
        """Mapping community id -> member list."""
        return {cid: list(members) for cid, members in self._members.items()}

    def nodes(self) -> List[int]:
        """All assigned node ids."""
        return sorted(self._community_of)

    @property
    def num_communities(self) -> int:
        """Number of distinct communities."""
        return len(self._members)

    def same_community(self, a: int, b: int) -> bool:
        """Whether nodes *a* and *b* share a community."""
        return self.community_of(a) == self.community_of(b)

    def as_dict(self) -> Dict[int, int]:
        """Plain node -> community dictionary (copy)."""
        return dict(self._community_of)

    def __len__(self) -> int:
        return len(self._community_of)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CommunityAssignment({len(self._community_of)} nodes, "
                f"{self.num_communities} communities)")
