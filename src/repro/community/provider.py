"""The ``CommunityProvider`` boundary between detection and routing.

The CR protocol (:class:`~repro.core.cr.CommunityRouter`) needs four
answers: *which community am I in*, *which community is node x in*, *who are
the members of community c*, and *has any of that changed since I last built
a membership mask*.  A :class:`CommunityProvider` is the object that answers
them; CR never talks to a detection algorithm directly.

Two implementations:

* :class:`OracleCommunityProvider` — the paper's footnote-2 setting: the
  predefined, static ``node.community`` labels the scenario builder assigned.
  Its :attr:`~CommunityProvider.version` never changes, so CR's cached
  membership masks stay valid forever — this is byte-for-byte the pre-PR4
  behaviour.
* :class:`DetectedCommunityProvider` — communities come from an
  :class:`~repro.community.online.OnlineCommunityTracker` fed by the world's
  own contacts.  The provider's version follows the tracker's
  ``assignment_revision`` (which bumps only when a detection actually moved a
  node), so consumers rebuild masks and invalidate MEMD caches exactly when
  membership really changed.

All CR routers of one world share one provider (and therefore one tracker):
:func:`community_provider_for` keeps the shared instances in the world's
``services`` registry, keyed by the full detection configuration.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.community.online import OnlineCommunityTracker

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.world.world import World

#: provider modes CR accepts (``oracle`` + one per detection algorithm)
COMMUNITY_MODES = ("oracle", "kclique", "newman")


class CommunityProvider:
    """Interface CR consumes; see the module docstring."""

    #: which of :data:`COMMUNITY_MODES` this provider implements
    mode: str = "oracle"

    @property
    def version(self) -> int:
        """Bumped whenever the node -> community mapping may have changed."""
        raise NotImplementedError

    def community_of(self, node_id: int, now: float) -> int:
        """Community id of *node_id* at time *now*."""
        raise NotImplementedError

    def communities(self, now: float) -> Dict[int, List[int]]:
        """Mapping community id -> sorted member node ids at time *now*."""
        raise NotImplementedError

    def members(self, community_id: int, now: float) -> List[int]:
        """Members of *community_id* at time *now* (empty when unknown)."""
        return self.communities(now).get(int(community_id), [])

    def observe_contact(self, a: int, b: int, now: float) -> None:
        """Fold one observed contact into the provider (no-op for oracle)."""


class OracleCommunityProvider(CommunityProvider):
    """Static, predefined communities read once from the world's nodes."""

    mode = "oracle"

    def __init__(self, world: "World") -> None:
        communities: Dict[int, List[int]] = {}
        community_of: Dict[int, int] = {}
        for node in world.nodes:
            if node.community is None:
                raise RuntimeError(
                    f"node {node.node_id} has no community; community mode "
                    "'oracle' requires a full predefined assignment")
            communities.setdefault(int(node.community), []).append(node.node_id)
            community_of[node.node_id] = int(node.community)
        self._communities = communities
        self._community_of = community_of

    @property
    def version(self) -> int:
        return 0

    def community_of(self, node_id: int, now: float) -> int:
        return self._community_of[int(node_id)]

    def communities(self, now: float) -> Dict[int, List[int]]:
        return self._communities


class DetectedCommunityProvider(CommunityProvider):
    """Communities detected online from observed contacts.

    Parameters
    ----------
    tracker:
        The shared :class:`~repro.community.online.OnlineCommunityTracker`.
    """

    def __init__(self, tracker: OnlineCommunityTracker) -> None:
        self.tracker = tracker
        self.mode = tracker.algorithm
        # materialised community -> members map, rebuilt only when a
        # detection actually moved a node; CR queries communities() once
        # per routing decision (ENEC), so per-query copies would dominate
        self._communities_cache: Optional[Dict[int, List[int]]] = None
        self._cache_revision = -1

    @property
    def version(self) -> int:
        return self.tracker.assignment_revision

    def community_of(self, node_id: int, now: float) -> int:
        return self.tracker.assignment(now).community_of(int(node_id))

    def communities(self, now: float) -> Dict[int, List[int]]:
        """Shared, revision-cached view — treat as read-only (as with
        :meth:`OracleCommunityProvider.communities`)."""
        assignment = self.tracker.assignment(now)
        revision = self.tracker.assignment_revision
        if self._communities_cache is None or revision != self._cache_revision:
            self._communities_cache = assignment.communities()
            self._cache_revision = revision
        return self._communities_cache

    # members() is inherited: the base implementation reads through the
    # revision-cached communities() view above

    def observe_contact(self, a: int, b: int, now: float) -> None:
        self.tracker.observe(a, b)


def community_provider_for(world: "World", mode: str, *,
                           staleness: float = 300.0, min_weight: float = 1.0,
                           k: int = 3,
                           max_communities: int = 0) -> CommunityProvider:
    """The world-shared provider for *mode* (created on first request).

    Providers live in the world's ``services`` registry so every CR router of
    one world consults (and, in detected modes, feeds) the same instance.
    The key includes the detection configuration: two routers asking for
    different budgets get different trackers — scenarios built by the
    experiment builder always agree, since all routers share one
    ``router_params`` dict.
    """
    if mode not in COMMUNITY_MODES:
        raise ValueError(f"unknown community mode {mode!r}; known: "
                         f"{', '.join(COMMUNITY_MODES)}")
    key: Tuple = ("community-provider", mode, float(staleness),
                  float(min_weight), int(k), int(max_communities))
    provider = world.services.get(key)
    if provider is None:
        if mode == "oracle":
            provider = OracleCommunityProvider(world)
        else:
            tracker = OnlineCommunityTracker(
                world.num_nodes, algorithm=mode, staleness=staleness,
                min_weight=min_weight, k=k, max_communities=max_communities,
                stats=world.stats)
            provider = DetectedCommunityProvider(tracker)
        world.services[key] = provider
    return provider
