"""Contact graphs for community detection.

Community detection works on an *aggregate contact graph*: nodes are DTN
nodes, edge weights summarise how strongly two nodes are connected over the
observation window (number of contacts or total contact duration).  Three
builders are provided: a per-edge reference from a node's own contact history
(local view), a vectorized equivalent that reduces over the PR3 zero-copy
array views (:meth:`~repro.contacts.history.ContactHistory.interval_arrays`
and :meth:`~repro.contacts.history.ContactHistory.contact_count_arrays`)
instead of looping peer by peer, and one from the collector's global contact
records (oracle view used by the examples and tests).

The reference and vectorized history builders produce *identical* graphs —
same nodes, same edges, bit-identical ``weight``/``mean_interval`` attributes
(the vectorized mean uses a left-to-right ``cumsum``, matching the reference
implementation's sequential ``sum()`` exactly).  The paired
``community_detection`` benchmark in :mod:`repro.bench` pins this.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

import networkx as nx
import numpy as np

from repro.contacts.history import ContactHistory
from repro.metrics.events import ContactRecord


def contact_graph_from_history(histories: Iterable[ContactHistory],
                               min_contacts: int = 1) -> nx.Graph:
    """Build an aggregate contact graph from per-node contact histories.

    Parameters
    ----------
    histories:
        One :class:`~repro.contacts.history.ContactHistory` per node.
    min_contacts:
        Minimum number of recorded contacts for an edge to appear.

    Returns
    -------
    networkx.Graph
        Undirected graph with ``weight`` = number of contacts and
        ``mean_interval`` = average recorded meeting interval (``None`` when
        fewer than two contacts were recorded).
    """
    graph = nx.Graph()
    for history in histories:
        graph.add_node(history.owner_id)
        for peer in history.peers():
            count = history.contact_count(peer)
            if count < min_contacts:
                continue
            mean = history.mean_interval(peer)
            if graph.has_edge(history.owner_id, peer):
                # keep the larger of the two (histories should agree, but
                # sliding windows may have trimmed one side differently)
                existing = graph[history.owner_id][peer]
                existing["weight"] = max(existing["weight"], count)
                if mean is not None:
                    if existing.get("mean_interval") is None:
                        existing["mean_interval"] = mean
                    else:
                        existing["mean_interval"] = min(existing["mean_interval"], mean)
            else:
                graph.add_edge(history.owner_id, peer, weight=count,
                               mean_interval=mean)
    return graph


def contact_edge_arrays(histories: Iterable[ContactHistory],
                        min_contacts: int = 1,
                        ) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                                   np.ndarray, np.ndarray]:
    """Vectorized edge aggregation over per-node contact histories.

    Consumes the zero-copy array views of every history (one
    :meth:`~repro.contacts.history.ContactHistory.interval_arrays` /
    :meth:`~repro.contacts.history.ContactHistory.contact_count_arrays` pair
    per node) and reduces them to canonical undirected edges in a handful of
    NumPy operations: per-row mean intervals via a chronological ``cumsum``
    (bit-identical to the reference's sequential ``sum()``), endpoint
    canonicalisation by packing ``(lo, hi)`` pairs into int64 codes, and
    duplicate resolution (the two endpoints of an edge each report it) with
    ``np.maximum.at`` / ``np.fmin.at`` scatter reductions — the same
    max-weight / min-mean tie-break the per-edge reference applies.

    Returns
    -------
    (owners, lo, hi, weights, means)
        ``owners``: node ids of the histories (isolated nodes included);
        ``lo``/``hi``: canonical edge endpoints (``lo < hi``);
        ``weights``: contact counts per edge (int64);
        ``means``: mean recorded meeting interval per edge (NaN when no
        interval was recorded on either side).
    """
    owner_list = []
    peer_parts = []
    owner_parts = []
    count_parts = []
    mean_parts = []
    for history in histories:
        owner_list.append(history.owner_id)
        peer_ids, contact_counts = history.contact_count_arrays()
        if not len(peer_ids):
            continue
        if getattr(history, "interval_arrays", None) is not None:
            _, intervals, interval_counts, _ = history.interval_arrays()
            # sequential left-to-right sums per row, matching sum(list)
            # bit for bit
            cums = np.cumsum(intervals, axis=1)
            has = interval_counts > 0
            sums = np.where(
                has, cums[np.arange(len(interval_counts)),
                          np.maximum(interval_counts, 1) - 1], 0.0)
            means = np.divide(sums, interval_counts,
                              out=np.full(len(interval_counts), np.nan),
                              where=has)
        else:
            # histories without array views (ContactHistoryReference) go
            # through the scalar API; mean_interval sums sequentially, so
            # the result is bit-identical either way
            means = np.fromiter(
                (mean if (mean := history.mean_interval(int(peer)))
                 is not None else np.nan for peer in peer_ids),
                dtype=float, count=len(peer_ids))
        keep = contact_counts >= min_contacts
        if not keep.all():
            peer_ids = peer_ids[keep]
            contact_counts = contact_counts[keep]
            means = means[keep]
        if not len(peer_ids):
            continue
        owner_parts.append(np.full(len(peer_ids), history.owner_id,
                                   dtype=np.int64))
        peer_parts.append(np.asarray(peer_ids, dtype=np.int64))
        count_parts.append(np.asarray(contact_counts, dtype=np.int64))
        mean_parts.append(means)
    owners = np.asarray(owner_list, dtype=np.int64)
    if not owner_parts:
        empty = np.empty(0, dtype=np.int64)
        return owners, empty, empty.copy(), empty.copy(), np.empty(0)
    a = np.concatenate(owner_parts)
    b = np.concatenate(peer_parts)
    counts = np.concatenate(count_parts)
    means = np.concatenate(mean_parts)
    lo = np.minimum(a, b)
    hi = np.maximum(a, b)
    codes = (lo << 32) | hi
    unique_codes, inverse = np.unique(codes, return_inverse=True)
    weights = np.zeros(len(unique_codes), dtype=np.int64)
    np.maximum.at(weights, inverse, counts)
    edge_means = np.full(len(unique_codes), np.nan)
    np.fmin.at(edge_means, inverse, means)  # fmin ignores NaN sides
    return (owners, (unique_codes >> 32).astype(np.int64),
            (unique_codes & 0xFFFFFFFF).astype(np.int64), weights, edge_means)


def graph_from_edge_arrays(owners: np.ndarray, lo: np.ndarray,
                           hi: np.ndarray, weights: np.ndarray,
                           means: np.ndarray) -> nx.Graph:
    """Materialise a :func:`contact_edge_arrays` result as a graph.

    The online pipeline aggregates to arrays every time it needs fresh edge
    state but only pays for this graph construction when a detection
    actually runs.
    """
    graph = nx.Graph()
    graph.add_nodes_from(int(owner) for owner in owners)
    for index in range(len(lo)):
        mean = float(means[index])
        graph.add_edge(int(lo[index]), int(hi[index]),
                       weight=int(weights[index]),
                       mean_interval=None if np.isnan(mean) else mean)
    return graph


def contact_graph_from_history_vectorized(histories: Iterable[ContactHistory],
                                          min_contacts: int = 1) -> nx.Graph:
    """Vectorized equivalent of :func:`contact_graph_from_history`.

    Same node set, same edges, bit-identical ``weight`` and
    ``mean_interval`` attributes; only the aggregation strategy differs (see
    :func:`contact_edge_arrays`).
    """
    return graph_from_edge_arrays(*contact_edge_arrays(
        histories, min_contacts=min_contacts))


def graph_from_edge_weights(weights: Dict[Tuple[int, int], float],
                            nodes: Optional[Iterable[int]] = None) -> nx.Graph:
    """Build a weighted graph from a canonical ``(lo, hi) -> weight`` map.

    This is the :class:`~repro.community.online.OnlineCommunityTracker`'s
    flush path: the tracker accumulates edge weights incrementally and only
    materialises a graph when a detection actually runs.
    """
    graph = nx.Graph()
    if nodes is not None:
        graph.add_nodes_from(nodes)
    graph.add_weighted_edges_from(
        (a, b, weight) for (a, b), weight in weights.items())
    return graph


def aggregate_contact_graph(records: Iterable[ContactRecord],
                            num_nodes: Optional[int] = None,
                            use_duration: bool = False) -> nx.Graph:
    """Build an aggregate contact graph from the collector's contact records.

    Parameters
    ----------
    records:
        Closed contacts recorded by the statistics collector.
    num_nodes:
        If given, nodes ``0..num_nodes-1`` are added even when isolated.
    use_duration:
        Weight edges by total contact duration instead of contact count.
    """
    graph = nx.Graph()
    if num_nodes is not None:
        graph.add_nodes_from(range(num_nodes))
    weights: Dict[tuple, float] = {}
    for record in records:
        key = (record.node_a, record.node_b)
        amount = (record.duration or 0.0) if use_duration else 1.0
        weights[key] = weights.get(key, 0.0) + amount
    for (a, b), weight in weights.items():
        graph.add_edge(a, b, weight=weight)
    return graph
