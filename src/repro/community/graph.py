"""Contact graphs for community detection.

Community detection works on an *aggregate contact graph*: nodes are DTN
nodes, edge weights summarise how strongly two nodes are connected over the
observation window (number of contacts or total contact duration).  Two
builders are provided: one from a node's own contact history (local view) and
one from the collector's global contact records (oracle view used by the
examples and tests).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import networkx as nx

from repro.contacts.history import ContactHistory
from repro.metrics.events import ContactRecord


def contact_graph_from_history(histories: Iterable[ContactHistory],
                               min_contacts: int = 1) -> nx.Graph:
    """Build an aggregate contact graph from per-node contact histories.

    Parameters
    ----------
    histories:
        One :class:`~repro.contacts.history.ContactHistory` per node.
    min_contacts:
        Minimum number of recorded contacts for an edge to appear.

    Returns
    -------
    networkx.Graph
        Undirected graph with ``weight`` = number of contacts and
        ``mean_interval`` = average recorded meeting interval (``None`` when
        fewer than two contacts were recorded).
    """
    graph = nx.Graph()
    for history in histories:
        graph.add_node(history.owner_id)
        for peer in history.peers():
            count = history.contact_count(peer)
            if count < min_contacts:
                continue
            mean = history.mean_interval(peer)
            if graph.has_edge(history.owner_id, peer):
                # keep the larger of the two (histories should agree, but
                # sliding windows may have trimmed one side differently)
                existing = graph[history.owner_id][peer]
                existing["weight"] = max(existing["weight"], count)
                if mean is not None:
                    if existing.get("mean_interval") is None:
                        existing["mean_interval"] = mean
                    else:
                        existing["mean_interval"] = min(existing["mean_interval"], mean)
            else:
                graph.add_edge(history.owner_id, peer, weight=count,
                               mean_interval=mean)
    return graph


def aggregate_contact_graph(records: Iterable[ContactRecord],
                            num_nodes: Optional[int] = None,
                            use_duration: bool = False) -> nx.Graph:
    """Build an aggregate contact graph from the collector's contact records.

    Parameters
    ----------
    records:
        Closed contacts recorded by the statistics collector.
    num_nodes:
        If given, nodes ``0..num_nodes-1`` are added even when isolated.
    use_duration:
        Weight edges by total contact duration instead of contact count.
    """
    graph = nx.Graph()
    if num_nodes is not None:
        graph.add_nodes_from(range(num_nodes))
    weights: Dict[tuple, float] = {}
    for record in records:
        key = (record.node_a, record.node_b)
        amount = (record.duration or 0.0) if use_duration else 1.0
        weights[key] = weights.get(key, 0.0) + amount
    for (a, b), weight in weights.items():
        graph.add_edge(a, b, weight=weight)
    return graph
