"""Spray-and-Wait (Spyropoulos, Psounis & Raghavendra, 2005).

Binary spray phase: a node holding :math:`M_k > 1` replicas hands half of
them to any encountered node without the message.  Wait phase: with a single
replica left, the node waits to meet the destination and delivers directly.
One of the four baselines in the paper's Figure 2.
"""

from __future__ import annotations

from repro.routing.base import Router


class SprayAndWaitRouter(Router):
    """Quota-based spraying with a passive wait phase.

    Parameters
    ----------
    binary:
        If ``True`` (default, and what the paper's comparison uses) half of
        the replicas are handed over per contact; if ``False`` ("vanilla"
        spray) a single replica is handed over per contact.
    """

    name = "spray-and-wait"

    #: gated tier: on_update consumes the one-decision-per-meeting gates of
    #: every live contact whatever the buffer holds, so an empty update is a
    #: no-op only on event-free ticks with all gates consumed (see
    #: Router.supports_batch_update).  Note SprayAndFocusRouter overrides
    #: on_update and does *not* redeclare the flag, so it falls back to the
    #: exact per-router loop automatically.
    supports_batch_update = True
    batch_update_gated = True

    def __init__(self, binary: bool = True) -> None:
        super().__init__()
        self.binary = bool(binary)

    def copies_to_pass(self, copies: int) -> int:
        """How many replicas to hand to the peer given the current quota."""
        if copies <= 1:
            return 0
        return copies // 2 if self.binary else 1

    def on_update(self, now: float) -> None:
        for connection in self.connections():
            self.send_deliverable(connection)
            if not self.is_first_evaluation(connection):
                continue
            peer = connection.other(self.node)
            for message in self.buffer.messages():
                if message.destination == peer.node_id:
                    continue
                passed = self.copies_to_pass(message.copies)
                if passed < 1:
                    continue  # wait phase
                if self.peer_has(connection, message.message_id):
                    continue
                if self.has_pending_transfer(message.message_id):
                    continue  # quota already committed to another contact
                self.send(connection, message, copies=passed, forwarding=False)
