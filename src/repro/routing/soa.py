"""Struct-of-arrays router state: the vectorized routers-phase sweep.

PR6's idle-router skip-list bounded *how many* routers run per tick, but the
proof that a router may sleep was still evaluated by per-router Python — an
O(nodes) scan per tick that dominates the routers phase at 100k nodes where
~83% of routers are asleep.  :class:`RouterStateStore` moves the state that
scan reads into columnar NumPy arrays (one row per node, registration
order), so the whole wake predicate becomes a handful of vectorized masks:

``awake``
    exactly the skip-list predicate of ``World._update_routers``: a router
    wakes on a link event this tick, when it opts out of skipping
    (``Router.idle_skip_safe`` False), when it holds messages and has live
    contacts or a TTL due, or when it is the endpoint of a connection with
    queued transfers.
``noop``
    awake rows whose ``update`` call is *provably* without observable
    effect, resolved in batch (counted as ``routers_batched``) instead of
    executed.  The proof rests on the :attr:`~repro.routing.base.Router.
    supports_batch_update` contract: an empty-buffer update of a batchable
    router is a no-op — unconditionally for the stateless tier (direct,
    epidemic), and on event-free ticks once the per-contact gates are
    consumed for the gated tier (first-contact, spray-and-wait).  A freshly
    (re)attached gated router may still hold unconsumed gates, so its row
    carries a ``fresh`` bit that forces Python execution until its first
    real update.

Everything not provably a no-op runs through the exact per-router
``Router.update`` in ascending row (= registration) order, which is the
serial loop's iteration order — so the event stream, and therefore every
report byte, is identical to the reference.  Mid-sweep wakes are honoured
the same way the serial loop honours them: when an executed router enqueues
the first transfer onto a previously idle connection (announced through
``Connection.activity_sink``), any *later* row among the endpoints is woken
— classified as batched when its no-op proof holds, otherwise merged into
the execution order through a min-heap.

Synchronisation seams (no polling, no per-tick rebuild):

* buffers push a dirty-row mark on every mutation
  (``MessageBuffer._mirror_store``); dirty rows are re-read once at sweep
  start, which is exact because buffers are static between the transfers
  phase and the routers phase;
* live-connection counts are maintained incrementally by the world's
  ``_establish_link`` / ``_teardown_link``;
* router-derived columns (skip safety, batchability tier) refresh on
  ``Router.attach`` through ``World.router_rebound``.

The store pickles with the world and is covered by the resume-equality
contract (see ``repro.checkpoint``): its arrays, dirty set and row maps are
plain state, and the buffer mirrors survive the round trip because they are
ordinary attributes on the buffer objects.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Tuple, TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.world.node import DTNNode
    from repro.world.world import World

__all__ = ["RouterStateStore"]

#: initial rows per column; doubled on demand
_INITIAL_CAPACITY = 64


class RouterStateStore:
    """Columnar per-router state driving the vectorized routers phase.

    One row per registered node, in registration order — the same order the
    serial router loop iterates, which is what makes ascending-row execution
    of the non-batchable remainder bit-exact.
    """

    def __init__(self) -> None:
        #: node id -> row index
        self._row: Dict[int, int] = {}
        #: row index -> node (same objects the world owns)
        self._nodes: List["DTNNode"] = []
        capacity = _INITIAL_CAPACITY
        #: buffered replica count (mirrors ``len(node.buffer)``)
        self._count = np.zeros(capacity, dtype=np.int64)
        #: buffered bytes (mirrors ``node.buffer.occupancy``)
        self._occupancy = np.zeros(capacity, dtype=np.int64)
        #: earliest TTL deadline of any buffered replica (inf when empty)
        self._expiry = np.full(capacity, np.inf)
        #: live connection count (maintained by the world's link bookkeeping)
        self._conns = np.zeros(capacity, dtype=np.int32)
        #: Router.idle_skip_safe
        self._idle_safe = np.ones(capacity, dtype=bool)
        #: Router.supports_batch_update
        self._batchable = np.zeros(capacity, dtype=bool)
        #: Router.batch_update_gated (meaningful only where batchable)
        self._gated = np.zeros(capacity, dtype=bool)
        #: row has never executed a Python update since its router was
        #: (re)attached: per-contact gates may be unconsumed, so the gated
        #: no-op proof does not apply yet
        self._fresh = np.zeros(capacity, dtype=bool)
        #: rows whose buffer mutated since the last sweep refresh
        self._dirty: set = set()

    def __len__(self) -> int:
        return len(self._nodes)

    # ---------------------------------------------------------- registration
    def _grow(self) -> None:
        capacity = max(2 * len(self._count), _INITIAL_CAPACITY)
        for name in ("_count", "_occupancy", "_expiry", "_conns",
                     "_idle_safe", "_batchable", "_gated", "_fresh"):
            old = getattr(self, name)
            grown = np.zeros(capacity, dtype=old.dtype)
            if name == "_expiry":
                grown[:] = np.inf
            elif name == "_idle_safe":
                grown[:] = True
            grown[:len(old)] = old
            setattr(self, name, grown)

    def register(self, node: "DTNNode") -> int:
        """Add *node* as the next row; bind its buffer's dirty-mark mirror."""
        node_id = node.node_id
        if node_id in self._row:
            raise ValueError(f"node {node_id} is already registered")
        row = len(self._nodes)
        if row == len(self._count):
            self._grow()
        self._nodes.append(node)
        self._row[node_id] = row
        buffer = node.buffer
        buffer._mirror_store = self
        buffer._mirror_row = row
        stored = len(buffer)
        self._count[row] = stored
        self._occupancy[row] = buffer.occupancy
        self._expiry[row] = buffer.next_expiry() if stored else np.inf
        self._conns[row] = len(node.connections)
        self._refresh_router(row, node.router)
        return row

    def _refresh_router(self, row: int, router) -> None:
        self._idle_safe[row] = bool(router.idle_skip_safe)
        self._batchable[row] = bool(
            getattr(router, "supports_batch_update", False))
        self._gated[row] = bool(getattr(router, "batch_update_gated", False))
        self._fresh[row] = True

    def rebind(self, node: "DTNNode") -> None:
        """Refresh router-derived columns after a router (re)attach.

        No-op for unregistered nodes: the scenario builders attach routers
        *before* ``World.add_node`` registers the row.
        """
        row = self._row.get(node.node_id)
        if row is not None:
            self._refresh_router(row, node.router)

    # -------------------------------------------------------------- sync seams
    def mark_dirty(self, row: int) -> None:
        """Buffer mutation hook: re-read this row's buffer columns next sweep."""
        self._dirty.add(row)

    def link_delta(self, id_a: int, id_b: int, delta: int) -> None:
        """Apply a live-connection count change to both endpoints."""
        row = self._row.get(id_a)
        if row is not None:
            self._conns[row] += delta
        row = self._row.get(id_b)
        if row is not None:
            self._conns[row] += delta

    def _refresh_dirty(self) -> None:
        if not self._dirty:
            return
        nodes = self._nodes
        count = self._count
        occupancy = self._occupancy
        expiry = self._expiry
        for row in self._dirty:
            buffer = nodes[row].buffer
            stored = len(buffer)
            count[row] = stored
            occupancy[row] = buffer.occupancy
            expiry[row] = buffer.next_expiry() if stored else np.inf
        self._dirty.clear()

    # -------------------------------------------------------------- the sweep
    def sweep(self, world: "World", now: float) -> Tuple[int, int, int]:
        """Run one routers phase; returns ``(ticked, batched, skipped)``.

        ``ticked`` rows executed a real ``Router.update``; ``batched`` rows
        were awake but resolved as provable no-ops by the masks; ``skipped``
        rows slept under the exact PR6 skip predicate.  The three always sum
        to the node count.
        """
        n = len(self._nodes)
        if n == 0:
            return 0, 0, 0
        self._refresh_dirty()
        count = self._count[:n]
        expiry = self._expiry[:n]
        conns = self._conns[:n]
        idle_safe = self._idle_safe[:n]
        batchable = self._batchable[:n]
        gated = self._gated[:n]
        fresh = self._fresh[:n]
        empty = count == 0

        event = np.zeros(n, dtype=bool)
        if world._router_events:
            row_of = self._row
            for node_id in world._router_events:
                row = row_of.get(node_id)
                if row is not None:
                    event[row] = True

        # endpoints of connections with queued transfers: the serial
        # predicate's defensive wake for empty-buffer routers.  Every such
        # connection is registered in the active set or announced itself
        # through activity_sink (the flat tick's invariant), so this is the
        # complete set — stale registrations are filtered exactly like the
        # transfers phase filters them.
        queued = np.zeros(n, dtype=bool)
        newly = world._newly_active
        engine = world.transfer_engine
        if engine is not None:
            # the engine's rows replace _active_transfers (which stays
            # empty); every row is up with a non-empty queue by invariant
            if len(engine):
                row_of = self._row
                for connection in engine.connections():
                    row = row_of.get(connection.node_a.node_id)
                    if row is not None:
                        queued[row] = True
                    row = row_of.get(connection.node_b.node_id)
                    if row is not None:
                        queued[row] = True
            active = {}
        else:
            active = world._active_transfers
        if active or newly:
            row_of = self._row
            for seq, connection in active.items():
                if (connection.established_seq == seq and connection.is_up
                        and connection.has_queued):
                    row = row_of.get(connection.node_a.node_id)
                    if row is not None:
                        queued[row] = True
                    row = row_of.get(connection.node_b.node_id)
                    if row is not None:
                        queued[row] = True
            for connection in newly:
                if connection.is_up and connection.has_queued:
                    row = row_of.get(connection.node_a.node_id)
                    if row is not None:
                        queued[row] = True
                    row = row_of.get(connection.node_b.node_id)
                    if row is not None:
                        queued[row] = True

        awake = (event | ~idle_safe
                 | (~empty & ((conns > 0) | (expiry <= now)))
                 | (empty & queued))
        # the no-op proof: stateless batchable rows need only an empty
        # buffer; gated rows additionally need an event-free tick and
        # consumed gates (~fresh)
        noop = awake & empty & batchable & (~gated | (~event & ~fresh))
        batched = int(np.count_nonzero(noop))
        run_rows = np.flatnonzero(awake & ~noop).tolist()

        nodes = self._nodes
        row_of = self._row
        ticked = 0
        late: List[int] = []
        run_idx = 0
        run_len = len(run_rows)
        seen_newly = len(newly)
        while run_idx < run_len or late:
            if late and (run_idx >= run_len or late[0] < run_rows[run_idx]):
                row = heapq.heappop(late)
            else:
                row = run_rows[run_idx]
                run_idx += 1
            node = nodes[row]
            assert node.router is not None
            node.router.update(now)
            fresh[row] = False
            ticked += 1
            if len(newly) != seen_newly:
                # this router enqueued the first transfer(s) onto previously
                # idle connection(s): later rows among the endpoints wake,
                # exactly as the serial loop would observe when it reaches
                # them (earlier rows were already decided and stay decided)
                for connection in newly[seen_newly:]:
                    for endpoint in (connection.node_a, connection.node_b):
                        other = row_of.get(endpoint.node_id)
                        if other is None or other <= row or awake[other]:
                            continue
                        if count[other] != 0:
                            # loaded rows wake on contacts/TTL only; a
                            # loaded endpoint of a live link is awake
                            # already, so this is purely defensive
                            continue
                        awake[other] = True
                        if batchable[other] and (
                                not gated[other] or not fresh[other]):
                            batched += 1
                        else:
                            heapq.heappush(late, other)
                seen_newly = len(newly)
        return ticked, batched, n - ticked - batched
