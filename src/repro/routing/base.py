"""Router base class.

A :class:`Router` instance is attached to exactly one node.  The world calls
four entry points on it:

* :meth:`create_message` — a new application message originates here,
* :meth:`changed_connection` — a link to a peer came up or went down,
* :meth:`update` — one world tick (TTL expiry + protocol-specific sending),
* :meth:`receive_message` / :meth:`transfer_completed` /
  :meth:`transfer_aborted` — transfer plumbing.

Subclasses implement protocol behaviour by overriding the ``on_*`` hooks, and
use :meth:`send` to enqueue transfers on live connections.  Peer routers can
be inspected directly (summary-vector exchange is simulated as direct reads,
as in the ONE simulator), but must never be mutated except through the
documented exchange methods.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from repro.net.buffer import BufferFullError
from repro.net.connection import Connection, Transfer
from repro.net.message import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.world.node import DTNNode
    from repro.world.world import World


class Router:
    """Base router: buffering, TTL expiry and transfer bookkeeping."""

    #: protocol name used by the registry, reports and benchmarks
    name = "base"

    #: Whether the world's idle-router skip-list may skip this router's
    #: ``update`` tick while it is provably idle (see DESIGN.md, "The idle
    #: router contract").  A router is skip-safe when its ``on_update`` has
    #: no observable effect in the idle states the world skips: an empty
    #: buffer (with or without contacts, after the first post-link-up tick
    #: has run), or a non-empty buffer with no contacts and no TTL due.
    #: Routers that mutate per-tick state unconditionally in ``on_update``
    #: (PRoPHET's predictability aging is the one in-tree case — repeated
    #: ``gamma ** dt`` products are not float-associative with one catch-up
    #: ``gamma ** elapsed``) must set this ``False``; they are then ticked
    #: every update regardless of the skip-list setting.
    idle_skip_safe = True

    #: Whether the struct-of-arrays routers sweep (``routing/soa.py``) may
    #: resolve this router's awake-but-empty ticks in batch instead of
    #: calling :meth:`update`.  Declaring ``True`` asserts: *an ``update``
    #: call with an empty buffer has no observable effect* — no stats, no
    #: sends, no per-contact state changes — so skipping it is invisible.
    #: Two tiers, selected by :attr:`batch_update_gated`:
    #:
    #: * stateless (``batch_update_gated = False``): the assertion holds
    #:   unconditionally, link events included (direct, epidemic — their
    #:   ``on_update`` early-outs before touching per-contact state);
    #: * gated (``batch_update_gated = True``): the empty update still
    #:   consumes per-contact evaluation gates (:meth:`is_first_evaluation`),
    #:   so it is a no-op only on event-free ticks after the router has run
    #:   at least once since each contact came up (first-contact,
    #:   spray-and-wait — the world executes every event tick, which
    #:   consumes the gates of all live contacts).
    #:
    #: Deliberately **not inherited**: a subclass must redeclare it (see
    #: ``__init_subclass__``), because any override of ``on_update`` /
    #: ``update`` can invalidate the no-op proof.  Mirrors how
    #: ``MovementEngine`` gates ``supports_batch_advance``.
    supports_batch_update = False
    #: see :attr:`supports_batch_update`; consulted only where that is True
    batch_update_gated = False

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        if "supports_batch_update" not in cls.__dict__:
            # batchability is a per-class proof, not an inheritable trait:
            # a subclass overriding on_update (e.g. a test double logging
            # tick times) silently falls back to the exact per-router loop
            cls.supports_batch_update = False

    def __init__(self) -> None:
        self.node: Optional["DTNNode"] = None
        self.world: Optional["World"] = None
        #: message ids delivered to this node (it was the final destination)
        self._delivered_here: Dict[str, float] = {}
        #: per-contact sets of message ids already evaluated on a connection
        #: (one routing decision per message per contact, as in Algorithm 1/2
        #: of the paper, which runs "when ui meets uj")
        self._considered_per_contact: Dict[tuple, set] = {}
        #: contacts on which this router has already run its per-meeting
        #: routing evaluation (see :meth:`is_first_evaluation`)
        self._evaluated_contacts: set = set()

    # ------------------------------------------------------------------ wiring
    def attach(self, node: "DTNNode", world: "World") -> None:
        """Bind this router to *node* inside *world*."""
        if self.node is not None:
            raise RuntimeError("router is already attached to a node")
        self.node = node
        self.world = world
        node.set_router(self)
        self.on_attach()
        # keep the SoA router columns honest across mid-run router swaps:
        # worlds refresh the node's row (no-op before registration, and for
        # test doubles that stand in for a world)
        rebound = getattr(world, "router_rebound", None)
        if rebound is not None:
            rebound(node)

    def on_attach(self) -> None:
        """Hook invoked after :meth:`attach`; override to size per-network state."""

    # ------------------------------------------------------------- conveniences
    @property
    def now(self) -> float:
        """Current simulation time."""
        assert self.world is not None
        return self.world.simulator.now

    @property
    def stats(self):
        """The run's statistics collector."""
        assert self.world is not None
        return self.world.stats

    @property
    def buffer(self):
        """This node's message buffer."""
        assert self.node is not None
        return self.node.buffer

    @property
    def node_id(self) -> int:
        """This node's id."""
        assert self.node is not None
        return self.node.node_id

    def connections(self) -> List[Connection]:
        """Active connections of this node."""
        assert self.node is not None
        return list(self.node.connections.values())

    def peer_router(self, connection: Connection) -> "Router":
        """The router at the other end of *connection*."""
        assert self.node is not None
        peer = connection.other(self.node)
        assert peer.router is not None
        return peer.router

    # ----------------------------------------------------------------- queries
    def has_message(self, message_id: str) -> bool:
        """Whether a replica of *message_id* is currently buffered here."""
        return message_id in self.buffer

    def delivered_here(self, message_id: str) -> bool:
        """Whether this node (as destination) already received *message_id*."""
        return message_id in self._delivered_here

    def messages(self) -> List[Message]:
        """Snapshot of buffered replicas."""
        return self.buffer.messages()

    def peer_has(self, connection: Connection, message_id: str) -> bool:
        """Whether the peer already holds or already received *message_id*.

        This models the summary-vector exchange that real DTN protocols
        perform at contact time.
        """
        peer = self.peer_router(connection)
        return peer.has_message(message_id) or peer.delivered_here(message_id)

    def has_pending_transfer(self, message_id: str) -> bool:
        """Whether *message_id* is queued outbound on any of this node's links.

        Quota-splitting protocols check this before computing a new split so
        that two simultaneous contacts cannot both be handed replicas counted
        from the same (not yet decremented) quota.
        """
        assert self.node is not None
        return any(conn.is_transferring(message_id)
                   for conn in self.node.connections.values())

    def considered_on(self, connection: Connection) -> set:
        """The set of message ids already evaluated during this contact.

        The set is cleared automatically when the contact ends.  Flooding
        routers (epidemic, MaxProp) use it so a long-lived contact keeps
        replicating only *new* messages instead of rescanning the whole buffer
        every tick.
        """
        return self._considered_per_contact.setdefault(connection.key, set())

    def is_first_evaluation(self, connection: Connection) -> bool:
        """``True`` exactly once per contact, at the first tick after link-up.

        The paper's routing algorithms run "when ``u_i`` meets ``u_j``": the
        buffer is evaluated once per meeting, and messages created or received
        later in the same contact wait for the next meeting event.  Quota and
        utility protocols (Spray-and-*, EBR, EER, CR) gate their per-message
        decisions on this; deliverable messages are still sent every tick.
        """
        key = connection.key
        if key in self._evaluated_contacts:
            return False
        self._evaluated_contacts.add(key)
        return True

    # ----------------------------------------------------------- message entry
    def create_message(self, message: Message) -> bool:
        """Accept a locally generated message into the buffer."""
        if message.destination == self.node_id:
            # degenerate case: message for ourselves counts as delivered
            self._delivered_here[message.message_id] = self.now
            return True
        return self._store(message, source="origin")

    def receive_message(self, message: Message, from_node: "DTNNode") -> bool:
        """Handle a replica arriving over a completed transfer.

        Returns ``True`` if the replica was accepted (delivered or buffered).
        """
        if message.destination == self.node_id:
            first = message.message_id not in self._delivered_here
            if first:
                self._delivered_here[message.message_id] = self.now
                self.on_delivered(message, from_node)
            return True
        if self.has_message(message.message_id) or self.delivered_here(message.message_id):
            return False
        if not self._store(message, source="relay"):
            return False
        self.on_received(message, from_node)
        return True

    def _store(self, message: Message, source: str) -> bool:
        try:
            evicted = self.buffer.add(message)
        except BufferFullError:
            self.stats.message_dropped(message, self.node_id, self.now, "buffer")
            return False
        for victim in evicted:
            self.stats.message_dropped(victim, self.node_id, self.now, "buffer")
        return True

    # --------------------------------------------------------------- transfers
    def send(self, connection: Connection, message: Message, copies: int = 1,
             forwarding: bool = False) -> Optional[Transfer]:
        """Enqueue a transfer of *message* to the peer on *connection*.

        Silently refuses (returns ``None``) when the link is down or the
        message is already queued toward that peer, so protocol code can call
        it opportunistically every tick.
        """
        assert self.node is not None
        if not connection.is_up:
            return None
        peer = connection.other(self.node)
        if connection.is_transferring(message.message_id, peer.node_id):
            return None
        transfer = Transfer(message, self.node, peer, copies=copies,
                            forwarding=forwarding)
        connection.enqueue(transfer)
        self.stats.transfer_started()
        return transfer

    def transfer_completed(self, transfer: Transfer) -> None:
        """Sender-side bookkeeping after the peer accepted the replica."""
        message = self.buffer.get(transfer.message.message_id)
        if message is None:
            return
        if transfer.receiver.node_id == message.destination or transfer.forwarding:
            # the replica has left this node entirely
            self.buffer.remove(message.message_id)
        else:
            message.copies = max(1, message.copies - transfer.copies)
        self.on_transfer_completed(transfer)

    def transfer_aborted(self, transfer: Transfer) -> None:
        """Sender-side notification that a queued transfer was cut short."""
        self.on_transfer_aborted(transfer)

    # ------------------------------------------------------------------- ticks
    def update(self, now: float) -> None:
        """One world tick: expire TTLs, then run the protocol hook."""
        for expired in self.buffer.drop_expired(now):
            self.stats.message_dropped(expired, self.node_id, now, "expired")
        self.on_update(now)

    def changed_connection(self, connection: Connection, up: bool) -> None:
        """Link state change notification from the world."""
        assert self.node is not None
        peer = connection.other(self.node)
        if up:
            self._considered_per_contact.pop(connection.key, None)
            self._evaluated_contacts.discard(connection.key)
            self.on_contact_up(connection, peer)
        else:
            self.on_contact_down(connection, peer)
            self._considered_per_contact.pop(connection.key, None)
            self._evaluated_contacts.discard(connection.key)

    def batch_changed_connections(self, events: List[tuple]) -> None:
        """One tick's worth of link changes for this node, in one call.

        *events* is a list of ``(connection, up)`` pairs: this node's link
        tear-downs first, then its link establishments, each group in
        ascending ``(id, id)`` pair order (the world's sorted link diff).
        The default implementation dispatches to :meth:`changed_connection`
        per event; routers with per-contact setup costs can override this to
        amortize work across the batch.
        """
        for connection, up in events:
            self.changed_connection(connection, up)

    # -------------------------------------------------------------- common moves
    def send_deliverable(self, connection: Connection) -> int:
        """Send every buffered message whose destination is the connected peer.

        All protocols do this first; returns the number of transfers queued.
        Candidates come from the buffer's per-destination index, so a tick
        with no deliverable messages costs O(1) instead of a buffer scan.
        """
        assert self.node is not None
        peer = connection.other(self.node)
        candidates = self.buffer.messages_for_destination(peer.node_id)
        if not candidates:
            return 0
        peer_router = self.peer_router(connection)
        sent = 0
        for message in candidates:
            if peer_router.delivered_here(message.message_id):
                continue
            if self.send(connection, message, copies=message.copies, forwarding=True):
                sent += 1
        return sent

    # -------------------------------------------------------------------- hooks
    def on_contact_up(self, connection: Connection, peer: "DTNNode") -> None:
        """A link to *peer* just came up."""

    def on_contact_down(self, connection: Connection, peer: "DTNNode") -> None:
        """The link to *peer* just went down."""

    def on_update(self, now: float) -> None:
        """Per-tick protocol behaviour (after TTL expiry)."""

    def on_received(self, message: Message, from_node: "DTNNode") -> None:
        """A relayed replica was stored in the buffer."""

    def on_delivered(self, message: Message, from_node: "DTNNode") -> None:
        """A message destined to this node arrived (first time)."""

    def on_transfer_completed(self, transfer: Transfer) -> None:
        """A transfer this node sent completed and was accepted."""

    def on_transfer_aborted(self, transfer: Transfer) -> None:
        """A transfer this node sent was aborted by a link-down."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = "detached" if self.node is None else f"node {self.node.node_id}"
        return f"<{type(self).__name__} ({self.name}) on {where}>"
