"""PRoPHET routing (Lindgren, Doria & Schelen, 2003).

Each node maintains a *delivery predictability* :math:`P(a, b)` for every
other node, updated on encounters, aged over time and propagated
transitively.  A message is replicated to an encountered node whose
predictability for the destination exceeds the current holder's.
"""

from __future__ import annotations

from typing import Dict, TYPE_CHECKING

from repro.net.connection import Connection
from repro.routing.active import ContactAwareRouter

if TYPE_CHECKING:  # pragma: no cover
    from repro.world.node import DTNNode


class ProphetRouter(ContactAwareRouter):
    """Probabilistic routing with delivery predictabilities.

    Parameters
    ----------
    p_init:
        Predictability boost applied on a direct encounter.
    beta:
        Transitivity scaling factor.
    gamma:
        Aging factor per time unit.
    time_unit:
        Seconds per aging time unit.
    """

    name = "prophet"

    #: Not idle-skippable: :meth:`_age` multiplies every predictability by
    #: ``gamma ** elapsed_units`` each tick, and a chain of per-tick factors
    #: is not bit-identical to one catch-up factor over the skipped span
    #: (float multiplication is not associative, and the 1e-6 pruning
    #: threshold can fire on different ticks).  The world therefore ticks
    #: PRoPHET routers unconditionally.
    idle_skip_safe = False

    def __init__(self, p_init: float = 0.75, beta: float = 0.25,
                 gamma: float = 0.98, time_unit: float = 30.0,
                 window_size: int = 20) -> None:
        super().__init__(window_size=window_size)
        if not 0 < p_init <= 1:
            raise ValueError("p_init must be in (0, 1]")
        if not 0 <= beta <= 1:
            raise ValueError("beta must be in [0, 1]")
        if not 0 < gamma < 1:
            raise ValueError("gamma must be in (0, 1)")
        if time_unit <= 0:
            raise ValueError("time_unit must be positive")
        self.p_init = float(p_init)
        self.beta = float(beta)
        self.gamma = float(gamma)
        self.time_unit = float(time_unit)
        self._preds: Dict[int, float] = {}
        self._last_aged = 0.0

    # ----------------------------------------------------------- predictability
    def delivery_predictability(self, destination: int) -> float:
        """Current (aged) delivery predictability toward *destination*."""
        self._age(self.now)
        return self._preds.get(int(destination), 0.0)

    def _age(self, now: float) -> None:
        elapsed_units = (now - self._last_aged) / self.time_unit
        if elapsed_units <= 0:
            return
        factor = self.gamma ** elapsed_units
        if factor < 1.0:
            for key in list(self._preds):
                self._preds[key] *= factor
                if self._preds[key] < 1e-6:
                    del self._preds[key]
        self._last_aged = now

    def _update_direct(self, peer_id: int) -> None:
        old = self._preds.get(peer_id, 0.0)
        self._preds[peer_id] = old + (1.0 - old) * self.p_init

    def _update_transitive(self, peer: "ProphetRouter") -> None:
        p_ab = self._preds.get(peer.node_id, 0.0)
        for dest, p_bc in peer._preds.items():
            if dest == self.node_id:
                continue
            candidate = p_ab * p_bc * self.beta
            if candidate > self._preds.get(dest, 0.0):
                self._preds[dest] = candidate

    # ------------------------------------------------------------------ contacts
    def on_contact_recorded(self, connection: Connection, peer: "DTNNode") -> None:
        self._age(self.now)
        self._update_direct(peer.node_id)
        peer_router = peer.router
        if isinstance(peer_router, ProphetRouter):
            peer_router._age(self.now)
            self._update_transitive(peer_router)
            if self.is_exchange_initiator(peer):
                # one predictability vector travels in each direction
                self.stats.control_exchange(
                    rows=len(self._preds) + len(peer_router._preds))

    # -------------------------------------------------------------------- update
    def on_update(self, now: float) -> None:
        self._age(now)
        for connection in self.connections():
            self.send_deliverable(connection)
            peer = connection.other(self.node)
            peer_router = peer.router
            if not isinstance(peer_router, ProphetRouter):
                continue
            considered = self.considered_on(connection)
            for message in self.buffer.messages():
                if message.destination == peer.node_id:
                    continue
                if message.message_id in considered:
                    continue
                considered.add(message.message_id)
                if self.peer_has(connection, message.message_id):
                    continue
                mine = self.delivery_predictability(message.destination)
                theirs = peer_router.delivery_predictability(message.destination)
                if theirs > mine:
                    self.send(connection, message, copies=1, forwarding=False)
