"""Epidemic routing (Vahdat & Becker, 2000).

Every message is replicated to every encountered node that does not already
hold it.  Maximal delivery ratio and minimal latency at the cost of the
highest possible overhead — the upper baseline of the paper's comparison
space (MaxProp behaves similarly with smarter scheduling).
"""

from __future__ import annotations

from repro.routing.base import Router


class EpidemicRouter(Router):
    """Flood every message to every encountered node."""

    name = "epidemic"

    #: stateless tier: with the empty-buffer early-out below, an empty
    #: update touches no per-contact state (the considered-set for a contact
    #: is only materialized once there are messages to flood), so
    #: awake-but-empty ticks batch away even on link-event ticks
    supports_batch_update = True
    batch_update_gated = False

    def on_update(self, now: float) -> None:
        if not len(self.buffer):
            # nothing buffered means nothing deliverable and nothing to
            # flood on any link; skip the per-connection scan (a
            # woken-but-empty router is the common case under the world's
            # idle skip-list)
            return
        for connection in self.connections():
            self.send_deliverable(connection)
            peer = connection.other(self.node)
            considered = self.considered_on(connection)
            for message in self.buffer.messages():
                if message.destination == peer.node_id:
                    continue  # already handled by send_deliverable
                if message.message_id in considered:
                    continue
                considered.add(message.message_id)
                if self.peer_has(connection, message.message_id):
                    continue
                self.send(connection, message, copies=1, forwarding=False)
