"""Spray-and-Focus (Spyropoulos, Psounis & Raghavendra, 2007).

The spray phase is identical to Spray-and-Wait.  In the focus phase (one
replica left) the message is *forwarded* — not copied — to an encountered
node whose utility for the destination is higher.  Utility is the classic
last-encounter-timer: the less time has passed since a node last met the
destination, the better its utility.
"""

from __future__ import annotations

from repro.net.connection import Connection
from repro.routing.active import ContactAwareRouter


class SprayAndFocusRouter(ContactAwareRouter):
    """Binary spray followed by utility-based single-copy focus forwarding.

    Parameters
    ----------
    window_size:
        Contact-history sliding window size.
    focus_threshold:
        Minimum improvement (seconds) of the peer's last-encounter timer over
        ours required to hand the single copy over; avoids ping-ponging
        between nodes with near-identical utilities.
    """

    name = "spray-and-focus"

    def __init__(self, window_size: int = 20, focus_threshold: float = 60.0) -> None:
        super().__init__(window_size=window_size)
        if focus_threshold < 0:
            raise ValueError("focus_threshold must be non-negative")
        self.focus_threshold = float(focus_threshold)

    # ----------------------------------------------------------------- utility
    def last_encounter_age(self, destination: int, now: float) -> float:
        """Seconds since this node last met *destination* (inf if never)."""
        assert self.history is not None
        elapsed = self.history.elapsed_since(destination, now)
        return float("inf") if elapsed is None else elapsed

    def _peer_age(self, connection: Connection, destination: int, now: float) -> float:
        peer_router = self.peer_router(connection)
        if isinstance(peer_router, SprayAndFocusRouter):
            return peer_router.last_encounter_age(destination, now)
        return float("inf")

    # ------------------------------------------------------------------ update
    def on_update(self, now: float) -> None:
        for connection in self.connections():
            self.send_deliverable(connection)
            if not self.is_first_evaluation(connection):
                continue
            peer = connection.other(self.node)
            for message in self.buffer.messages():
                if message.destination == peer.node_id:
                    continue
                if self.peer_has(connection, message.message_id):
                    continue
                if self.has_pending_transfer(message.message_id):
                    continue
                if message.copies > 1:
                    passed = message.copies // 2
                    if passed >= 1:
                        self.send(connection, message, copies=passed, forwarding=False)
                else:
                    my_age = self.last_encounter_age(message.destination, now)
                    peer_age = self._peer_age(connection, message.destination, now)
                    if peer_age + self.focus_threshold < my_age:
                        self.send(connection, message, copies=1, forwarding=True)
