"""Contact-history-aware router base.

Every prediction-based protocol in the paper's comparison (EER, CR, EBR,
PRoPHET, MaxProp, Spray-and-Focus) needs per-peer contact bookkeeping.
:class:`ContactAwareRouter` records a contact in the node's
:class:`~repro.contacts.history.ContactHistory` whenever a link comes up and
exposes it to subclasses.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.contacts.history import ContactHistory, ContactHistoryReference
from repro.net.connection import Connection
from repro.routing.base import Router

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.world.node import DTNNode


class ContactAwareRouter(Router):
    """A router that maintains a sliding-window contact history.

    Parameters
    ----------
    window_size:
        Number of meeting intervals kept per peer (the sliding window size of
        Section III-A.1).
    reference_impl:
        Use the pure-Python :class:`~repro.contacts.history.ContactHistoryReference`
        (and thereby the per-peer estimator loops) instead of the vectorized
        store.  Semantics are bit-identical; the flag exists so the benchmark
        harness can measure the vectorized hot path against its reference and
        prove the metric checksums unchanged.
    """

    name = "contact-aware"

    def __init__(self, window_size: int = 20,
                 reference_impl: bool = False) -> None:
        super().__init__()
        if window_size < 1:
            raise ValueError("window_size must be at least 1")
        self.window_size = int(window_size)
        self.reference_impl = bool(reference_impl)
        self.history: Optional[ContactHistory] = None

    def on_attach(self) -> None:
        super().on_attach()
        factory = ContactHistoryReference if self.reference_impl else ContactHistory
        self.history = factory(self.node_id, self.window_size)

    # ----------------------------------------------------------------- contacts
    def on_contact_up(self, connection: Connection, peer: "DTNNode") -> None:
        """Record the contact, then run the protocol hook."""
        assert self.history is not None
        self.history.record_contact(peer.node_id, self.now)
        self.on_contact_recorded(connection, peer)

    def on_contact_recorded(self, connection: Connection, peer: "DTNNode") -> None:
        """Hook invoked after the contact history has been updated."""

    # ------------------------------------------------------------------ helpers
    def is_exchange_initiator(self, peer: "DTNNode") -> bool:
        """Deterministically pick one endpoint of a contact as the initiator.

        The world notifies both routers of every link-up.  State exchanges
        (MI rows, delivery-predictability vectors, ...) are symmetric, so only
        one endpoint performs them — otherwise the exchange (and its overhead
        accounting) would run twice per contact.  The endpoint with the larger
        node id is chosen because the world notifies it second, so by the time
        it runs the exchange both endpoints have already folded the new
        contact into their own state.
        """
        return self.node_id > peer.node_id
