"""Routers: the common base class and the baseline protocols.

The paper's own protocols (EER and CR) live in :mod:`repro.core`; this package
provides the machinery they share with the baselines and the baselines
themselves:

* :class:`~repro.routing.base.Router` — buffer management, TTL expiry,
  transfer bookkeeping and the hook API called by the world.
* :class:`~repro.routing.active.ContactAwareRouter` — adds the per-node
  contact history that every prediction-based protocol needs.
* Baselines: Epidemic, Direct Delivery, First Contact, PRoPHET, MaxProp,
  Spray-and-Wait, Spray-and-Focus and EBR.
"""

from repro.routing.base import Router
from repro.routing.active import ContactAwareRouter
from repro.routing.epidemic import EpidemicRouter
from repro.routing.direct import DirectDeliveryRouter
from repro.routing.first_contact import FirstContactRouter
from repro.routing.prophet import ProphetRouter
from repro.routing.maxprop import MaxPropRouter
from repro.routing.spray_and_wait import SprayAndWaitRouter
from repro.routing.spray_and_focus import SprayAndFocusRouter
from repro.routing.ebr import EBRRouter
from repro.routing.registry import ROUTER_REGISTRY, create_router, register_router

__all__ = [
    "Router",
    "ContactAwareRouter",
    "EpidemicRouter",
    "DirectDeliveryRouter",
    "FirstContactRouter",
    "ProphetRouter",
    "MaxPropRouter",
    "SprayAndWaitRouter",
    "SprayAndFocusRouter",
    "EBRRouter",
    "ROUTER_REGISTRY",
    "create_router",
    "register_router",
]
