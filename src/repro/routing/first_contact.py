"""First-contact routing (Jain, Fall & Patra, 2004).

A single copy of each message is handed to the first encountered node that
does not already hold it; the sender then forgets the message.  Included as
the zero-knowledge single-copy baseline.
"""

from __future__ import annotations

from repro.routing.base import Router


class FirstContactRouter(Router):
    """Forward the single copy to any encountered node."""

    name = "first-contact"

    #: gated tier: an empty update still consumes the one-decision-per-
    #: meeting gates (preserved by the early-out below), so it is a no-op
    #: only on event-free ticks once the gates of all live contacts are
    #: consumed (see Router.supports_batch_update)
    supports_batch_update = True
    batch_update_gated = True

    def _queued_anywhere(self, message_id: str) -> bool:
        assert self.node is not None
        return any(conn.is_transferring(message_id)
                   for conn in self.node.connections.values())

    def on_update(self, now: float) -> None:
        if not len(self.buffer):
            # empty-buffer early-out: nothing deliverable and nothing to
            # forward, but the per-meeting gates must still burn exactly as
            # the full loop would burn them — a later tick of this contact
            # must not re-run the forwarding decision
            for connection in self.connections():
                self.is_first_evaluation(connection)
            return
        for connection in self.connections():
            self.send_deliverable(connection)
            if not self.is_first_evaluation(connection):
                # one forwarding decision per meeting; otherwise the single
                # copy ping-pongs between the two endpoints of a long contact
                continue
            peer = connection.other(self.node)
            for message in self.buffer.messages():
                if message.destination == peer.node_id:
                    continue
                if self._queued_anywhere(message.message_id):
                    continue
                if self.peer_has(connection, message.message_id):
                    continue
                self.send(connection, message, copies=message.copies, forwarding=True)
