"""Router registry.

Maps protocol names (as used by the experiment configs, benchmarks and
examples) to router factories.  The paper's own protocols (``eer``, ``cr``)
are resolved lazily from :mod:`repro.core` to keep the import graph acyclic.
"""

from __future__ import annotations

import importlib
from typing import Callable, Dict

from repro.routing.base import Router

#: explicit user registrations (name -> zero-state factory)
ROUTER_REGISTRY: Dict[str, Callable[..., Router]] = {}

#: built-in protocols, resolved lazily as "module:ClassName"
_BUILTIN: Dict[str, str] = {
    "epidemic": "repro.routing.epidemic:EpidemicRouter",
    "direct": "repro.routing.direct:DirectDeliveryRouter",
    "first-contact": "repro.routing.first_contact:FirstContactRouter",
    "prophet": "repro.routing.prophet:ProphetRouter",
    "maxprop": "repro.routing.maxprop:MaxPropRouter",
    "spray-and-wait": "repro.routing.spray_and_wait:SprayAndWaitRouter",
    "spray-and-focus": "repro.routing.spray_and_focus:SprayAndFocusRouter",
    "ebr": "repro.routing.ebr:EBRRouter",
    "eer": "repro.core.eer:EERRouter",
    "cr": "repro.core.cr:CommunityRouter",
}


def register_router(name: str, factory: Callable[..., Router]) -> None:
    """Register a custom router factory under *name* (overrides built-ins)."""
    if not callable(factory):
        raise TypeError("factory must be callable")
    ROUTER_REGISTRY[name] = factory


def available_routers() -> list:
    """Names of all known protocols (built-in and registered)."""
    return sorted(set(_BUILTIN) | set(ROUTER_REGISTRY))


def create_router(name: str, **params) -> Router:
    """Instantiate the router registered under *name* with *params*.

    Raises
    ------
    KeyError
        If no router is registered under *name*.
    """
    if name in ROUTER_REGISTRY:
        return ROUTER_REGISTRY[name](**params)
    spec = _BUILTIN.get(name)
    if spec is None:
        raise KeyError(
            f"unknown router {name!r}; known: {', '.join(available_routers())}")
    module_name, _, class_name = spec.partition(":")
    module = importlib.import_module(module_name)
    cls = getattr(module, class_name)
    return cls(**params)
