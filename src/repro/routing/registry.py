"""Router registry.

Maps protocol names (as used by the experiment configs, benchmarks and
examples) to router factories.  The paper's own protocols (``eer``, ``cr``)
are resolved lazily from :mod:`repro.core` to keep the import graph acyclic.
"""

from __future__ import annotations

import importlib
from typing import Callable, Dict

from repro.routing.base import Router

#: explicit user registrations (name -> zero-state factory)
ROUTER_REGISTRY: Dict[str, Callable[..., Router]] = {}

#: built-in protocols, resolved lazily as "module:ClassName"
_BUILTIN: Dict[str, str] = {
    "epidemic": "repro.routing.epidemic:EpidemicRouter",
    "direct": "repro.routing.direct:DirectDeliveryRouter",
    "first-contact": "repro.routing.first_contact:FirstContactRouter",
    "prophet": "repro.routing.prophet:ProphetRouter",
    "maxprop": "repro.routing.maxprop:MaxPropRouter",
    "spray-and-wait": "repro.routing.spray_and_wait:SprayAndWaitRouter",
    "spray-and-focus": "repro.routing.spray_and_focus:SprayAndFocusRouter",
    "ebr": "repro.routing.ebr:EBRRouter",
    "eer": "repro.core.eer:EERRouter",
    "cr": "repro.core.cr:CommunityRouter",
    "cr-kclique": "repro.core.cr:CommunityRouter",
    "cr-newman": "repro.core.cr:CommunityRouter",
}

#: frozen default parameters for built-in aliases (user params override);
#: this is how one router class surfaces as several CLI-visible protocols —
#: CR's community source (oracle assignment vs online detection) is the
#: distinguishing parameter, see repro.community.provider.
#: kclique defaults detection_min_weight=3: k-clique percolation needs the
#: weak one-off inter-community edges filtered or the near-complete contact
#: graph makes maximal-clique enumeration combinatorial.
_BUILTIN_DEFAULTS: Dict[str, Dict[str, object]] = {
    "cr-kclique": {"community_mode": "kclique", "detection_min_weight": 3.0},
    "cr-newman": {"community_mode": "newman"},
}


#: one-line summaries for the CLI's ``list`` output and docs/protocols.md
_SUMMARIES: Dict[str, str] = {
    "epidemic": "flood every contact (Vahdat & Becker 2000)",
    "direct": "source holds until it meets the destination "
              "(Grossglauser & Tse 2002)",
    "first-contact": "single copy, forwarded to the first contact "
                     "(Jain et al. 2004)",
    "prophet": "delivery predictability with transitivity "
               "(Lindgren et al. 2003)",
    "maxprop": "priority schedule from delivery likelihood "
               "(Burgess et al. 2006)",
    "spray-and-wait": "binary replica quota, then direct delivery "
                      "(Spyropoulos et al. 2005)",
    "spray-and-focus": "spray, then utility-based single-copy focus "
                       "(Spyropoulos et al. 2007)",
    "ebr": "encounter-ratio-proportional replica splitting "
           "(Nelson et al. 2009)",
    "eer": "expected-encounter-based replication (the paper, Sec. IV-A)",
    "cr": "community-aware expected-encounter routing (the paper, Sec. IV-B)",
    "cr-kclique": "CR with communities detected online by k-clique "
                  "percolation (no oracle assignment)",
    "cr-newman": "CR with communities detected online by Newman greedy "
                 "modularity (no oracle assignment)",
}


def register_router(name: str, factory: Callable[..., Router],
                    summary: str = "") -> None:
    """Register a custom router factory under *name* (overrides built-ins).

    Parameters
    ----------
    name:
        Protocol name as used by scenario configs and the CLI.
    factory:
        Callable returning a fresh :class:`~repro.routing.base.Router`.
    summary:
        Optional one-liner shown by ``python -m repro list``.
    """
    if not callable(factory):
        raise TypeError("factory must be callable")
    ROUTER_REGISTRY[name] = factory
    if summary:
        _SUMMARIES[name] = summary


def router_summary(name: str) -> str:
    """One-line description of a protocol ("" when none was provided)."""
    return _SUMMARIES.get(name, "")


def available_routers() -> list:
    """Names of all known protocols (built-in and registered)."""
    return sorted(set(_BUILTIN) | set(ROUTER_REGISTRY))


def create_router(name: str, **params) -> Router:
    """Instantiate the router registered under *name* with *params*.

    Raises
    ------
    KeyError
        If no router is registered under *name*.
    """
    if name in ROUTER_REGISTRY:
        return ROUTER_REGISTRY[name](**params)
    spec = _BUILTIN.get(name)
    if spec is None:
        raise KeyError(
            f"unknown router {name!r}; known: {', '.join(available_routers())}")
    module_name, _, class_name = spec.partition(":")
    module = importlib.import_module(module_name)
    cls = getattr(module, class_name)
    defaults = _BUILTIN_DEFAULTS.get(name)
    if defaults:
        params = {**defaults, **params}
    return cls(**params)
