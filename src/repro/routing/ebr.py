"""Encounter-Based Routing (EBR; Nelson, Bakht & Kravets, INFOCOM 2009).

The direct predecessor of the paper's EER.  Each node tracks an *encounter
value* (EV): an exponentially weighted moving average of how many encounters
it had per fixed time window.  When two nodes meet, message replicas are split
proportionally to their EVs; once a single replica remains the node simply
waits for the destination (like Spray-and-Wait's wait phase).

The paper's criticism — and the motivation for EER — is that this EV is the
same for every message regardless of its residual TTL.
"""

from __future__ import annotations

from repro.core.replication import split_replicas
from repro.net.connection import Connection
from repro.routing.active import ContactAwareRouter

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.world.node import DTNNode


class EBRRouter(ContactAwareRouter):
    """Quota splitting proportional to windowed encounter values.

    Parameters
    ----------
    ewma_alpha:
        Weight of the current window's encounter count in the EV update
        (the EBR paper uses 0.85).
    window:
        Window length in seconds.
    """

    name = "ebr"

    def __init__(self, ewma_alpha: float = 0.85, window: float = 30.0,
                 window_size: int = 20) -> None:
        super().__init__(window_size=window_size)
        if not 0 < ewma_alpha <= 1:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if window <= 0:
            raise ValueError("window must be positive")
        self.ewma_alpha = float(ewma_alpha)
        self.window = float(window)
        self._encounter_value = 0.0
        self._current_window_count = 0
        self._window_end = 0.0

    # --------------------------------------------------------------------- EV
    @property
    def encounter_value(self) -> float:
        """The current (already folded) encounter value."""
        return self._encounter_value

    def _fold_windows(self, now: float) -> None:
        if self._window_end == 0.0:
            self._window_end = self.window
        while now >= self._window_end:
            self._encounter_value = (self.ewma_alpha * self._current_window_count
                                     + (1.0 - self.ewma_alpha) * self._encounter_value)
            self._current_window_count = 0
            self._window_end += self.window

    # ----------------------------------------------------------------- contacts
    def on_contact_recorded(self, connection: Connection, peer: "DTNNode") -> None:
        self._fold_windows(self.now)
        self._current_window_count += 1
        if self.is_exchange_initiator(peer):
            # the two nodes exchange one EV scalar each
            self.stats.control_exchange(rows=2)

    # ------------------------------------------------------------------- update
    def on_update(self, now: float) -> None:
        self._fold_windows(now)
        for connection in self.connections():
            self.send_deliverable(connection)
            peer = connection.other(self.node)
            peer_router = peer.router
            if not isinstance(peer_router, EBRRouter):
                continue
            peer_router._fold_windows(now)
            if not self.is_first_evaluation(connection):
                continue
            for message in self.buffer.messages():
                if message.destination == peer.node_id:
                    continue
                if message.copies <= 1:
                    continue  # wait phase: hold the last replica for the destination
                if self.peer_has(connection, message.message_id):
                    continue
                if self.has_pending_transfer(message.message_id):
                    continue
                _, passed = split_replicas(message.copies, self._encounter_value,
                                           peer_router._encounter_value)
                if passed >= 1:
                    self.send(connection, message, copies=passed, forwarding=False)
