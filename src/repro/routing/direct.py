"""Direct delivery: the source holds the message until it meets the destination."""

from __future__ import annotations

from repro.routing.base import Router


class DirectDeliveryRouter(Router):
    """Never relay; deliver only on direct contact with the destination."""

    name = "direct"

    #: stateless tier: the empty-buffer early-out below touches no
    #: per-contact state, so an awake-but-empty tick batches away even on
    #: link-event ticks (see Router.supports_batch_update)
    supports_batch_update = True
    batch_update_gated = False

    def on_update(self, now: float) -> None:
        if not len(self.buffer):
            # nothing buffered means nothing deliverable on any link; skip
            # the per-connection scan (a woken-but-empty router is the
            # common case under the world's idle skip-list)
            return
        for connection in self.connections():
            self.send_deliverable(connection)
