"""MaxProp routing (Burgess, Gallagher, Jensen & Levine, INFOCOM 2006).

MaxProp floods like epidemic routing but orders transmissions and buffer
evictions by an estimated *path cost* to each message's destination, computed
from incrementally averaged meeting likelihoods, and propagates delivery
acknowledgements so delivered messages are flushed network-wide.

In the paper's comparison MaxProp attains the highest delivery ratio and
lowest latency but by far the lowest goodput, because the cost ordering does
not limit the number of replicas.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple, TYPE_CHECKING

import heapq

from repro.net.connection import Connection
from repro.net.message import Message
from repro.routing.active import ContactAwareRouter

if TYPE_CHECKING:  # pragma: no cover
    from repro.world.node import DTNNode


class MaxPropRouter(ContactAwareRouter):
    """Cost-ordered epidemic routing with delivery acknowledgements.

    Parameters
    ----------
    hop_threshold:
        Messages with fewer hops than this are transmitted first (and evicted
        last), mirroring MaxProp's protection of "young" messages.
    """

    name = "maxprop"

    def __init__(self, hop_threshold: int = 3, window_size: int = 20) -> None:
        super().__init__(window_size=window_size)
        if hop_threshold < 0:
            raise ValueError("hop_threshold must be non-negative")
        self.hop_threshold = int(hop_threshold)
        #: this node's incrementally averaged meeting likelihoods
        self._meet_probs: Dict[int, float] = {}
        #: likelihood vectors learned from other nodes: node -> (timestamp, vector)
        self._known_vectors: Dict[int, Tuple[float, Dict[int, float]]] = {}
        #: ids of messages known (via acks) to have been delivered
        self._acked: Set[str] = set()
        #: memo of path costs, valid until the known likelihood vectors change
        self._cost_cache: Dict[int, float] = {}
        self._cost_cache_revision: int = -1
        self._vector_revision: int = 0

    # ------------------------------------------------------------- likelihoods
    def meeting_probabilities(self) -> Dict[int, float]:
        """This node's normalised meeting-likelihood vector (copy)."""
        return dict(self._meet_probs)

    def _update_meeting_probability(self, peer_id: int) -> None:
        # MaxProp's incremental averaging: bump the met node, renormalise.
        self._meet_probs[peer_id] = self._meet_probs.get(peer_id, 0.0) + 1.0
        total = sum(self._meet_probs.values())
        for key in self._meet_probs:
            self._meet_probs[key] /= total
        self._known_vectors[self.node_id] = (self.now, dict(self._meet_probs))
        self._vector_revision += 1

    def _merge_vectors(self, other: "MaxPropRouter") -> int:
        """Copy every likelihood vector *other* knows more recently.  Returns rows copied."""
        copied = 0
        for node_id, (stamp, vector) in other._known_vectors.items():
            if node_id == self.node_id:
                continue
            mine = self._known_vectors.get(node_id)
            if mine is None or stamp > mine[0]:
                self._known_vectors[node_id] = (stamp, dict(vector))
                copied += 1
        if copied:
            self._vector_revision += 1
        return copied

    # ------------------------------------------------------------------- costs
    def path_cost(self, destination: int) -> float:
        """Estimated delivery cost to *destination* (lower is better).

        Dijkstra over the known likelihood vectors with per-hop cost
        ``1 - P(meet)``; unreachable destinations cost ``inf``.  Costs are
        memoised until the known likelihood vectors change (they only change
        at contacts), because the transmission ordering and buffer eviction
        query them on every tick.
        """
        destination = int(destination)
        if destination == self.node_id:
            return 0.0
        if self._cost_cache_revision == self._vector_revision:
            return self._cost_cache.get(destination, float("inf"))
        self._cost_cache = {}
        self._cost_cache_revision = self._vector_revision
        # run Dijkstra to completion and memoise every reachable destination
        dist: Dict[int, float] = {self.node_id: 0.0}
        heap: List[Tuple[float, int]] = [(0.0, self.node_id)]
        visited: Set[int] = set()
        while heap:
            d, u = heapq.heappop(heap)
            if u in visited:
                continue
            visited.add(u)
            entry = self._known_vectors.get(u)
            if entry is None:
                continue
            for v, p in entry[1].items():
                cost = d + (1.0 - min(max(p, 0.0), 1.0))
                if cost < dist.get(v, float("inf")):
                    dist[v] = cost
                    heapq.heappush(heap, (cost, v))
        self._cost_cache.update(dist)
        return dist.get(destination, float("inf"))

    # ---------------------------------------------------------------- ack flush
    def _purge_acked(self) -> None:
        for message in self.buffer.messages():
            if message.message_id in self._acked:
                self.buffer.remove(message.message_id)
                self.stats.message_dropped(message, self.node_id, self.now, "delivered")

    def on_delivered(self, message: Message, from_node: "DTNNode") -> None:
        self._acked.add(message.message_id)

    def receive_message(self, message: Message, from_node: "DTNNode") -> bool:
        if message.message_id in self._acked and message.destination != self.node_id:
            return False
        return super().receive_message(message, from_node)

    # ----------------------------------------------------------------- contacts
    def on_contact_recorded(self, connection: Connection, peer: "DTNNode") -> None:
        self._update_meeting_probability(peer.node_id)
        peer_router = peer.router
        if isinstance(peer_router, MaxPropRouter) and self.is_exchange_initiator(peer):
            rows = self._merge_vectors(peer_router) + peer_router._merge_vectors(self)
            ack_rows = len(self._acked | peer_router._acked)
            merged_acks = self._acked | peer_router._acked
            self._acked |= merged_acks
            peer_router._acked |= merged_acks
            self.stats.control_exchange(rows=rows + 2, size_bytes=ack_rows)
            self._purge_acked()
            peer_router._purge_acked()

    # --------------------------------------------------------------- buffer mgmt
    def _store(self, message: Message, source: str) -> bool:
        # Make room by evicting the *worst* messages first: old (hop count at
        # or above the threshold) messages with the highest path cost.
        if message.size > self.buffer.capacity:
            self.stats.message_dropped(message, self.node_id, self.now, "buffer")
            return False
        while message.size > self.buffer.free_space:
            victim = self._eviction_candidate()
            if victim is None:
                self.stats.message_dropped(message, self.node_id, self.now, "buffer")
                return False
            self.buffer.remove(victim.message_id)
            self.stats.message_dropped(victim, self.node_id, self.now, "buffer")
        return super()._store(message, source)

    def _eviction_candidate(self) -> Message | None:
        buffered = self.buffer.messages()
        if not buffered:
            return None
        def rank(msg: Message) -> Tuple[int, float, float]:
            protected = 1 if msg.hop_count < self.hop_threshold else 0
            return (protected, -self.path_cost(msg.destination), msg.received_time)
        return min(buffered, key=rank)

    # ------------------------------------------------------------------- update
    def _transmission_order(self, messages: List[Message]) -> List[Message]:
        """MaxProp's send order: low-hop messages first, then by path cost."""
        young = sorted((m for m in messages if m.hop_count < self.hop_threshold),
                       key=lambda m: m.hop_count)
        old = sorted((m for m in messages if m.hop_count >= self.hop_threshold),
                     key=lambda m: self.path_cost(m.destination))
        return young + old

    def on_update(self, now: float) -> None:
        for connection in self.connections():
            self.send_deliverable(connection)
            peer = connection.other(self.node)
            considered = self.considered_on(connection)
            pending = [m for m in self.buffer.messages()
                       if m.destination != peer.node_id
                       and m.message_id not in considered]
            if not pending:
                continue
            for message in self._transmission_order(pending):
                considered.add(message.message_id)
                if message.message_id in self._acked:
                    continue
                if self.peer_has(connection, message.message_id):
                    continue
                self.send(connection, message, copies=1, forwarding=False)
