"""Proportional replica splitting.

Both EER and CR hand over ``floor(M_k * w_peer / (w_self + w_peer))`` replicas
of a message when two nodes meet (Section III-A.2 and Algorithms 1, 3, 4),
where the weights are expected encounter values (EER, intra-community CR) or
expected numbers of encountering communities (inter-community CR).
"""

from __future__ import annotations

import math
from typing import Tuple


def split_replicas(total: int, weight_self: float, weight_peer: float,
                   keep_at_least_one: bool = True) -> Tuple[int, int]:
    """Split *total* replicas between the holder and the encountered peer.

    Parameters
    ----------
    total:
        The holder's replica quota :math:`M_k`; must be at least 1.
    weight_self, weight_peer:
        Non-negative expectation weights (EEV or ENEC values).
    keep_at_least_one:
        If ``True`` (the protocols' behaviour), the holder always keeps at
        least one replica, so at most ``total - 1`` are passed.

    Returns
    -------
    (kept, passed)
        Number of replicas kept by the holder and handed to the peer.
        ``kept + passed == total`` always holds.

    Notes
    -----
    * When both weights are zero (no usable history on either side) the
      replicas are split as evenly as possible, mirroring the
      Spray-and-Wait-style binary split the protocols degenerate to without
      history.
    * ``passed`` is the floor of the proportional share, per the paper.
    """
    if total < 1:
        raise ValueError(f"total replicas must be >= 1, got {total}")
    if weight_self < 0 or weight_peer < 0:
        raise ValueError("expectation weights must be non-negative")
    denominator = weight_self + weight_peer
    if denominator <= 0:
        passed = total // 2
    else:
        passed = math.floor(total * (weight_peer / denominator))
    max_passed = total - 1 if keep_at_least_one else total
    passed = max(0, min(passed, max_passed))
    return total - passed, passed
