"""The Expected Encounter based Routing protocol (EER, Algorithm 1).

EER is a quota-based, link-state protocol with two phases per message:

* **Multiple-replicas distribution** — while a node holds more than one
  replica of a message, it splits its quota with every encountered node in
  proportion to their expected encounter values ``EEV(t, alpha * TTL_k)``
  (Theorem 1), computed over the *residual* TTL of the message — this is the
  paper's key improvement over EBR's TTL-agnostic encounter value.
* **Single-replica forwarding** — the last replica is handed to an encounter
  whose minimum expected meeting delay (MEMD) to the destination is smaller.
  Each node derives its MEMD from its own MD matrix (Theorem 2 row +
  exchanged MI rows, Theorem 3 Dijkstra).

At every contact the two nodes refresh their contact histories, update their
own MI rows and exchange the MI rows that are fresher on one side than the
other (the paper's footnote 1); the number of exchanged rows is reported as
control overhead.
"""

from __future__ import annotations

from typing import Dict, Optional, TYPE_CHECKING


from repro.contacts.memd import MemdCache
from repro.contacts.mi_matrix import MeetingIntervalMatrix
from repro.core.expectation import OverduePolicy, expected_encounter_value
from repro.core.replication import split_replicas
from repro.net.connection import Connection
from repro.routing.active import ContactAwareRouter

if TYPE_CHECKING:  # pragma: no cover
    from repro.world.node import DTNNode


class EERRouter(ContactAwareRouter):
    """Expected Encounter based Routing.

    Parameters
    ----------
    alpha:
        The network parameter :math:`\\alpha \\in [0, 1]` scaling the residual
        TTL into the prediction horizon (the paper uses 0.28).
    window_size:
        Sliding-window size of the contact history.
    overdue_policy:
        Empirical fallback when the elapsed time since the last contact with a
        peer exceeds every recorded interval (see
        :class:`repro.core.expectation.OverduePolicy`).
    memd_refresh:
        Maximum staleness (seconds) of the cached MEMD vector before it is
        recomputed.  Meeting delays are on the order of hundreds of seconds,
        so a few seconds of staleness does not change forwarding decisions but
        avoids one Dijkstra run per world tick.  Within that budget the
        vector is additionally keyed on the contact-history / MI-matrix
        versions (see :class:`~repro.contacts.memd.MemdCache`), so it is only
        recomputed when a recorded contact or an exchanged row actually
        changed the routing state.
    reference_impl:
        Run the contact bookkeeping and estimators through the pure-Python
        reference implementations (see
        :class:`~repro.routing.active.ContactAwareRouter`).
    forward_margin:
        Relative improvement of the encounter's MEMD over ours required before
        the single replica is handed over (``theirs < (1 - margin) * mine``).
        The paper's Algorithm 1 uses a strict comparison (margin 0); the
        default damps hand-overs between nodes whose estimates differ by less
        than the estimation noise, which is needed because the synthetic bus
        scenario has a denser contact process than the paper's Helsinki map
        (see DESIGN.md).  The forwarding-damping ablation benchmark sweeps the
        margin, including the strictly faithful value 0.
    """

    name = "eer"

    def __init__(self, alpha: float = 0.28, window_size: int = 20,
                 overdue_policy: OverduePolicy = OverduePolicy.REFRESH,
                 memd_refresh: float = 5.0, forward_margin: float = 0.35,
                 reference_impl: bool = False) -> None:
        super().__init__(window_size=window_size, reference_impl=reference_impl)
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        if not 0.0 <= forward_margin < 1.0:
            raise ValueError("forward_margin must be in [0, 1)")
        self.alpha = float(alpha)
        self.overdue_policy = overdue_policy
        self.forward_margin = float(forward_margin)
        self._mi: Optional[MeetingIntervalMatrix] = None
        # MEMD delay-vector cache: one Dijkstra yields the delays to every
        # destination; invalidated by version changes or staleness.
        self._memd = MemdCache(refresh=memd_refresh)

    @property
    def memd_refresh(self) -> float:
        """Maximum staleness (seconds) of the cached MEMD vector."""
        return self._memd.refresh

    # ----------------------------------------------------------------- MI state
    @property
    def mi(self) -> MeetingIntervalMatrix:
        """The node's meeting-interval matrix (created lazily once the world is populated)."""
        if self._mi is None:
            assert self.world is not None
            n = self.world.num_nodes
            if self.node_id >= n:
                raise RuntimeError(
                    "node ids must be 0..n-1 for the MI matrix; "
                    f"node {self.node_id} with only {n} nodes registered")
            self._mi = MeetingIntervalMatrix(n, self.node_id)
        return self._mi

    # ------------------------------------------------------------------ horizon
    def horizon_for(self, residual_ttl: float) -> float:
        """The EEV prediction horizon :math:`\\alpha \\cdot TTL_k`."""
        return self.alpha * max(0.0, residual_ttl)

    def expected_ev(self, now: float, horizon: float) -> float:
        """This node's ``EEV(t, tau)`` (Theorem 1)."""
        assert self.history is not None
        return expected_encounter_value(self.history, now, horizon,
                                        self.overdue_policy)

    # -------------------------------------------------------------------- MEMD
    def memd_to(self, destination: int) -> float:
        """Minimum expected meeting delay from this node to *destination*.

        Served from the per-source delay-vector cache: one Dijkstra run over
        the MD matrix answers every destination until a recorded contact or
        an effective MI merge changes the routing state (or the vector goes
        stale, see ``memd_refresh``).
        """
        assert self.history is not None
        delays = self._memd.delays(self.history, self.mi, self.now,
                                   self.overdue_policy)
        if not 0 <= destination < len(delays):
            return float("inf")
        return float(delays[destination])

    # ---------------------------------------------------------------- contacts
    def on_contact_recorded(self, connection: Connection, peer: "DTNNode") -> None:
        assert self.history is not None
        mean = self.history.mean_interval(peer.node_id)
        updates: Dict[int, float] = {}
        if mean is not None:
            updates[peer.node_id] = mean
        self.mi.update_own_row(updates, self.now)
        peer_router = peer.router
        if isinstance(peer_router, EERRouter) and self.is_exchange_initiator(peer):
            # mutual MI exchange (only rows with fresher update times travel);
            # the MI matrices bump their versions when copied rows actually
            # change, which is what invalidates the MEMD caches
            to_me = self.mi.merge_from(peer_router.mi)
            to_peer = peer_router.mi.merge_from(self.mi)
            row_bytes = 8 * self.mi.num_nodes  # one float per column
            self.stats.control_exchange(rows=to_me + to_peer,
                                        size_bytes=(to_me + to_peer) * row_bytes)

    # ------------------------------------------------------------------ update
    def on_update(self, now: float) -> None:
        # The paper's Algorithm 1 runs once per meeting: the buffer is
        # evaluated at the first tick after the link comes up; messages
        # created or received while the contact is still open wait for the
        # next meeting event.  Deliverable messages are sent every tick.
        for connection in self.connections():
            self.send_deliverable(connection)
            peer = connection.other(self.node)
            peer_router = peer.router
            if not isinstance(peer_router, EERRouter):
                continue
            if not self.is_first_evaluation(connection):
                continue
            for message in self.buffer.messages():
                if message.destination == peer.node_id:
                    continue
                if self.peer_has(connection, message.message_id):
                    continue
                if self.has_pending_transfer(message.message_id):
                    continue
                residual = message.residual_ttl(now)
                if residual <= 0:
                    continue
                horizon = self.horizon_for(residual)
                if message.copies > 1:
                    # multiple replicas distribution phase
                    mine = self.expected_ev(now, horizon)
                    theirs = peer_router.expected_ev(now, horizon)
                    _, passed = split_replicas(message.copies, mine, theirs)
                    if passed >= 1:
                        self.send(connection, message, copies=passed, forwarding=False)
                else:
                    # single replica forwarding phase
                    mine = self.memd_to(message.destination)
                    theirs = peer_router.memd_to(message.destination)
                    if theirs < (1.0 - self.forward_margin) * mine:
                        self.send(connection, message, copies=1, forwarding=True)
