"""Contact-expectation primitives (Theorems 1, 2 and 4 of the paper).

All three theorems share one empirical building block: given the sliding
window of recorded meeting intervals :math:`R_{ij}` with a peer and the
elapsed time since the last contact, the probability that the *next* meeting
falls within the coming horizon :math:`\\tau` is

.. math::

    P(\\Delta t^{ij} \\le t + \\tau - t^{ij}_0 \\mid \\Delta t^{ij} > t - t^{ij}_0)
        = \\frac{m^{\\tau}_{ij}}{m_{ij}},

where :math:`m_{ij}` counts recorded intervals longer than the elapsed time
and :math:`m^{\\tau}_{ij}` counts those that additionally end within the
horizon (Eq. 4 in the paper's appendix).

The paper leaves one empirical corner case undefined: when the elapsed time
since the last contact exceeds *every* recorded interval, :math:`m_{ij} = 0`
and the conditional probability is 0/0.  :class:`OverduePolicy` makes the
choice explicit; the default ``REFRESH`` treats the overdue meeting as a fresh
renewal drawn from the full window, which is the standard empirical-renewal
fallback and is what the reference experiments use.
"""

from __future__ import annotations

import enum
from typing import Callable, Iterable, Mapping, Optional, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - avoid a runtime cycle with repro.contacts,
    # whose MD builder uses Theorem 2 from this module
    from repro.contacts.history import ContactHistory


class OverduePolicy(enum.Enum):
    """What to assume when the elapsed time exceeds every recorded interval."""

    #: treat the next meeting as a fresh renewal drawn from the full window
    REFRESH = "refresh"
    #: assume the meeting is imminent (probability 1, zero expected delay)
    OPTIMISTIC = "optimistic"
    #: assume nothing can be said (probability 0, unknown expected delay)
    PESSIMISTIC = "pessimistic"


# --------------------------------------------------------------------------- Theorem 1
def conditional_encounter_probability(intervals: Sequence[float], elapsed: float,
                                      horizon: float,
                                      overdue_policy: OverduePolicy = OverduePolicy.REFRESH,
                                      ) -> float:
    """Probability of meeting the peer within the next *horizon* seconds.

    Parameters
    ----------
    intervals:
        Recorded meeting intervals :math:`R_{ij}` (the sliding window).
    elapsed:
        Time since the last contact, :math:`t - t^{ij}_0` (non-negative).
    horizon:
        Prediction horizon :math:`\\tau` (non-negative).
    overdue_policy:
        Fallback when no recorded interval exceeds *elapsed*.

    Returns
    -------
    float
        :math:`m^{\\tau}_{ij} / m_{ij}` per Theorem 1, in ``[0, 1]``.
        0 when there is no usable history.
    """
    if elapsed < 0:
        raise ValueError(f"elapsed time must be non-negative, got {elapsed}")
    if horizon < 0:
        raise ValueError(f"horizon must be non-negative, got {horizon}")
    if not intervals:
        return 0.0
    conditioned = [dt for dt in intervals if dt > elapsed]
    if conditioned:
        within = sum(1 for dt in conditioned if dt <= elapsed + horizon)
        return within / len(conditioned)
    # overdue: every recorded interval is shorter than the elapsed time
    if overdue_policy is OverduePolicy.OPTIMISTIC:
        return 1.0
    if overdue_policy is OverduePolicy.PESSIMISTIC:
        return 0.0
    within = sum(1 for dt in intervals if dt <= horizon)
    return within / len(intervals)


def expected_encounter_value(history: ContactHistory, now: float, horizon: float,
                             overdue_policy: OverduePolicy = OverduePolicy.REFRESH,
                             peer_filter: Optional[Callable[[int], bool]] = None,
                             ) -> float:
    """Theorem 1: the expected encounter value ``EEV_i(t, tau)``.

    The number of distinct peers the node expects to meet within
    ``(now, now + horizon]``, i.e. the sum of the per-peer conditional
    encounter probabilities.

    Parameters
    ----------
    history:
        The node's contact history.
    now:
        Current time :math:`t`.
    horizon:
        Horizon :math:`\\tau`; the EER protocol uses
        :math:`\\alpha \\cdot TTL_k` of the message being routed.
    overdue_policy:
        See :class:`OverduePolicy`.
    peer_filter:
        Optional predicate restricting which peers count; the CR protocol's
        intra-community EEV' passes a same-community filter.
    """
    total = 0.0
    for peer in history.peers():
        if peer_filter is not None and not peer_filter(peer):
            continue
        elapsed = history.elapsed_since(peer, now)
        if elapsed is None:
            continue
        total += conditional_encounter_probability(
            history.intervals(peer), elapsed, horizon, overdue_policy)
    return total


# --------------------------------------------------------------------------- Theorem 2
def expected_meeting_delay(intervals: Sequence[float], elapsed: float,
                           overdue_policy: OverduePolicy = OverduePolicy.REFRESH,
                           ) -> Optional[float]:
    """Theorem 2: the expected meeting delay ``EMD_ij(t)``.

    The expected remaining time until the next meeting, conditioned on the
    elapsed time since the last contact:

    .. math:: EMD_{ij}(t) = \\frac{1}{m_{ij}} \\sum_{\\Delta t \\in M_{ij}} \\Delta t
              \\;-\\; (t - t^{ij}_0).

    Returns ``None`` when nothing can be predicted (no recorded intervals, or
    the pessimistic overdue policy applies).
    """
    if elapsed < 0:
        raise ValueError(f"elapsed time must be non-negative, got {elapsed}")
    if not intervals:
        return None
    conditioned = [dt for dt in intervals if dt > elapsed]
    if conditioned:
        return sum(conditioned) / len(conditioned) - elapsed
    if overdue_policy is OverduePolicy.OPTIMISTIC:
        return 0.0
    if overdue_policy is OverduePolicy.PESSIMISTIC:
        return None
    # REFRESH: the overdue meeting is treated as a fresh renewal, so the
    # expected residual wait is the plain mean interval.
    return sum(intervals) / len(intervals)


# --------------------------------------------------------------------------- Theorem 4
def community_encounter_probability(history: ContactHistory, now: float, horizon: float,
                                    members: Iterable[int],
                                    overdue_policy: OverduePolicy = OverduePolicy.REFRESH,
                                    ) -> float:
    """Probability ``P_ic`` of meeting at least one member of a community.

    ``P_ic = 1 - prod_{u_j in C_c} (1 - P_ij)`` where :math:`P_{ij}` is the
    conditional encounter probability of Theorem 1.  Members the node has
    never met contribute probability 0.
    """
    miss = 1.0
    for member in members:
        if member == history.owner_id:
            continue
        elapsed = history.elapsed_since(member, now)
        if elapsed is None:
            continue
        p = conditional_encounter_probability(
            history.intervals(member), elapsed, horizon, overdue_policy)
        miss *= (1.0 - p)
        if miss == 0.0:
            break
    return 1.0 - miss


def expected_num_encountering_communities(history: ContactHistory, now: float,
                                          horizon: float,
                                          communities: Mapping[int, Iterable[int]],
                                          own_community: Optional[int],
                                          overdue_policy: OverduePolicy = OverduePolicy.REFRESH,
                                          ) -> float:
    """Theorem 4: the expected number of encountering communities ``ENEC_i(t, tau)``.

    Parameters
    ----------
    history:
        The node's contact history.
    now, horizon:
        As in :func:`expected_encounter_value`.
    communities:
        Mapping community id -> iterable of member node ids.
    own_community:
        The node's own community, which is excluded from the sum (the paper
        sums over :math:`k \\ne CID_{u_i}`).
    overdue_policy:
        See :class:`OverduePolicy`.
    """
    total = 0.0
    for community_id, members in communities.items():
        if own_community is not None and community_id == own_community:
            continue
        total += community_encounter_probability(
            history, now, horizon, members, overdue_policy)
    return total
