"""Contact-expectation primitives (Theorems 1, 2 and 4 of the paper).

All three theorems share one empirical building block: given the sliding
window of recorded meeting intervals :math:`R_{ij}` with a peer and the
elapsed time since the last contact, the probability that the *next* meeting
falls within the coming horizon :math:`\\tau` is

.. math::

    P(\\Delta t^{ij} \\le t + \\tau - t^{ij}_0 \\mid \\Delta t^{ij} > t - t^{ij}_0)
        = \\frac{m^{\\tau}_{ij}}{m_{ij}},

where :math:`m_{ij}` counts recorded intervals longer than the elapsed time
and :math:`m^{\\tau}_{ij}` counts those that additionally end within the
horizon (Eq. 4 in the paper's appendix).

The paper leaves one empirical corner case undefined: when the elapsed time
since the last contact exceeds *every* recorded interval, :math:`m_{ij} = 0`
and the conditional probability is 0/0.  :class:`OverduePolicy` makes the
choice explicit; the default ``REFRESH`` treats the overdue meeting as a fresh
renewal drawn from the full window, which is the standard empirical-renewal
fallback and is what the reference experiments use.

Two execution paths share these definitions.  When the history is the
vectorized :class:`~repro.contacts.history.ContactHistory`, the estimators
reduce over the whole ``(peers, window)`` interval matrix in a few NumPy
operations (:func:`batch_encounter_probabilities`,
:func:`batch_expected_delays`).  Any other history object (in particular
:class:`~repro.contacts.history.ContactHistoryReference`) falls back to the
original per-peer Python loops.  The batch kernels are *bit-exact* against
the loops: counts are integers, quotients are single IEEE divisions, and
every order-sensitive float sum is performed left to right via ``cumsum``
over chronologically ordered rows (masked-out entries contribute an exact
``+0.0``), so both paths produce identical routing decisions — the parity
property tests and the benchmark checksums rely on this.
"""

from __future__ import annotations

import enum
from typing import Callable, Iterable, Mapping, Optional, Sequence, Union

import numpy as np


class OverduePolicy(enum.Enum):
    """What to assume when the elapsed time exceeds every recorded interval."""

    #: treat the next meeting as a fresh renewal drawn from the full window
    REFRESH = "refresh"
    #: assume the meeting is imminent (probability 1, zero expected delay)
    OPTIMISTIC = "optimistic"
    #: assume nothing can be said (probability 0, unknown expected delay)
    PESSIMISTIC = "pessimistic"


def _sequential_row_sum(values: np.ndarray) -> np.ndarray:
    """Left-to-right per-row sum of a ``(p, w)`` matrix.

    ``cumsum`` accumulates strictly sequentially, so the last column equals
    the Python ``sum()`` of the same row — bit for bit — which keeps the
    batch kernels exactly interchangeable with the reference loops.
    """
    if values.shape[1] == 0:
        return np.zeros(values.shape[0], dtype=float)
    return np.cumsum(values, axis=1)[:, -1]


# ------------------------------------------------------------- batch kernels
def batch_encounter_probabilities(intervals: np.ndarray, counts: np.ndarray,
                                  elapsed: np.ndarray, horizon: float,
                                  overdue_policy: OverduePolicy = OverduePolicy.REFRESH,
                                  ) -> np.ndarray:
    """Theorem 1 for every peer at once.

    Parameters
    ----------
    intervals:
        ``(p, w)`` chronological interval matrix (column ``>= counts[row]``
        entries are ignored).
    counts:
        ``(p,)`` number of valid intervals per row.
    elapsed:
        ``(p,)`` elapsed time since the last contact per peer
        (non-negative).
    horizon:
        Prediction horizon :math:`\\tau` (non-negative).
    overdue_policy:
        Fallback when no recorded interval exceeds the elapsed time.

    Returns
    -------
    numpy.ndarray
        ``(p,)`` conditional encounter probabilities in ``[0, 1]``; 0 for
        peers without any recorded interval.
    """
    if horizon < 0:
        raise ValueError(f"horizon must be non-negative, got {horizon}")
    peers, window = intervals.shape
    if peers == 0:
        return np.zeros(0, dtype=float)
    valid = np.arange(window)[None, :] < counts[:, None]
    conditioned = valid & (intervals > elapsed[:, None])
    m = conditioned.sum(axis=1)
    within = (conditioned & (intervals <= (elapsed + horizon)[:, None])).sum(axis=1)
    safe_m = np.maximum(m, 1)
    p = np.where(m > 0, within / safe_m, 0.0)
    overdue = (m == 0) & (counts > 0)
    if overdue.any():
        if overdue_policy is OverduePolicy.OPTIMISTIC:
            p[overdue] = 1.0
        elif overdue_policy is OverduePolicy.PESSIMISTIC:
            p[overdue] = 0.0
        else:  # REFRESH: renewal drawn from the full window
            refreshed = (valid & (intervals <= horizon)).sum(axis=1)
            safe_counts = np.maximum(counts, 1)
            p = np.where(overdue, refreshed / safe_counts, p)
    return p


def batch_expected_delays(intervals: np.ndarray, counts: np.ndarray,
                          elapsed: np.ndarray,
                          overdue_policy: OverduePolicy = OverduePolicy.REFRESH,
                          ) -> np.ndarray:
    """Theorem 2 for every peer at once.

    Same input conventions as :func:`batch_encounter_probabilities`.
    Returns a ``(p,)`` vector of expected meeting delays with ``nan`` where
    nothing can be predicted (no recorded intervals, or the pessimistic
    overdue policy applies) — the vector analogue of the scalar function
    returning ``None``.
    """
    peers, window = intervals.shape
    if peers == 0:
        return np.zeros(0, dtype=float)
    valid = np.arange(window)[None, :] < counts[:, None]
    conditioned = valid & (intervals > elapsed[:, None])
    m = conditioned.sum(axis=1)
    conditioned_sum = _sequential_row_sum(np.where(conditioned, intervals, 0.0))
    emd = np.where(m > 0, conditioned_sum / np.maximum(m, 1) - elapsed, np.nan)
    overdue = (m == 0) & (counts > 0)
    if overdue.any():
        if overdue_policy is OverduePolicy.OPTIMISTIC:
            emd[overdue] = 0.0
        elif overdue_policy is OverduePolicy.REFRESH:
            # the overdue meeting is a fresh renewal: plain window mean
            window_sum = _sequential_row_sum(np.where(valid, intervals, 0.0))
            means = window_sum / np.maximum(counts, 1)
            emd = np.where(overdue, means, emd)
        # PESSIMISTIC keeps nan
    emd[counts == 0] = np.nan
    return emd


#: below this many recorded peers the per-peer Python loop beats the batch
#: kernel's fixed NumPy call overhead (measured crossover ~13 peers); both
#: paths are bit-identical, so the dispatch never changes a result
BATCH_MIN_PEERS = 14


def _history_arrays(history, min_peers: Optional[int] = None):
    """Batch views of a vectorized history, or ``None`` to use the loop path.

    Returns ``None`` both for reference histories (no array accessor) and for
    vectorized histories too small for the kernel to pay off.  *min_peers*
    defaults to the module-level :data:`BATCH_MIN_PEERS` (read at call time,
    so tests can tune it).
    """
    accessor = getattr(history, "interval_arrays", None)
    if accessor is None:
        return None
    arrays = accessor()
    if len(arrays[0]) < (BATCH_MIN_PEERS if min_peers is None else min_peers):
        return None
    return arrays


def _elapsed_vector(last: np.ndarray, now: float) -> np.ndarray:
    # clamped at zero exactly like ContactHistory.elapsed_since
    return np.maximum(0.0, now - last)


# --------------------------------------------------------------------------- Theorem 1
def conditional_encounter_probability(intervals: Sequence[float], elapsed: float,
                                      horizon: float,
                                      overdue_policy: OverduePolicy = OverduePolicy.REFRESH,
                                      ) -> float:
    """Probability of meeting the peer within the next *horizon* seconds.

    Parameters
    ----------
    intervals:
        Recorded meeting intervals :math:`R_{ij}` (the sliding window).
    elapsed:
        Time since the last contact, :math:`t - t^{ij}_0` (non-negative).
    horizon:
        Prediction horizon :math:`\\tau` (non-negative).
    overdue_policy:
        Fallback when no recorded interval exceeds *elapsed*.

    Returns
    -------
    float
        :math:`m^{\\tau}_{ij} / m_{ij}` per Theorem 1, in ``[0, 1]``.
        0 when there is no usable history.
    """
    if elapsed < 0:
        raise ValueError(f"elapsed time must be non-negative, got {elapsed}")
    if horizon < 0:
        raise ValueError(f"horizon must be non-negative, got {horizon}")
    if not intervals:
        return 0.0
    conditioned = [dt for dt in intervals if dt > elapsed]
    if conditioned:
        within = sum(1 for dt in conditioned if dt <= elapsed + horizon)
        return within / len(conditioned)
    # overdue: every recorded interval is shorter than the elapsed time
    if overdue_policy is OverduePolicy.OPTIMISTIC:
        return 1.0
    if overdue_policy is OverduePolicy.PESSIMISTIC:
        return 0.0
    within = sum(1 for dt in intervals if dt <= horizon)
    return within / len(intervals)


#: a peer filter is either a predicate on the peer id or a boolean mask
#: indexed by node id (the CR protocol passes its community-membership mask)
PeerFilter = Union[Callable[[int], bool], np.ndarray]


def _filter_mask(peer_ids: np.ndarray, peer_filter: Optional[PeerFilter]) -> Optional[np.ndarray]:
    if peer_filter is None:
        return None
    if isinstance(peer_filter, np.ndarray):
        mask = np.zeros(len(peer_ids), dtype=bool)
        in_range = (peer_ids >= 0) & (peer_ids < len(peer_filter))
        mask[in_range] = peer_filter[peer_ids[in_range]]
        return mask
    return np.fromiter((bool(peer_filter(int(pid))) for pid in peer_ids),
                       dtype=bool, count=len(peer_ids))


def expected_encounter_value(history, now: float, horizon: float,
                             overdue_policy: OverduePolicy = OverduePolicy.REFRESH,
                             peer_filter: Optional[PeerFilter] = None,
                             ) -> float:
    """Theorem 1: the expected encounter value ``EEV_i(t, tau)``.

    The number of distinct peers the node expects to meet within
    ``(now, now + horizon]``, i.e. the sum of the per-peer conditional
    encounter probabilities.

    Parameters
    ----------
    history:
        The node's contact history (vectorized or reference).
    now:
        Current time :math:`t`.
    horizon:
        Horizon :math:`\\tau`; the EER protocol uses
        :math:`\\alpha \\cdot TTL_k` of the message being routed.
    overdue_policy:
        See :class:`OverduePolicy`.
    peer_filter:
        Optional restriction on which peers count: a predicate on the peer
        id, or a boolean mask indexed by node id (the CR protocol's
        intra-community EEV' passes its same-community mask).
    """
    arrays = _history_arrays(history)
    if arrays is None:
        return _expected_encounter_value_reference(
            history, now, horizon, overdue_policy, peer_filter)
    peer_ids, intervals, counts, last = arrays
    if peer_ids.size == 0:
        return 0.0
    elapsed = _elapsed_vector(last, now)
    p = batch_encounter_probabilities(intervals, counts, elapsed, horizon,
                                      overdue_policy)
    mask = _filter_mask(peer_ids, peer_filter)
    if mask is not None:
        # excluded peers contribute an exact +0.0 to the sequential sum
        p = np.where(mask, p, 0.0)
    return float(np.cumsum(p)[-1])


def _expected_encounter_value_reference(history, now, horizon, overdue_policy,
                                        peer_filter):
    total = 0.0
    is_mask = isinstance(peer_filter, np.ndarray)
    for peer in history.peers():
        if peer_filter is not None:
            if is_mask:
                if not (0 <= peer < len(peer_filter) and peer_filter[peer]):
                    continue
            elif not peer_filter(peer):
                continue
        elapsed = history.elapsed_since(peer, now)
        if elapsed is None:
            continue
        total += conditional_encounter_probability(
            history.intervals(peer), elapsed, horizon, overdue_policy)
    return total


# --------------------------------------------------------------------------- Theorem 2
def expected_meeting_delay(intervals: Sequence[float], elapsed: float,
                           overdue_policy: OverduePolicy = OverduePolicy.REFRESH,
                           ) -> Optional[float]:
    """Theorem 2: the expected meeting delay ``EMD_ij(t)``.

    The expected remaining time until the next meeting, conditioned on the
    elapsed time since the last contact:

    .. math:: EMD_{ij}(t) = \\frac{1}{m_{ij}} \\sum_{\\Delta t \\in M_{ij}} \\Delta t
              \\;-\\; (t - t^{ij}_0).

    Returns ``None`` when nothing can be predicted (no recorded intervals, or
    the pessimistic overdue policy applies).
    """
    if elapsed < 0:
        raise ValueError(f"elapsed time must be non-negative, got {elapsed}")
    if not intervals:
        return None
    conditioned = [dt for dt in intervals if dt > elapsed]
    if conditioned:
        return sum(conditioned) / len(conditioned) - elapsed
    if overdue_policy is OverduePolicy.OPTIMISTIC:
        return 0.0
    if overdue_policy is OverduePolicy.PESSIMISTIC:
        return None
    # REFRESH: the overdue meeting is treated as a fresh renewal, so the
    # expected residual wait is the plain mean interval.
    return sum(intervals) / len(intervals)


# --------------------------------------------------------------------------- Theorem 4
def community_encounter_probability(history, now: float, horizon: float,
                                    members: Iterable[int],
                                    overdue_policy: OverduePolicy = OverduePolicy.REFRESH,
                                    ) -> float:
    """Probability ``P_ic`` of meeting at least one member of a community.

    ``P_ic = 1 - prod_{u_j in C_c} (1 - P_ij)`` where :math:`P_{ij}` is the
    conditional encounter probability of Theorem 1.  Members the node has
    never met contribute probability 0.
    """
    arrays = _history_arrays(history)
    if arrays is None:
        return _community_encounter_probability_reference(
            history, now, horizon, members, overdue_policy)
    peer_ids, intervals, counts, last = arrays
    if peer_ids.size == 0:
        return 0.0
    elapsed = _elapsed_vector(last, now)
    p = batch_encounter_probabilities(intervals, counts, elapsed, horizon,
                                      overdue_policy)
    # gather the met members in the caller's member order so the sequential
    # product matches the reference loop exactly
    slots = [slot for member in members
             if member != history.owner_id
             and (slot := history.slot_of(member)) is not None]
    if not slots:
        return 0.0
    miss = np.cumprod(1.0 - p[np.asarray(slots, dtype=np.intp)])[-1]
    return 1.0 - float(miss)


def _community_encounter_probability_reference(history, now, horizon, members,
                                               overdue_policy):
    miss = 1.0
    for member in members:
        if member == history.owner_id:
            continue
        elapsed = history.elapsed_since(member, now)
        if elapsed is None:
            continue
        p = conditional_encounter_probability(
            history.intervals(member), elapsed, horizon, overdue_policy)
        miss *= (1.0 - p)
        if miss == 0.0:
            break
    return 1.0 - miss


def expected_num_encountering_communities(history, now: float,
                                          horizon: float,
                                          communities: Mapping[int, Iterable[int]],
                                          own_community: Optional[int],
                                          overdue_policy: OverduePolicy = OverduePolicy.REFRESH,
                                          ) -> float:
    """Theorem 4: the expected number of encountering communities ``ENEC_i(t, tau)``.

    Parameters
    ----------
    history:
        The node's contact history.
    now, horizon:
        As in :func:`expected_encounter_value`.
    communities:
        Mapping community id -> iterable of member node ids.
    own_community:
        The node's own community, which is excluded from the sum (the paper
        sums over :math:`k \\ne CID_{u_i}`).
    overdue_policy:
        See :class:`OverduePolicy`.
    """
    total = 0.0
    for community_id, members in communities.items():
        if own_community is not None and community_id == own_community:
            continue
        total += community_encounter_probability(
            history, now, horizon, members, overdue_policy)
    return total
