"""The Community based Routing protocol (CR, Algorithms 2-4).

CR assumes the nodes are partitioned into communities with much higher
intra-community contact rates than inter-community ones, and routes in two
regimes:

* **Inter-community routing** (the holder is outside the destination's
  community, Algorithm 3): replicas are pushed toward the destination
  community.  If the encountered node *is* in the destination community it
  receives all replicas.  Otherwise quotas are split proportionally to the two
  nodes' expected numbers of encountering communities (``ENEC``, Theorem 4),
  and a lone replica is forwarded to the node with the higher probability
  ``P_ic`` of meeting the destination community within the horizon.
* **Intra-community routing** (the holder is already inside the destination's
  community, Algorithm 4): EER-style behaviour restricted to the community —
  quota splits by intra-community EEV', single-copy forwarding by
  intra-community MEMD' — and messages are never handed back outside the
  community.

Because only the *intra-community* MI rows are exchanged (a community is much
smaller than the whole network) and the inter-community phase exchanges only
two scalars per contact, CR's control overhead is a fraction of EER's; the
collector's ``control_rows_exchanged`` captures exactly this difference.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

import numpy as np

from repro.contacts.memd import MemdCache
from repro.contacts.mi_matrix import MeetingIntervalMatrix
from repro.core.expectation import (
    OverduePolicy,
    community_encounter_probability,
    expected_encounter_value,
    expected_num_encountering_communities,
)
from repro.core.replication import split_replicas
from repro.net.connection import Connection
from repro.net.message import Message
from repro.routing.active import ContactAwareRouter

if TYPE_CHECKING:  # pragma: no cover
    from repro.world.node import DTNNode


class CommunityRouter(ContactAwareRouter):
    """Community based Routing.

    Parameters
    ----------
    alpha:
        Horizon scaling factor applied to the residual TTL, as in EER.
    window_size:
        Sliding-window size of the contact history.
    overdue_policy:
        Fallback for overdue contacts (see
        :class:`repro.core.expectation.OverduePolicy`).
    memd_refresh:
        Maximum staleness (seconds) of the cached intra-community MEMD vector
        (see :class:`repro.core.eer.EERRouter`).
    forward_margin:
        Relative improvement required before the single replica is handed
        over (applies to the inter-community ``P_ic`` comparison and the
        intra-community MEMD' comparison); see
        :class:`repro.core.eer.EERRouter` for the rationale.

    Notes
    -----
    Every node in the world must have a community id assigned (the paper
    predefines communities, footnote 2).  The scenario builder assigns
    district-based communities for the bus scenario.
    """

    name = "cr"

    def __init__(self, alpha: float = 0.28, window_size: int = 20,
                 overdue_policy: OverduePolicy = OverduePolicy.REFRESH,
                 memd_refresh: float = 5.0, forward_margin: float = 0.35,
                 reference_impl: bool = False) -> None:
        super().__init__(window_size=window_size, reference_impl=reference_impl)
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        if not 0.0 <= forward_margin < 1.0:
            raise ValueError("forward_margin must be in [0, 1)")
        self.alpha = float(alpha)
        self.overdue_policy = overdue_policy
        self.forward_margin = float(forward_margin)
        self._intra_mi: Optional[MeetingIntervalMatrix] = None
        self._communities: Optional[Dict[int, List[int]]] = None
        self._community_of: Optional[Dict[int, int]] = None
        self._member_mask: Optional[np.ndarray] = None
        self._memd = MemdCache(refresh=memd_refresh)

    @property
    def memd_refresh(self) -> float:
        """Maximum staleness (seconds) of the cached intra-community MEMD'."""
        return self._memd.refresh

    # ----------------------------------------------------------- community map
    @property
    def community(self) -> int:
        """This node's community id."""
        assert self.node is not None
        cid = self.node.community
        if cid is None:
            raise RuntimeError(
                f"node {self.node.node_id} has no community; CommunityRouter "
                "requires every node to have a community id")
        return int(cid)

    def _ensure_membership(self) -> None:
        if self._communities is not None:
            return
        assert self.world is not None
        communities: Dict[int, List[int]] = {}
        community_of: Dict[int, int] = {}
        for node in self.world.nodes:
            if node.community is None:
                raise RuntimeError(
                    f"node {node.node_id} has no community; CommunityRouter "
                    "requires a full community assignment")
            communities.setdefault(int(node.community), []).append(node.node_id)
            community_of[node.node_id] = int(node.community)
        self._communities = communities
        self._community_of = community_of

    def communities(self) -> Dict[int, List[int]]:
        """Mapping community id -> member node ids (network-wide, predefined)."""
        self._ensure_membership()
        assert self._communities is not None
        return self._communities

    def community_of(self, node_id: int) -> int:
        """Community id of *node_id*."""
        self._ensure_membership()
        assert self._community_of is not None
        return self._community_of[node_id]

    def community_members(self, community_id: int) -> List[int]:
        """Members of *community_id*."""
        return self.communities().get(int(community_id), [])

    # ------------------------------------------------------------ intra-MI state
    @property
    def intra_mi(self) -> MeetingIntervalMatrix:
        """The intra-community meeting-interval matrix (lazily created)."""
        if self._intra_mi is None:
            assert self.world is not None
            n = self.world.num_nodes
            if self.node_id >= n:
                raise RuntimeError("node ids must be 0..n-1 for the MI matrix")
            self._intra_mi = MeetingIntervalMatrix(n, self.node_id)
        return self._intra_mi

    def _membership_mask(self) -> np.ndarray:
        """Boolean mask over node ids for this node's own community (static)."""
        if self._member_mask is None:
            mask = np.zeros(self.intra_mi.num_nodes, dtype=bool)
            for member in self.community_members(self.community):
                if member < mask.shape[0]:
                    mask[member] = True
            self._member_mask = mask
        return self._member_mask

    # --------------------------------------------------------------- predictions
    def horizon_for(self, residual_ttl: float) -> float:
        """Prediction horizon :math:`\\alpha \\cdot TTL_k`."""
        return self.alpha * max(0.0, residual_ttl)

    def enec(self, now: float, horizon: float) -> float:
        """Expected number of encountering communities (Theorem 4)."""
        assert self.history is not None
        return expected_num_encountering_communities(
            self.history, now, horizon, self.communities(), self.community,
            self.overdue_policy)

    def community_probability(self, community_id: int, now: float, horizon: float) -> float:
        """Probability ``P_ic`` of meeting a member of *community_id* in the horizon."""
        assert self.history is not None
        return community_encounter_probability(
            self.history, now, horizon, self.community_members(community_id),
            self.overdue_policy)

    def intra_expected_ev(self, now: float, horizon: float) -> float:
        """Intra-community expected encounter value ``EEV'``."""
        assert self.history is not None
        return expected_encounter_value(
            self.history, now, horizon, self.overdue_policy,
            peer_filter=self._membership_mask())

    def intra_memd_to(self, destination: int) -> float:
        """Intra-community MEMD' from this node to *destination*.

        Served from the version-keyed delay-vector cache restricted to the
        destination community's members (communities are predefined and
        static, so the membership mask never invalidates the cache).
        """
        assert self.history is not None
        delays = self._memd.delays(self.history, self.intra_mi, self.now,
                                   self.overdue_policy,
                                   node_filter=self._membership_mask())
        if not 0 <= destination < len(delays):
            return float("inf")
        return float(delays[destination])

    # ------------------------------------------------------------------ contacts
    def on_contact_recorded(self, connection: Connection, peer: "DTNNode") -> None:
        assert self.history is not None
        peer_router = peer.router
        same_community = (peer.community is not None
                          and int(peer.community) == self.community)
        if same_community:
            mean = self.history.mean_interval(peer.node_id)
            updates: Dict[int, float] = {}
            if mean is not None:
                updates[peer.node_id] = mean
            self.intra_mi.update_own_row(updates, self.now)
        if not isinstance(peer_router, CommunityRouter):
            return
        if not self.is_exchange_initiator(peer):
            return
        if same_community:
            # intra-community MI exchange, restricted to community members;
            # the matrices bump their versions when copied rows actually
            # change, which invalidates the MEMD' caches
            to_me = self.intra_mi.merge_from(peer_router.intra_mi)
            to_peer = peer_router.intra_mi.merge_from(self.intra_mi)
            row_bytes = 8 * len(self.community_members(self.community))
            self.stats.control_exchange(rows=to_me + to_peer,
                                        size_bytes=(to_me + to_peer) * row_bytes)
        else:
            # inter-community contacts exchange only two scalars
            # (ENEC / P_ic summaries), counted as two rows of overhead
            self.stats.control_exchange(rows=2, size_bytes=16)

    # -------------------------------------------------------------------- update
    def _destination_community(self, message: Message) -> int:
        if message.dest_community is not None:
            return int(message.dest_community)
        return self.community_of(message.destination)

    def on_update(self, now: float) -> None:
        # Algorithm 2 is triggered "when ui meets uj": the buffer is evaluated
        # once per meeting event (see EERRouter for the rationale).
        for connection in self.connections():
            self.send_deliverable(connection)
            peer = connection.other(self.node)
            peer_router = peer.router
            if not isinstance(peer_router, CommunityRouter):
                continue
            if not self.is_first_evaluation(connection):
                continue
            for message in self.buffer.messages():
                if message.destination == peer.node_id:
                    continue
                if self.has_pending_transfer(message.message_id):
                    continue
                residual = message.residual_ttl(now)
                if residual <= 0:
                    continue
                dest_community = self._destination_community(message)
                if self.community != dest_community:
                    self._inter_community_step(connection, peer, peer_router,
                                               message, dest_community, now, residual)
                else:
                    self._intra_community_step(connection, peer, peer_router,
                                               message, now, residual)

    # ------------------------------------------------------------ Algorithm 3
    def _inter_community_step(self, connection: Connection, peer: "DTNNode",
                              peer_router: "CommunityRouter", message: Message,
                              dest_community: int, now: float, residual: float) -> None:
        if self.peer_has(connection, message.message_id):
            return
        peer_community = peer.community
        if peer_community is not None and int(peer_community) == dest_community:
            # the peer belongs to the destination community: hand everything over
            self.send(connection, message, copies=message.copies, forwarding=True)
            return
        horizon = self.horizon_for(residual)
        if message.copies > 1:
            mine = self.enec(now, horizon)
            theirs = peer_router.enec(now, horizon)
            _, passed = split_replicas(message.copies, mine, theirs)
            if passed >= 1:
                self.send(connection, message, copies=passed, forwarding=False)
        else:
            mine = self.community_probability(dest_community, now, horizon)
            theirs = peer_router.community_probability(dest_community, now, horizon)
            if mine < (1.0 - self.forward_margin) * theirs:
                self.send(connection, message, copies=1, forwarding=True)

    # ------------------------------------------------------------ Algorithm 4
    def _intra_community_step(self, connection: Connection, peer: "DTNNode",
                              peer_router: "CommunityRouter", message: Message,
                              now: float, residual: float) -> None:
        peer_community = peer.community
        if peer_community is None or int(peer_community) != self.community:
            # never push a message back outside its destination community
            return
        if self.peer_has(connection, message.message_id):
            return
        horizon = self.horizon_for(residual)
        if message.copies > 1:
            mine = self.intra_expected_ev(now, horizon)
            theirs = peer_router.intra_expected_ev(now, horizon)
            _, passed = split_replicas(message.copies, mine, theirs)
            if passed >= 1:
                self.send(connection, message, copies=passed, forwarding=False)
        else:
            mine = self.intra_memd_to(message.destination)
            theirs = peer_router.intra_memd_to(message.destination)
            if theirs < (1.0 - self.forward_margin) * mine:
                self.send(connection, message, copies=1, forwarding=True)
