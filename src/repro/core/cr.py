"""The Community based Routing protocol (CR, Algorithms 2-4).

CR assumes the nodes are partitioned into communities with much higher
intra-community contact rates than inter-community ones, and routes in two
regimes:

* **Inter-community routing** (the holder is outside the destination's
  community, Algorithm 3): replicas are pushed toward the destination
  community.  If the encountered node *is* in the destination community it
  receives all replicas.  Otherwise quotas are split proportionally to the two
  nodes' expected numbers of encountering communities (``ENEC``, Theorem 4),
  and a lone replica is forwarded to the node with the higher probability
  ``P_ic`` of meeting the destination community within the horizon.
* **Intra-community routing** (the holder is already inside the destination's
  community, Algorithm 4): EER-style behaviour restricted to the community —
  quota splits by intra-community EEV', single-copy forwarding by
  intra-community MEMD' — and messages are never handed back outside the
  community.

Because only the *intra-community* MI rows are exchanged (a community is much
smaller than the whole network) and the inter-community phase exchanges only
two scalars per contact, CR's control overhead is a fraction of EER's; the
collector's ``control_rows_exchanged`` captures exactly this difference.

**Where communities come from** is pluggable (the ``community_mode``
parameter, see :mod:`repro.community.provider`):

* ``oracle`` — the paper's footnote-2 setting: the predefined, static
  ``node.community`` labels assigned by the scenario builder.  This is the
  default and is bit-identical to the pre-provider implementation.
* ``kclique`` / ``newman`` — communities are *detected online* from the
  node's own observed contacts by a world-shared
  :class:`~repro.community.online.OnlineCommunityTracker`; re-detection is
  rate-limited by the ``detection_staleness`` budget and its compute cost is
  reported through the collector (``community_detections`` /
  ``community_detection_seconds``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

import numpy as np

from repro.community.provider import (
    COMMUNITY_MODES,
    CommunityProvider,
    community_provider_for,
)
from repro.contacts.memd import MemdCache
from repro.contacts.mi_matrix import MeetingIntervalMatrix
from repro.core.expectation import (
    OverduePolicy,
    community_encounter_probability,
    expected_encounter_value,
    expected_num_encountering_communities,
)
from repro.core.replication import split_replicas
from repro.net.connection import Connection
from repro.net.message import Message
from repro.routing.active import ContactAwareRouter

if TYPE_CHECKING:  # pragma: no cover
    from repro.world.node import DTNNode


class CommunityRouter(ContactAwareRouter):
    """Community based Routing.

    Parameters
    ----------
    alpha:
        Horizon scaling factor applied to the residual TTL, as in EER.
    window_size:
        Sliding-window size of the contact history.
    overdue_policy:
        Fallback for overdue contacts (see
        :class:`repro.core.expectation.OverduePolicy`).
    memd_refresh:
        Maximum staleness (seconds) of the cached intra-community MEMD vector
        (see :class:`repro.core.eer.EERRouter`).
    forward_margin:
        Relative improvement required before the single replica is handed
        over (applies to the inter-community ``P_ic`` comparison and the
        intra-community MEMD' comparison); see
        :class:`repro.core.eer.EERRouter` for the rationale.
    community_mode:
        ``"oracle"`` (predefined static communities, the paper's setting),
        ``"kclique"`` or ``"newman"`` (online detection from observed
        contacts); see the module docstring.
    detection_staleness:
        Detected modes only: minimum seconds between detection runs (the
        :class:`~repro.community.online.OnlineCommunityTracker` staleness
        budget).
    detection_min_weight:
        Detected modes only: minimum accumulated contact count for an edge to
        participate in detection.
    detection_k:
        ``kclique`` mode only: the clique size.
    max_communities:
        ``newman`` mode only: community-count cap (0 = modularity peak).

    Notes
    -----
    In ``oracle`` mode every node in the world must have a community id
    assigned (the paper predefines communities, footnote 2); the scenario
    builder assigns district-based communities for the bus scenario.  The
    detected modes need no prior assignment.
    """

    name = "cr"

    def __init__(self, alpha: float = 0.28, window_size: int = 20,
                 overdue_policy: OverduePolicy = OverduePolicy.REFRESH,
                 memd_refresh: float = 5.0, forward_margin: float = 0.35,
                 reference_impl: bool = False,
                 community_mode: str = "oracle",
                 detection_staleness: float = 300.0,
                 detection_min_weight: float = 1.0,
                 detection_k: int = 3,
                 max_communities: int = 0) -> None:
        super().__init__(window_size=window_size, reference_impl=reference_impl)
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        if not 0.0 <= forward_margin < 1.0:
            raise ValueError("forward_margin must be in [0, 1)")
        if community_mode not in COMMUNITY_MODES:
            raise ValueError(
                f"community_mode must be one of {', '.join(COMMUNITY_MODES)}; "
                f"got {community_mode!r}")
        if detection_staleness < 0:
            raise ValueError("detection_staleness must be non-negative")
        self.alpha = float(alpha)
        self.overdue_policy = overdue_policy
        self.forward_margin = float(forward_margin)
        self.community_mode = community_mode
        self.detection_staleness = float(detection_staleness)
        self.detection_min_weight = float(detection_min_weight)
        self.detection_k = int(detection_k)
        self.max_communities = int(max_communities)
        self._intra_mi: Optional[MeetingIntervalMatrix] = None
        self._provider: Optional[CommunityProvider] = None
        self._member_mask: Optional[np.ndarray] = None
        self._mask_version = -1
        self._mask_community: Optional[int] = None
        self._memd = MemdCache(refresh=memd_refresh)

    @property
    def memd_refresh(self) -> float:
        """Maximum staleness (seconds) of the cached intra-community MEMD'."""
        return self._memd.refresh

    # ----------------------------------------------------------- community map
    def detection_config(self) -> tuple:
        """The detection configuration identifying this router's provider.

        Two CR routers of one world share a provider (and tracker) iff their
        detection configs are equal; the contact-observation dedup keys on
        this.
        """
        return (self.community_mode, self.detection_staleness,
                self.detection_min_weight, self.detection_k,
                self.max_communities)

    @property
    def provider(self) -> CommunityProvider:
        """The world-shared community provider for this router's mode."""
        if self._provider is None:
            assert self.world is not None
            self._provider = community_provider_for(
                self.world, self.community_mode,
                staleness=self.detection_staleness,
                min_weight=self.detection_min_weight,
                k=self.detection_k,
                max_communities=self.max_communities)
        return self._provider

    @property
    def community(self) -> int:
        """This node's (current) community id."""
        assert self.node is not None
        if self.community_mode == "oracle":
            cid = self.node.community
            if cid is None:
                raise RuntimeError(
                    f"node {self.node.node_id} has no community; "
                    "CommunityRouter in 'oracle' mode requires every node to "
                    "have a community id")
            return int(cid)
        return self.provider.community_of(self.node_id, self.now)

    def communities(self) -> Dict[int, List[int]]:
        """Mapping community id -> member node ids (network-wide)."""
        return self.provider.communities(self.now)

    def community_of(self, node_id: int) -> int:
        """Community id of *node_id*."""
        return self.provider.community_of(node_id, self.now)

    def community_members(self, community_id: int) -> List[int]:
        """Members of *community_id*."""
        return self.provider.members(community_id, self.now)

    # ------------------------------------------------------------ intra-MI state
    @property
    def intra_mi(self) -> MeetingIntervalMatrix:
        """The intra-community meeting-interval matrix (lazily created)."""
        if self._intra_mi is None:
            assert self.world is not None
            n = self.world.num_nodes
            if self.node_id >= n:
                raise RuntimeError("node ids must be 0..n-1 for the MI matrix")
            self._intra_mi = MeetingIntervalMatrix(n, self.node_id)
        return self._intra_mi

    def _membership_mask(self) -> np.ndarray:
        """Boolean mask over node ids for this node's own community.

        Static in ``oracle`` mode (communities are predefined); in the
        detected modes the mask is rebuilt — and the MEMD' delay-vector cache
        invalidated — whenever the provider's assignment revision advances or
        this node itself was reassigned.
        """
        own = self.community
        version = self.provider.version
        if (self._member_mask is None or version != self._mask_version
                or own != self._mask_community):
            mask = np.zeros(self.intra_mi.num_nodes, dtype=bool)
            for member in self.community_members(own):
                if member < mask.shape[0]:
                    mask[member] = True
            if (self._member_mask is not None
                    and not np.array_equal(mask, self._member_mask)):
                # *this* node's membership changed under a live cache: the
                # node_filter the cached MEMD' vector was computed with is no
                # longer valid.  A revision bump that left this community's
                # member set untouched keeps the cache.
                self._memd.invalidate()
            self._member_mask = mask
            self._mask_version = version
            self._mask_community = own
        return self._member_mask

    # --------------------------------------------------------------- predictions
    def horizon_for(self, residual_ttl: float) -> float:
        """Prediction horizon :math:`\\alpha \\cdot TTL_k`."""
        return self.alpha * max(0.0, residual_ttl)

    def enec(self, now: float, horizon: float) -> float:
        """Expected number of encountering communities (Theorem 4)."""
        assert self.history is not None
        return expected_num_encountering_communities(
            self.history, now, horizon, self.communities(), self.community,
            self.overdue_policy)

    def community_probability(self, community_id: int, now: float, horizon: float) -> float:
        """Probability ``P_ic`` of meeting a member of *community_id* in the horizon."""
        assert self.history is not None
        return community_encounter_probability(
            self.history, now, horizon, self.community_members(community_id),
            self.overdue_policy)

    def intra_expected_ev(self, now: float, horizon: float) -> float:
        """Intra-community expected encounter value ``EEV'``."""
        assert self.history is not None
        return expected_encounter_value(
            self.history, now, horizon, self.overdue_policy,
            peer_filter=self._membership_mask())

    def intra_memd_to(self, destination: int) -> float:
        """Intra-community MEMD' from this node to *destination*.

        Served from the version-keyed delay-vector cache restricted to the
        destination community's members.  In ``oracle`` mode the membership
        mask never changes, so it never invalidates the cache; in the
        detected modes :meth:`_membership_mask` invalidates it whenever a
        detection moved a node.
        """
        assert self.history is not None
        delays = self._memd.delays(self.history, self.intra_mi, self.now,
                                   self.overdue_policy,
                                   node_filter=self._membership_mask())
        if not 0 <= destination < len(delays):
            return float("inf")
        return float(delays[destination])

    # ------------------------------------------------------------------ contacts
    def _same_community_as_peer(self, peer: "DTNNode") -> bool:
        if self.community_mode == "oracle":
            return (peer.community is not None
                    and int(peer.community) == self.community)
        return self.community_of(peer.node_id) == self.community

    def on_contact_recorded(self, connection: Connection, peer: "DTNNode") -> None:
        assert self.history is not None
        peer_router = peer.router
        if self.community_mode != "oracle":
            # feed the shared contact graph exactly once per contact: when
            # the peer consults the *same* provider (same world, same
            # detection config) only the exchange initiator reports the
            # edge; any other peer — different protocol, oracle mode, or a
            # differently-configured tracker — will never feed this
            # tracker, so this side always must
            peer_shares_tracker = (
                isinstance(peer_router, CommunityRouter)
                and peer_router.detection_config() == self.detection_config())
            if not peer_shares_tracker or self.is_exchange_initiator(peer):
                self.provider.observe_contact(self.node_id, peer.node_id,
                                              self.now)
        same_community = self._same_community_as_peer(peer)
        if same_community:
            mean = self.history.mean_interval(peer.node_id)
            updates: Dict[int, float] = {}
            if mean is not None:
                updates[peer.node_id] = mean
            self.intra_mi.update_own_row(updates, self.now)
        if not isinstance(peer_router, CommunityRouter):
            return
        if not self.is_exchange_initiator(peer):
            return
        if same_community:
            # intra-community MI exchange, restricted to community members;
            # the matrices bump their versions when copied rows actually
            # change, which invalidates the MEMD' caches
            to_me = self.intra_mi.merge_from(peer_router.intra_mi)
            to_peer = peer_router.intra_mi.merge_from(self.intra_mi)
            row_bytes = 8 * len(self.community_members(self.community))
            self.stats.control_exchange(rows=to_me + to_peer,
                                        size_bytes=(to_me + to_peer) * row_bytes)
        else:
            # inter-community contacts exchange only two scalars
            # (ENEC / P_ic summaries), counted as two rows of overhead
            self.stats.control_exchange(rows=2, size_bytes=16)

    # -------------------------------------------------------------------- update
    def _destination_community(self, message: Message) -> int:
        if self.community_mode == "oracle":
            if message.dest_community is not None:
                return int(message.dest_community)
            return self.community_of(message.destination)
        # detected modes resolve through the provider: the dest_community
        # stamped at creation time is the oracle's ground truth, which an
        # online detector must not be allowed to peek at
        return self.community_of(message.destination)

    def on_update(self, now: float) -> None:
        # Algorithm 2 is triggered "when ui meets uj": the buffer is evaluated
        # once per meeting event (see EERRouter for the rationale).
        for connection in self.connections():
            self.send_deliverable(connection)
            peer = connection.other(self.node)
            peer_router = peer.router
            if not isinstance(peer_router, CommunityRouter):
                continue
            if not self.is_first_evaluation(connection):
                continue
            for message in self.buffer.messages():
                if message.destination == peer.node_id:
                    continue
                if self.has_pending_transfer(message.message_id):
                    continue
                residual = message.residual_ttl(now)
                if residual <= 0:
                    continue
                dest_community = self._destination_community(message)
                if self.community != dest_community:
                    self._inter_community_step(connection, peer, peer_router,
                                               message, dest_community, now, residual)
                else:
                    self._intra_community_step(connection, peer, peer_router,
                                               message, now, residual)

    # ------------------------------------------------------------ Algorithm 3
    def _inter_community_step(self, connection: Connection, peer: "DTNNode",
                              peer_router: "CommunityRouter", message: Message,
                              dest_community: int, now: float, residual: float) -> None:
        if self.peer_has(connection, message.message_id):
            return
        if self.community_mode == "oracle":
            peer_in_dest = (peer.community is not None
                            and int(peer.community) == dest_community)
        else:
            peer_in_dest = self.community_of(peer.node_id) == dest_community
        if peer_in_dest:
            # the peer belongs to the destination community: hand everything over
            self.send(connection, message, copies=message.copies, forwarding=True)
            return
        horizon = self.horizon_for(residual)
        if message.copies > 1:
            mine = self.enec(now, horizon)
            theirs = peer_router.enec(now, horizon)
            _, passed = split_replicas(message.copies, mine, theirs)
            if passed >= 1:
                self.send(connection, message, copies=passed, forwarding=False)
        else:
            mine = self.community_probability(dest_community, now, horizon)
            theirs = peer_router.community_probability(dest_community, now, horizon)
            if mine < (1.0 - self.forward_margin) * theirs:
                self.send(connection, message, copies=1, forwarding=True)

    # ------------------------------------------------------------ Algorithm 4
    def _intra_community_step(self, connection: Connection, peer: "DTNNode",
                              peer_router: "CommunityRouter", message: Message,
                              now: float, residual: float) -> None:
        if not self._same_community_as_peer(peer):
            # never push a message back outside its destination community
            return
        if self.peer_has(connection, message.message_id):
            return
        horizon = self.horizon_for(residual)
        if message.copies > 1:
            mine = self.intra_expected_ev(now, horizon)
            theirs = peer_router.intra_expected_ev(now, horizon)
            _, passed = split_replicas(message.copies, mine, theirs)
            if passed >= 1:
                self.send(connection, message, copies=passed, forwarding=False)
        else:
            mine = self.intra_memd_to(message.destination)
            theirs = peer_router.intra_memd_to(message.destination)
            if theirs < (1.0 - self.forward_margin) * mine:
                self.send(connection, message, copies=1, forwarding=True)
