"""The paper's contribution: contact-expectation routing.

* :mod:`repro.core.expectation` — Theorem 1 (expected encounter value),
  Theorem 2 (expected meeting delay) and Theorem 4 (expected number of
  encountering communities), plus the conditional encounter probability they
  all share.
* :mod:`repro.core.replication` — the proportional replica-splitting rule.
* :mod:`repro.core.eer` — the Expected Encounter based Routing protocol
  (Algorithm 1).
* :mod:`repro.core.cr` — the Community based Routing protocol
  (Algorithms 2-4).

The two router classes are exported lazily (PEP 562) so that the substrate
packages (``repro.contacts`` uses Theorem 2 when building MD matrices) can
import the expectation primitives without pulling in the full routing stack.
"""

from repro.core.expectation import (
    OverduePolicy,
    conditional_encounter_probability,
    expected_encounter_value,
    expected_meeting_delay,
    community_encounter_probability,
    expected_num_encountering_communities,
)
from repro.core.replication import split_replicas

__all__ = [
    "OverduePolicy",
    "conditional_encounter_probability",
    "expected_encounter_value",
    "expected_meeting_delay",
    "community_encounter_probability",
    "expected_num_encountering_communities",
    "split_replicas",
    "EERRouter",
    "CommunityRouter",
]


def __getattr__(name):
    if name == "EERRouter":
        from repro.core.eer import EERRouter
        return EERRouter
    if name == "CommunityRouter":
        from repro.core.cr import CommunityRouter
        return CommunityRouter
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
