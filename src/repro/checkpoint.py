"""Versioned checkpoints of live simulation worlds.

A checkpoint captures the *entire* reachable simulation state rooted at the
:class:`~repro.world.world.World` — positions, movement mirrors, connectivity
caches, live connections, router state, buffers, contact histories, community
caches, RNG streams, the event queue, the in-flight stats collector and the
columnar transfer engine (its rows pickle keyed by ``established_seq``, so
mid-transfer byte counts and connection wiring survive a round trip) — so a
long-horizon run can stop at any tick boundary and resume later (in the same
or a fresh process) with **byte-identical** final reports.  The contract is
pinned by the resume-equality harness in :mod:`repro.testing` and documented
in ``docs/checkpointing.md``.

Container format (one ZIP file, extension-agnostic, ``.ckpt`` by convention):

``MANIFEST.json``
    Magic string, format version, payload digests, the simulation clock and
    (optionally) the full embedded :class:`~repro.experiments.scenario.ScenarioConfig`.
``state.pkl``
    Pickle (protocol 5) of the world object graph.  Large numeric arrays are
    *externalized* through pickle persistent ids instead of being inlined.
``arrays/<n>.npy``
    The externalized arrays, one standard NPY entry each.

Every entry is written with a fixed timestamp and in a fixed order, so saving
the same state twice yields byte-identical files; the codec property tests
pin save→load→save byte equality.  All failure modes — truncation, flipped
bytes, missing entries, unknown format versions — surface as the typed
:exc:`CheckpointError`, never as garbage state.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import pickle
import sys
import threading
import zipfile
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.version import __version__

__all__ = [
    "MAGIC", "FORMAT_VERSION", "CheckpointError", "RestoredCheckpoint",
    "encode_array", "decode_array", "encode_state", "decode_state",
    "config_to_payload", "config_from_payload",
    "save_checkpoint", "save_checkpoint_bytes",
    "load_checkpoint", "load_checkpoint_bytes", "read_manifest",
]

#: manifest magic — identifies the container independently of the filename
MAGIC = "repro-checkpoint"
#: bump on any incompatible layout change; readers reject other versions
FORMAT_VERSION = 1
#: arrays with at least this many elements move to their own NPY entry
ARRAY_EXTERNALIZE_THRESHOLD = 32

_MANIFEST_NAME = "MANIFEST.json"
_STATE_NAME = "state.pkl"
_ARRAY_TAG = "repro-array"


class CheckpointError(RuntimeError):
    """Raised for unreadable, corrupted or version-incompatible snapshots."""


@dataclasses.dataclass
class RestoredCheckpoint:
    """A loaded snapshot: the live world plus its manifest metadata."""

    world: Any
    manifest: Dict[str, Any]
    #: the scenario the snapshot was taken from (``None`` if the saver did
    #: not embed one); drives report finalisation on resumed CLI runs
    config: Optional[Any] = None

    @property
    def sim_now(self) -> float:
        """Simulation time the snapshot was taken at."""
        return float(self.manifest["sim_now"])


# ------------------------------------------------------------- array codec
def encode_array(array: np.ndarray) -> bytes:
    """Serialize one numeric array to standard NPY bytes (deterministic)."""
    stream = io.BytesIO()
    np.lib.format.write_array(stream, array, allow_pickle=False)
    return stream.getvalue()


def decode_array(data: bytes) -> np.ndarray:
    """Inverse of :func:`encode_array`; raises :exc:`CheckpointError`.

    The decoded array always *owns* its data (``read_array`` may hand back a
    reshaped view): restored state must be indistinguishable from never-saved
    state, including for a later :func:`encode_state` pass — the externalize
    predicate keys on ``base is None``.
    """
    try:
        array = np.lib.format.read_array(io.BytesIO(data), allow_pickle=False)
    except Exception as error:
        raise CheckpointError(f"corrupted array entry: {error}") from error
    return array if array.base is None else array.copy()


# ------------------------------------------------------------- state codec
class _StatePickler(pickle.Pickler):
    """Protocol-5 pickler that externalizes large numeric base arrays.

    Only arrays that *own* their data (``base is None``) are externalized:
    views pickle inline through their normal copying path, and the world
    restore re-establishes the one aliasing relationship that matters
    (follower position rows, see ``World.__setstate__``).  Repeats of the
    same array object map to the same entry, so shared references survive.
    """

    def __init__(self, stream: io.BytesIO, arrays: List[np.ndarray]) -> None:
        super().__init__(stream, protocol=5)
        self._arrays = arrays
        self._index_of: Dict[int, int] = {}

    def persistent_id(self, obj: Any) -> Optional[Tuple[str, int]]:
        if (type(obj) is np.ndarray and obj.base is None
                and not obj.dtype.hasobject
                and obj.size >= ARRAY_EXTERNALIZE_THRESHOLD):
            index = self._index_of.get(id(obj))
            if index is None:
                index = len(self._arrays)
                self._arrays.append(obj)
                self._index_of[id(obj)] = index
            return (_ARRAY_TAG, index)
        return None


class _StateUnpickler(pickle.Unpickler):
    """Resolves array persistent ids against the loaded entry list.

    Each entry is decoded exactly once by the caller, so two references to
    the same persistent id resolve to the *same* array object — object
    identity (e.g. a detector and a cache sharing one buffer) round-trips.
    """

    def __init__(self, stream: io.BytesIO, arrays: List[np.ndarray]) -> None:
        super().__init__(stream)
        self._arrays = arrays

    def persistent_load(self, pid: Any) -> np.ndarray:
        try:
            tag, index = pid
            if tag == _ARRAY_TAG:
                return self._arrays[index]
        except (TypeError, ValueError, IndexError):
            pass
        raise CheckpointError(f"unresolvable persistent id {pid!r}")


#: worker-thread stack for the state codec.  Virtual reservation — only the
#: pages the pickler actually touches are committed
_CODEC_STACK_BYTES = 512 * 1024 * 1024
_CODEC_RECURSION_LIMIT = 4_000_000


def _call_with_deep_stack(fn: Callable[[], Any]) -> Any:
    """Run *fn* on a thread with a large stack and recursion limit.

    Pickling a world recurses through the live link graph — node →
    connection → peer node → … — so the required depth scales with the
    largest connected component, tens of thousands of frames on the 10k/100k
    scenarios.  Rather than cap the snapshotable world size at the default
    interpreter limits, the codec runs on its own thread with room to spare.
    """
    outcome: List[Any] = []

    def runner() -> None:
        limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(limit, _CODEC_RECURSION_LIMIT))
        try:
            outcome.append((True, fn()))
        except BaseException as error:  # re-raised on the calling thread
            outcome.append((False, error))
        finally:
            sys.setrecursionlimit(limit)

    previous = threading.stack_size(_CODEC_STACK_BYTES)
    try:
        thread = threading.Thread(target=runner, name="repro-checkpoint")
        thread.start()
    finally:
        threading.stack_size(previous)
    thread.join()
    ok, value = outcome[0]
    if not ok:
        raise value
    return value


def encode_state(root: Any) -> Tuple[bytes, List[np.ndarray]]:
    """Pickle *root* with externalized arrays; returns ``(bytes, arrays)``."""
    stream = io.BytesIO()
    arrays: List[np.ndarray] = []
    _call_with_deep_stack(lambda: _StatePickler(stream, arrays).dump(root))
    return stream.getvalue(), arrays


def decode_state(data: bytes, arrays: List[np.ndarray]) -> Any:
    """Inverse of :func:`encode_state`; raises :exc:`CheckpointError`."""
    try:
        return _call_with_deep_stack(
            lambda: _StateUnpickler(io.BytesIO(data), arrays).load())
    except CheckpointError:
        raise
    except Exception as error:
        raise CheckpointError(
            f"snapshot state failed to deserialize: {error}") from error


# ------------------------------------------------------------ config codec
#: ScenarioConfig fields whose tuple values JSON flattens to lists
_TUPLE_FIELDS = ("stop_wait", "message_interval", "trace_window")


def config_to_payload(config: Any) -> Dict[str, Any]:
    """JSON-friendly dict of a :class:`ScenarioConfig` (for the manifest).

    Delegates to :meth:`ScenarioConfig.canonical_payload` — the one
    canonicalization shared with the results store, so a manifest's
    embedded config and a store row serialise a given scenario
    identically.
    """
    return config.canonical_payload()


def config_from_payload(payload: Dict[str, Any]) -> Any:
    """Rebuild the embedded :class:`ScenarioConfig` from manifest JSON."""
    from repro.experiments.scenario import ScenarioConfig

    data = dict(payload)
    for key in _TUPLE_FIELDS:
        if data.get(key) is not None:
            data[key] = tuple(data[key])
    try:
        return ScenarioConfig(**data)
    except (TypeError, ValueError) as error:
        raise CheckpointError(
            f"snapshot carries an invalid scenario config: {error}") from error


# --------------------------------------------------------------- container
def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _write_entry(archive: zipfile.ZipFile, name: str, data: bytes) -> None:
    # fixed timestamp + attributes: the container's bytes depend only on the
    # simulation state, never on the wall clock (save→load→save equality)
    info = zipfile.ZipInfo(name, date_time=(1980, 1, 1, 0, 0, 0))
    info.compress_type = zipfile.ZIP_DEFLATED
    info.external_attr = 0o644 << 16
    archive.writestr(info, data)


def save_checkpoint_bytes(world: Any, *, config: Any = None,
                          metadata: Optional[Dict[str, Any]] = None) -> bytes:
    """Serialize *world* to checkpoint container bytes.

    Parameters
    ----------
    world:
        The live :class:`~repro.world.world.World` (or subclass).  Everything
        reachable from it — simulator, event queue, routers, stats — is
        captured; worker pools and shared-memory segments are dropped and
        lazily recreated on the restored side.
    config:
        Optional :class:`~repro.experiments.scenario.ScenarioConfig` to embed
        in the manifest; required for ``repro run --resume`` (the resumed
        process rebuilds the report from it).
    metadata:
        Optional extra JSON-serializable manifest fields (under ``"user"``).
    """
    state, arrays = encode_state(world)
    blobs = [encode_array(array) for array in arrays]
    digest = hashlib.sha256()
    for blob in blobs:
        digest.update(_sha256(blob).encode("ascii"))
    manifest: Dict[str, Any] = {
        "magic": MAGIC,
        "format_version": FORMAT_VERSION,
        "repro_version": __version__,
        "world_class": type(world).__name__,
        "sim_now": float(world.simulator.now),
        "updates": int(getattr(world, "updates", 0)),
        "num_nodes": int(world.num_nodes),
        "array_count": len(blobs),
        "state_sha256": _sha256(state),
        "arrays_sha256": digest.hexdigest(),
        "config": config_to_payload(config) if config is not None else None,
        # the canonical scenario identity hash (defaults dropped, name/seed
        # excluded) — the same digest the results store dedupes on, so a
        # snapshot can be matched against store rows without re-hashing
        "config_hash": config.config_hash() if config is not None else None,
        "user": metadata or {},
    }
    stream = io.BytesIO()
    with zipfile.ZipFile(stream, "w") as archive:
        _write_entry(archive, _MANIFEST_NAME,
                     json.dumps(manifest, indent=2, sort_keys=True)
                     .encode("utf-8"))
        _write_entry(archive, _STATE_NAME, state)
        for index, blob in enumerate(blobs):
            _write_entry(archive, f"arrays/{index}.npy", blob)
    return stream.getvalue()


def save_checkpoint(world: Any, path: str, *, config: Any = None,
                    metadata: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Write a checkpoint of *world* to *path*; returns the manifest."""
    data = save_checkpoint_bytes(world, config=config, metadata=metadata)
    with open(path, "wb") as handle:
        handle.write(data)
    return json.loads(_read_entry(zipfile.ZipFile(io.BytesIO(data)),
                                  _MANIFEST_NAME).decode("utf-8"))


def _read_entry(archive: zipfile.ZipFile, name: str) -> bytes:
    try:
        return archive.read(name)
    except KeyError:
        raise CheckpointError(
            f"snapshot is missing its {name!r} entry") from None
    except Exception as error:  # bad CRC, truncated stream, zlib errors
        raise CheckpointError(
            f"snapshot entry {name!r} is corrupted: {error}") from error


def _load_manifest(archive: zipfile.ZipFile) -> Dict[str, Any]:
    raw = _read_entry(archive, _MANIFEST_NAME)
    try:
        manifest = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise CheckpointError(f"unreadable snapshot manifest: {error}") from error
    if not isinstance(manifest, dict) or manifest.get("magic") != MAGIC:
        raise CheckpointError(
            "not a repro checkpoint (manifest magic mismatch)")
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint format version {version!r} "
            f"(this build reads version {FORMAT_VERSION})")
    return manifest


def read_manifest(path: str) -> Dict[str, Any]:
    """Read and validate just the manifest of the snapshot at *path*."""
    with _open_archive_file(path) as archive:
        return _load_manifest(archive)


def _open_archive_file(path: str) -> zipfile.ZipFile:
    try:
        return zipfile.ZipFile(path, "r")
    except FileNotFoundError:
        raise CheckpointError(f"no snapshot at {path!r}") from None
    except (OSError, zipfile.BadZipFile) as error:
        raise CheckpointError(
            f"unreadable snapshot {path!r}: {error}") from error


def _load_from_archive(archive: zipfile.ZipFile) -> RestoredCheckpoint:
    manifest = _load_manifest(archive)
    state = _read_entry(archive, _STATE_NAME)
    if _sha256(state) != manifest["state_sha256"]:
        raise CheckpointError(
            "snapshot state checksum mismatch (truncated or corrupted file)")
    digest = hashlib.sha256()
    arrays: List[np.ndarray] = []
    for index in range(int(manifest["array_count"])):
        blob = _read_entry(archive, f"arrays/{index}.npy")
        digest.update(_sha256(blob).encode("ascii"))
        arrays.append(decode_array(blob))
    if digest.hexdigest() != manifest["arrays_sha256"]:
        raise CheckpointError(
            "snapshot array checksum mismatch (truncated or corrupted file)")
    world = decode_state(state, arrays)
    payload = manifest.get("config")
    config = config_from_payload(payload) if payload else None
    return RestoredCheckpoint(world=world, manifest=manifest, config=config)


def load_checkpoint_bytes(data: bytes) -> RestoredCheckpoint:
    """Restore a world from checkpoint container bytes."""
    try:
        archive = zipfile.ZipFile(io.BytesIO(data))
    except zipfile.BadZipFile as error:
        raise CheckpointError(
            f"not a checkpoint container: {error}") from error
    with archive:
        return _load_from_archive(archive)


def load_checkpoint(path: str) -> RestoredCheckpoint:
    """Restore a world from the snapshot file at *path*."""
    with _open_archive_file(path) as archive:
        return _load_from_archive(archive)
