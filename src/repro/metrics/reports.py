"""Per-run summary reports.

A :class:`SimulationReport` is a plain, serialisable snapshot of everything a
benchmark or experiment needs from a finished run: the paper's three metrics
plus the bookkeeping used in the ablations (overhead ratio, control-plane
exchange volume, drops, contacts).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, asdict
from typing import Dict, Optional

import numpy as np

from repro.metrics.collector import StatsCollector


@dataclass
class SimulationReport:
    """Summary of one simulation run."""

    protocol: str
    num_nodes: int
    sim_time: float
    seed: int

    created: int
    delivered: int
    relayed: int
    dropped: int
    expired: int
    aborted: int
    contacts: int

    delivery_ratio: float
    average_latency: float
    goodput: float
    overhead_ratio: float
    average_hop_count: float

    control_rows_exchanged: int
    control_bytes_exchanged: int

    # transfers-phase outcome counters.  Deterministic (identical whatever
    # tick mode produced them — reference loop or TransferEngine — pinned by
    # the engine parity tests), so they stay in the canonical serialisation,
    # unlike the routers split below
    transfers_completed: int = 0
    transfers_aborted: int = 0
    bytes_delivered: int = 0

    # online community-detection compute overhead (zero outside CR's
    # detected modes); seconds are wall-clock and therefore machine-specific
    community_detections: int = 0
    community_detection_seconds: float = 0.0
    community_reassignments: int = 0

    # routers-phase outcome split: Router.update calls run / provably idle
    # skipped / awake no-ops resolved in batch by the SoA sweep.  The split
    # depends on the tick mode (reference loop vs skip-scan vs SoA), so —
    # like the phase timings — it is excluded from the canonical
    # serialisation by default.
    routers_ticked: int = 0
    routers_skipped: int = 0
    routers_batched: int = 0

    latency_percentiles: Dict[str, float] = field(default_factory=dict)
    extra: Dict[str, float] = field(default_factory=dict)

    # accumulated wall-clock seconds per world tick-pipeline phase
    # (move/connectivity/transfers/routers).  Machine- and run-specific, so
    # excluded from the canonical serialisation by default: two runs of the
    # same seed must serialise byte-identically whatever hardware (or phase
    # implementation — serial vs sharded) produced them.
    tick_phase_seconds: Dict[str, float] = field(default_factory=dict)
    # per-phase sample counts (one per executed tick); paired with the
    # seconds above this yields phase throughput in ticks/s.  Excluded from
    # the canonical serialisation for the same reason.
    tick_phase_samples: Dict[str, int] = field(default_factory=dict)

    def as_dict(self, include_timings: bool = False) -> Dict[str, object]:
        """Return a plain-dict representation (JSON-friendly).

        ``include_timings`` keeps the wall-clock ``tick_phase_seconds`` /
        ``tick_phase_samples`` breakdown in the payload; the default drops it
        so serialised reports compare byte-for-byte across machines and
        phase implementations.
        """
        payload = asdict(self)
        if not include_timings:
            payload.pop("tick_phase_seconds")
            payload.pop("tick_phase_samples")
            payload.pop("routers_ticked")
            payload.pop("routers_skipped")
            payload.pop("routers_batched")
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SimulationReport":
        """Rebuild a report from an :meth:`as_dict` payload.

        Accepts both the canonical payload (timings dropped — what the
        results store persists) and the ``include_timings=True`` form;
        missing fields fall back to their dataclass defaults, so payloads
        written before a field existed still load.

        ``from_dict(json.loads(json.dumps(report.as_dict())))`` reproduces
        the canonical payload byte for byte — floats survive a JSON round
        trip exactly — which is what makes store-served sweep results
        byte-identical to freshly simulated ones.
        """
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"report payload has unknown fields: {sorted(unknown)}")
        return cls(**{key: value for key, value in payload.items()})

    def phase_ticks_per_second(self) -> Dict[str, float]:
        """Per-phase throughput (ticks per wall-second), from the timings."""
        rates: Dict[str, float] = {}
        for name, seconds in self.tick_phase_seconds.items():
            samples = self.tick_phase_samples.get(name, 0)
            if samples and seconds > 0:
                rates[name] = samples / seconds
        return rates

    def metric(self, name: str) -> float:
        """Look up a metric by name (``delivery_ratio``/``latency``/``goodput``...)."""
        aliases = {
            "latency": "average_latency",
            "hops": "average_hop_count",
            "overhead": "overhead_ratio",
        }
        name = aliases.get(name, name)
        if hasattr(self, name):
            return float(getattr(self, name))
        if name in self.extra:
            return float(self.extra[name])
        raise KeyError(f"unknown metric {name!r}")


def _latency_percentiles(collector: StatsCollector) -> Dict[str, float]:
    arr = collector.delivered_latencies()
    if not arr.size:
        return {}
    return {
        "p50": float(np.percentile(arr, 50)),
        "p90": float(np.percentile(arr, 90)),
        "p99": float(np.percentile(arr, 99)),
        "max": float(arr.max()),
    }


def build_report(collector: StatsCollector, *, protocol: str, num_nodes: int,
                 sim_time: float, seed: int,
                 extra: Optional[Dict[str, float]] = None) -> SimulationReport:
    """Assemble a :class:`SimulationReport` from a finished run's collector."""
    return SimulationReport(
        protocol=protocol,
        num_nodes=num_nodes,
        sim_time=sim_time,
        seed=seed,
        created=collector.created,
        delivered=collector.delivered,
        relayed=collector.relayed,
        dropped=collector.dropped,
        expired=collector.expired,
        aborted=collector.aborted,
        contacts=collector.contacts,
        delivery_ratio=collector.delivery_ratio,
        average_latency=collector.average_latency,
        goodput=collector.goodput,
        overhead_ratio=collector.overhead_ratio,
        average_hop_count=collector.average_hop_count,
        control_rows_exchanged=collector.control_rows_exchanged,
        control_bytes_exchanged=collector.control_bytes_exchanged,
        transfers_completed=collector.transfers_completed,
        transfers_aborted=collector.transfers_aborted,
        bytes_delivered=collector.bytes_delivered,
        community_detections=collector.community_detections,
        community_detection_seconds=collector.community_detection_seconds,
        community_reassignments=collector.community_reassignments,
        routers_ticked=collector.routers_ticked,
        routers_skipped=collector.routers_skipped,
        routers_batched=collector.routers_batched,
        latency_percentiles=_latency_percentiles(collector),
        extra=dict(extra or {}),
        tick_phase_seconds=dict(collector.tick_phase_seconds),
        tick_phase_samples=dict(collector.tick_phase_samples),
    )
