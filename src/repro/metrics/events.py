"""Immutable records of the simulation events that feed the metrics.

Keeping raw records (rather than only running counters) lets the analysis
layer recompute any derived metric after the fact — e.g. latency percentiles,
per-community delivery ratios, or goodput restricted to a time window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True, slots=True)
class MessageCreated:
    """A new bundle entered the network at its source."""

    message_id: str
    source: int
    destination: int
    size: int
    time: float
    copies: int


@dataclass(frozen=True, slots=True)
class MessageRelayed:
    """A transfer completed: one replica moved from one node to another."""

    message_id: str
    from_node: int
    to_node: int
    time: float
    copies: int
    #: whether the receiving node is the bundle's final destination
    final_delivery: bool


@dataclass(frozen=True, slots=True)
class MessageDelivered:
    """First arrival of a bundle at its destination."""

    message_id: str
    source: int
    destination: int
    created_at: float
    delivered_at: float
    hop_count: int

    @property
    def latency(self) -> float:
        """End-to-end delivery delay in seconds."""
        return self.delivered_at - self.created_at


@dataclass(frozen=True, slots=True)
class MessageDropped:
    """A stored replica was removed without being forwarded."""

    message_id: str
    node: int
    time: float
    #: ``"expired"`` (TTL), ``"buffer"`` (eviction) or ``"delivered"`` (cleanup)
    reason: str


@dataclass(frozen=True, slots=True)
class TransferAborted:
    """An in-flight or queued transfer was cut short by a link going down."""

    message_id: str
    from_node: int
    to_node: int
    time: float
    bytes_left: float


@dataclass(frozen=True, slots=True)
class ContactRecord:
    """One contact (link-up .. link-down interval) between two nodes."""

    node_a: int
    node_b: int
    start: float
    end: Optional[float]

    @property
    def duration(self) -> Optional[float]:
        """Contact duration in seconds, or ``None`` while still active."""
        if self.end is None:
            return None
        return self.end - self.start
