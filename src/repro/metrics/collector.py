"""Event-driven statistics collector.

The world, connections and routers report to a single :class:`StatsCollector`
instance per simulation run.  It keeps both raw event records (see
:mod:`repro.metrics.events`) and the running aggregates needed by the paper's
three metrics.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional

from repro.metrics.events import (
    ContactRecord,
    MessageCreated,
    MessageDelivered,
    MessageDropped,
    MessageRelayed,
    TransferAborted,
)
from repro.net.message import Message


class StatsCollector:
    """Accumulates simulation statistics.

    The collector is deliberately passive: it never mutates simulation state,
    and all of its record-keeping is O(1) per event, so it can stay enabled
    for benchmark runs.
    """

    def __init__(self, keep_records: bool = True) -> None:
        #: whether to keep per-event records (aggregates are always kept)
        self.keep_records = keep_records

        # raw records
        self.created_records: List[MessageCreated] = []
        self.relayed_records: List[MessageRelayed] = []
        self.delivered_records: List[MessageDelivered] = []
        self.dropped_records: List[MessageDropped] = []
        self.aborted_records: List[TransferAborted] = []
        self.contact_records: List[ContactRecord] = []

        # aggregates
        self.created = 0
        self.relayed = 0
        self.delivered = 0
        self.duplicate_deliveries = 0
        self.dropped = 0
        self.expired = 0
        self.aborted = 0
        self.transfers_started = 0
        self.contacts = 0
        self.control_rows_exchanged = 0
        self.control_bytes_exchanged = 0
        self.control_exchanges = 0
        self.latency_sum = 0.0
        self.hop_count_sum = 0

        self._creation_time: Dict[str, float] = {}
        self._delivered_ids: Dict[str, float] = {}
        self._open_contacts: Dict[tuple, float] = {}
        self._per_node_drops: Dict[int, int] = defaultdict(int)

    # ----------------------------------------------------------- message life
    def message_created(self, message: Message) -> None:
        """Record a bundle entering the network."""
        self.created += 1
        self._creation_time[message.message_id] = message.creation_time
        if self.keep_records:
            self.created_records.append(MessageCreated(
                message.message_id, message.source, message.destination,
                message.size, message.creation_time, message.copies))

    def transfer_started(self) -> None:
        """Record a transfer being enqueued on a connection."""
        self.transfers_started += 1

    def message_relayed(self, message: Message, from_node: int, to_node: int,
                        time: float, copies: int, final_delivery: bool) -> None:
        """Record a completed replica transfer (the goodput denominator)."""
        self.relayed += 1
        if self.keep_records:
            self.relayed_records.append(MessageRelayed(
                message.message_id, from_node, to_node, time, copies, final_delivery))

    def message_delivered(self, message: Message, time: float) -> bool:
        """Record an arrival at the destination.

        Returns ``True`` if this was the first delivery of the bundle (only
        first deliveries count toward the delivery ratio and latency).
        """
        if message.message_id in self._delivered_ids:
            self.duplicate_deliveries += 1
            return False
        self._delivered_ids[message.message_id] = time
        self.delivered += 1
        created_at = self._creation_time.get(message.message_id, message.creation_time)
        latency = time - created_at
        self.latency_sum += latency
        self.hop_count_sum += message.hop_count
        if self.keep_records:
            self.delivered_records.append(MessageDelivered(
                message.message_id, message.source, message.destination,
                created_at, time, message.hop_count))
        return True

    def message_dropped(self, message: Message, node: int, time: float,
                        reason: str) -> None:
        """Record a replica leaving a buffer without being forwarded."""
        self.dropped += 1
        if reason == "expired":
            self.expired += 1
        self._per_node_drops[node] += 1
        if self.keep_records:
            self.dropped_records.append(MessageDropped(
                message.message_id, node, time, reason))

    def transfer_aborted(self, message: Message, from_node: int, to_node: int,
                         time: float, bytes_left: float) -> None:
        """Record a transfer interrupted by a link tear-down."""
        self.aborted += 1
        if self.keep_records:
            self.aborted_records.append(TransferAborted(
                message.message_id, from_node, to_node, time, bytes_left))

    # --------------------------------------------------------------- contacts
    def contact_up(self, node_a: int, node_b: int, time: float) -> None:
        """Record a link coming up between two nodes."""
        key = (min(node_a, node_b), max(node_a, node_b))
        self._open_contacts[key] = time
        self.contacts += 1

    def contact_down(self, node_a: int, node_b: int, time: float) -> None:
        """Record a link going down; closes the matching open contact."""
        key = (min(node_a, node_b), max(node_a, node_b))
        start = self._open_contacts.pop(key, None)
        if self.keep_records and start is not None:
            self.contact_records.append(ContactRecord(key[0], key[1], start, time))

    # ---------------------------------------------------------------- control
    def control_exchange(self, rows: int, size_bytes: int = 0) -> None:
        """Record routing-state exchange overhead (MI rows, delivery tables, ...)."""
        self.control_exchanges += 1
        self.control_rows_exchanged += rows
        self.control_bytes_exchanged += size_bytes

    # ------------------------------------------------------------------ query
    def is_delivered(self, message_id: str) -> bool:
        """Whether the bundle has reached its destination at least once."""
        return message_id in self._delivered_ids

    def delivery_time(self, message_id: str) -> Optional[float]:
        """First delivery time of the bundle, or ``None``."""
        return self._delivered_ids.get(message_id)

    def per_node_drops(self) -> Dict[int, int]:
        """Mapping node id -> number of replicas dropped at that node."""
        return dict(self._per_node_drops)

    # -------------------------------------------------------------- metrics
    @property
    def delivery_ratio(self) -> float:
        """Delivered bundles / created bundles (0 when nothing was created)."""
        if self.created == 0:
            return 0.0
        return self.delivered / self.created

    @property
    def average_latency(self) -> float:
        """Mean end-to-end delay of first deliveries (0 when none)."""
        if self.delivered == 0:
            return 0.0
        return self.latency_sum / self.delivered

    @property
    def goodput(self) -> float:
        """Delivered bundles / relayed replicas (the paper's goodput)."""
        if self.relayed == 0:
            return 0.0
        return self.delivered / self.relayed

    @property
    def overhead_ratio(self) -> float:
        """(relayed - delivered) / delivered — the ONE simulator's overhead."""
        if self.delivered == 0:
            return float("inf") if self.relayed > 0 else 0.0
        return (self.relayed - self.delivered) / self.delivered

    @property
    def average_hop_count(self) -> float:
        """Mean hop count over first deliveries."""
        if self.delivered == 0:
            return 0.0
        return self.hop_count_sum / self.delivered
