"""Event-driven statistics collector.

The world, connections and routers report to a single :class:`StatsCollector`
instance per simulation run.  It keeps both raw event records (see
:mod:`repro.metrics.events`) and the running aggregates needed by the paper's
three metrics.

Record keeping has three modes (:class:`RecordMode`):

* ``lists`` — the historical default: one frozen dataclass per event,
  appended to per-type Python lists.
* ``columnar`` — per-event *fields* appended to growable NumPy column stores
  (:mod:`repro.metrics.columns`).  The ``*_records`` properties materialize
  dataclass lists on demand, so the API is unchanged, but million-event
  sweeps stop allocating an object per relay and the analysis layer can read
  whole columns without touching records.
* ``off`` — aggregates only (the old ``keep_records=False``).

All three modes produce identical aggregates and derived metrics; the
collector-mode parity tests pin that.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from typing import Dict, List, Optional, Union

import numpy as np

from repro.metrics.columns import ColumnTable
from repro.metrics.events import (
    ContactRecord,
    MessageCreated,
    MessageDelivered,
    MessageDropped,
    MessageRelayed,
    TransferAborted,
)
from repro.net.message import Message


class RecordMode(enum.Enum):
    """How (and whether) per-event records are kept."""

    OFF = "off"
    LISTS = "lists"
    COLUMNAR = "columnar"


def _resolve_mode(keep_records: bool, columnar: bool,
                  mode: Union[RecordMode, str, None]) -> RecordMode:
    if mode is not None:
        return RecordMode(mode)
    if not keep_records:
        return RecordMode.OFF
    return RecordMode.COLUMNAR if columnar else RecordMode.LISTS


#: column layouts per event type, in dataclass-field order
_TABLE_SPECS = {
    "created": ((("message_id", "object"), ("source", "i8"),
                 ("destination", "i8"), ("size", "i8"), ("time", "f8"),
                 ("copies", "i8")), MessageCreated),
    "relayed": ((("message_id", "object"), ("from_node", "i8"),
                 ("to_node", "i8"), ("time", "f8"), ("copies", "i8"),
                 ("final_delivery", "?")), MessageRelayed),
    "delivered": ((("message_id", "object"), ("source", "i8"),
                   ("destination", "i8"), ("created_at", "f8"),
                   ("delivered_at", "f8"), ("hop_count", "i8")),
                  MessageDelivered),
    "dropped": ((("message_id", "object"), ("node", "i8"), ("time", "f8"),
                 ("reason", "object")), MessageDropped),
    "aborted": ((("message_id", "object"), ("from_node", "i8"),
                 ("to_node", "i8"), ("time", "f8"), ("bytes_left", "f8")),
                TransferAborted),
    "contacts": ((("node_a", "i8"), ("node_b", "i8"), ("start", "f8"),
                  ("end", "f8")), ContactRecord),
}


class StatsCollector:
    """Accumulates simulation statistics.

    The collector is deliberately passive: it never mutates simulation state,
    and all of its record-keeping is O(1) per event, so it can stay enabled
    for benchmark runs.

    Parameters
    ----------
    keep_records:
        ``False`` disables per-event records entirely (aggregates are always
        kept); shorthand for ``mode="off"``.
    columnar:
        Use the columnar store instead of per-event dataclass lists;
        shorthand for ``mode="columnar"``.
    mode:
        Explicit :class:`RecordMode` (or its string value); overrides the two
        boolean shorthands.
    """

    def __init__(self, keep_records: bool = True, columnar: bool = False,
                 mode: Union[RecordMode, str, None] = None) -> None:
        self.record_mode = _resolve_mode(keep_records, columnar, mode)

        self._lists: Dict[str, list] = {name: [] for name in _TABLE_SPECS}
        self._tables: Dict[str, ColumnTable] = {}
        if self.record_mode is RecordMode.COLUMNAR:
            self._tables = {name: ColumnTable(fields, record_type)
                            for name, (fields, record_type) in
                            _TABLE_SPECS.items()}

        # aggregates
        self.created = 0
        self.relayed = 0
        self.delivered = 0
        self.duplicate_deliveries = 0
        self.dropped = 0
        self.expired = 0
        self.aborted = 0
        self.transfers_started = 0
        # transfers-phase outcome counters (deterministic, part of canonical
        # reports): completed replica transfers and the payload bytes they
        # moved.  transfers_completed tracks `relayed` today but is kept as
        # its own counter so the transfers phase stays auditable if relay
        # accounting ever diverges (e.g. control-plane transfers)
        self.transfers_completed = 0
        self.bytes_delivered = 0
        self.contacts = 0
        self.control_rows_exchanged = 0
        self.control_bytes_exchanged = 0
        self.control_exchanges = 0
        # community-detection compute overhead (CR's detected modes; all zero
        # for oracle mode and every non-community protocol)
        self.community_detections = 0
        self.community_detection_seconds = 0.0
        self.community_reassignments = 0
        # per-phase wall time of the world tick pipeline (phase name ->
        # accumulated seconds / sample count); machine-specific, kept out of
        # the deterministic metric comparisons
        self.tick_phase_seconds: Dict[str, float] = {}
        self.tick_phase_samples: Dict[str, int] = {}
        # routers-phase outcome split (see World._update_routers): real
        # Router.update calls run, provably idle routers skipped, and awake
        # no-ops the SoA sweep resolved in batch.  Mode-dependent meters
        # like the phase timings, excluded from deterministic comparisons
        self.routers_ticked = 0
        self.routers_skipped = 0
        self.routers_batched = 0
        self.latency_sum = 0.0
        self.hop_count_sum = 0

        self._creation_time: Dict[str, float] = {}
        self._delivered_ids: Dict[str, float] = {}
        self._open_contacts: Dict[tuple, float] = {}
        self._per_node_drops: Dict[int, int] = defaultdict(int)

    @property
    def keep_records(self) -> bool:
        """Whether any per-event records are kept (derived from the mode).

        Read-only: record keeping was historically toggled by assigning this
        flag, which would now silently do nothing — pick the mode at
        construction time instead (``StatsCollector(mode=...)``).
        """
        return self.record_mode is not RecordMode.OFF

    # ------------------------------------------------------------ record views
    def _records(self, name: str) -> list:
        table = self._tables.get(name)
        if table is not None:
            return table.materialize()
        return self._lists[name]

    @property
    def created_records(self) -> List[MessageCreated]:
        """Recorded :class:`MessageCreated` events (materialized on demand)."""
        return self._records("created")

    @property
    def relayed_records(self) -> List[MessageRelayed]:
        """Recorded :class:`MessageRelayed` events (materialized on demand)."""
        return self._records("relayed")

    @property
    def delivered_records(self) -> List[MessageDelivered]:
        """Recorded :class:`MessageDelivered` events (materialized on demand)."""
        return self._records("delivered")

    @property
    def dropped_records(self) -> List[MessageDropped]:
        """Recorded :class:`MessageDropped` events (materialized on demand)."""
        return self._records("dropped")

    @property
    def aborted_records(self) -> List[TransferAborted]:
        """Recorded :class:`TransferAborted` events (materialized on demand)."""
        return self._records("aborted")

    @property
    def contact_records(self) -> List[ContactRecord]:
        """Recorded :class:`ContactRecord` events (materialized on demand)."""
        return self._records("contacts")

    def record_columns(self, name: str) -> Dict[str, np.ndarray]:
        """Raw column arrays for one event type (columnar mode only).

        *name* is one of ``created``, ``relayed``, ``delivered``,
        ``dropped``, ``aborted``, ``contacts``.
        """
        table = self._tables.get(name)
        if table is None:
            raise RuntimeError(
                "record_columns requires RecordMode.COLUMNAR "
                f"(collector is in mode {self.record_mode.value!r})")
        return table.columns()

    def record_storage_bytes(self) -> int:
        """Approximate bytes retained by the per-event record storage.

        Counts container overhead plus per-record objects (lists mode) or
        column buffers (columnar mode); string payloads are excluded in both
        modes since message-id objects are shared with the live messages.
        The benchmark harness reports this as the columnar mode's footprint
        advantage.
        """
        import sys as _sys

        total = 0
        if self.record_mode is RecordMode.COLUMNAR:
            for table in self._tables.values():
                for (name, dtype), column in zip(table.fields, table._columns):
                    if isinstance(column, list):
                        total += _sys.getsizeof(column)
                    else:
                        total += column._data.nbytes
            return total
        if self.record_mode is RecordMode.LISTS:
            for records in self._lists.values():
                total += _sys.getsizeof(records)
                if records:
                    sample = records[:256]
                    per_record = sum(_sys.getsizeof(r) for r in sample) / len(sample)
                    total += int(per_record * len(records))
            return total
        return 0

    def delivered_latencies(self) -> np.ndarray:
        """End-to-end latencies of first deliveries, as one array.

        Reads the columnar store directly when available (no record
        materialization); empty when records are off.
        """
        table = self._tables.get("delivered")
        if table is not None:
            return table.column("delivered_at") - table.column("created_at")
        return np.asarray([rec.latency for rec in self._lists["delivered"]],
                          dtype=float)

    # ----------------------------------------------------------- message life
    def message_created(self, message: Message) -> None:
        """Record a bundle entering the network."""
        self.created += 1
        self._creation_time[message.message_id] = message.creation_time
        if self.record_mode is RecordMode.LISTS:
            self._lists["created"].append(MessageCreated(
                message.message_id, message.source, message.destination,
                message.size, message.creation_time, message.copies))
        elif self.record_mode is RecordMode.COLUMNAR:
            self._tables["created"].append(
                message.message_id, message.source, message.destination,
                message.size, message.creation_time, message.copies)

    def transfer_started(self) -> None:
        """Record a transfer being enqueued on a connection."""
        self.transfers_started += 1

    def transfer_completed(self, message: Message) -> None:
        """Record a transfer draining to completion (payload fully moved)."""
        self.transfers_completed += 1
        self.bytes_delivered += int(message.size)

    @property
    def transfers_aborted(self) -> int:
        """Alias of ``aborted`` under the transfers-phase naming."""
        return self.aborted

    def message_relayed(self, message: Message, from_node: int, to_node: int,
                        time: float, copies: int, final_delivery: bool) -> None:
        """Record a completed replica transfer (the goodput denominator)."""
        self.relayed += 1
        if self.record_mode is RecordMode.LISTS:
            self._lists["relayed"].append(MessageRelayed(
                message.message_id, from_node, to_node, time, copies,
                final_delivery))
        elif self.record_mode is RecordMode.COLUMNAR:
            self._tables["relayed"].append(
                message.message_id, from_node, to_node, time, copies,
                final_delivery)

    def message_delivered(self, message: Message, time: float) -> bool:
        """Record an arrival at the destination.

        Returns ``True`` if this was the first delivery of the bundle (only
        first deliveries count toward the delivery ratio and latency).
        """
        if message.message_id in self._delivered_ids:
            self.duplicate_deliveries += 1
            return False
        self._delivered_ids[message.message_id] = time
        self.delivered += 1
        created_at = self._creation_time.get(message.message_id, message.creation_time)
        latency = time - created_at
        self.latency_sum += latency
        self.hop_count_sum += message.hop_count
        if self.record_mode is RecordMode.LISTS:
            self._lists["delivered"].append(MessageDelivered(
                message.message_id, message.source, message.destination,
                created_at, time, message.hop_count))
        elif self.record_mode is RecordMode.COLUMNAR:
            self._tables["delivered"].append(
                message.message_id, message.source, message.destination,
                created_at, time, message.hop_count)
        return True

    def message_dropped(self, message: Message, node: int, time: float,
                        reason: str) -> None:
        """Record a replica leaving a buffer without being forwarded."""
        self.dropped += 1
        if reason == "expired":
            self.expired += 1
        self._per_node_drops[node] += 1
        if self.record_mode is RecordMode.LISTS:
            self._lists["dropped"].append(MessageDropped(
                message.message_id, node, time, reason))
        elif self.record_mode is RecordMode.COLUMNAR:
            self._tables["dropped"].append(message.message_id, node, time, reason)

    def transfer_aborted(self, message: Message, from_node: int, to_node: int,
                         time: float, bytes_left: float) -> None:
        """Record a transfer interrupted by a link tear-down."""
        self.aborted += 1
        if self.record_mode is RecordMode.LISTS:
            self._lists["aborted"].append(TransferAborted(
                message.message_id, from_node, to_node, time, bytes_left))
        elif self.record_mode is RecordMode.COLUMNAR:
            self._tables["aborted"].append(
                message.message_id, from_node, to_node, time, bytes_left)

    # --------------------------------------------------------------- contacts
    def contact_up(self, node_a: int, node_b: int, time: float) -> None:
        """Record a link coming up between two nodes."""
        key = (min(node_a, node_b), max(node_a, node_b))
        self._open_contacts[key] = time
        self.contacts += 1

    def contact_down(self, node_a: int, node_b: int, time: float) -> None:
        """Record a link going down; closes the matching open contact."""
        key = (min(node_a, node_b), max(node_a, node_b))
        start = self._open_contacts.pop(key, None)
        if start is None:
            return
        if self.record_mode is RecordMode.LISTS:
            self._lists["contacts"].append(
                ContactRecord(key[0], key[1], start, time))
        elif self.record_mode is RecordMode.COLUMNAR:
            self._tables["contacts"].append(key[0], key[1], start, time)

    def contact_up_batch(self, keys: List[tuple], time: float) -> None:
        """Record one tick's batch of link-ups (already canonical pairs).

        *keys* are ``(id_lo, id_hi)`` tuples in the world's sorted event
        order.  Equivalent to calling :meth:`contact_up` per pair; the batch
        form exists so the world's link bookkeeping makes one collector call
        per tick instead of one per link.
        """
        open_contacts = self._open_contacts
        for key in keys:
            open_contacts[key] = time
        self.contacts += len(keys)

    def contact_down_batch(self, keys: List[tuple], time: float) -> None:
        """Record one tick's batch of link-downs (already canonical pairs).

        Equivalent to calling :meth:`contact_down` per pair in order —
        unmatched pairs are skipped the same way — but in columnar mode the
        surviving records land in the column store via one vectorized
        ``extend`` per column instead of a per-event append.
        """
        open_contacts = self._open_contacts
        if self.record_mode is RecordMode.OFF:
            for key in keys:
                open_contacts.pop(key, None)
            return
        closed: List[tuple] = []
        starts: List[float] = []
        for key in keys:
            start = open_contacts.pop(key, None)
            if start is not None:
                closed.append(key)
                starts.append(start)
        if not closed:
            return
        if self.record_mode is RecordMode.LISTS:
            records = self._lists["contacts"]
            for key, start in zip(closed, starts):
                records.append(ContactRecord(key[0], key[1], start, time))
        else:
            self._tables["contacts"].extend(
                [key[0] for key in closed], [key[1] for key in closed],
                starts, [time] * len(closed))

    # ---------------------------------------------------------------- control
    def control_exchange(self, rows: int, size_bytes: int = 0) -> None:
        """Record routing-state exchange overhead (MI rows, delivery tables, ...)."""
        self.control_exchanges += 1
        self.control_rows_exchanged += rows
        self.control_bytes_exchanged += size_bytes

    def community_detection(self, seconds: float, reassigned: int = 0) -> None:
        """Record one online community-detection run.

        Parameters
        ----------
        seconds:
            Wall-clock cost of the detection (compute overhead; kept separate
            from the message-count metrics so checksum comparisons can ignore
            it).
        reassigned:
            How many nodes changed community relative to the previous
            assignment.
        """
        self.community_detections += 1
        self.community_detection_seconds += float(seconds)
        self.community_reassignments += int(reassigned)

    def tick_phase(self, name: str, seconds: float) -> None:
        """Record one wall-clock sample of a world tick-pipeline phase.

        Called once per phase per world update by
        :class:`~repro.world.pipeline.TickPipeline`.  Accumulated seconds are
        compute *observability* (like :meth:`community_detection`'s seconds):
        they feed the phase-time reporting and the world-tick benchmarks, and
        are excluded from deterministic result comparisons.
        """
        self.tick_phase_seconds[name] = (
            self.tick_phase_seconds.get(name, 0.0) + float(seconds))
        self.tick_phase_samples[name] = self.tick_phase_samples.get(name, 0) + 1

    def router_sweep(self, ticked: int, skipped: int, batched: int = 0) -> None:
        """Record one routers-phase outcome split.

        Called once per world update by ``World._update_routers`` in every
        mode (reference loop, per-router skip-scan, SoA sweep); the three
        counts sum to the node count per tick.  Observability like
        :meth:`tick_phase` — the split depends on the tick mode, so it is
        excluded from deterministic result comparisons.
        """
        self.routers_ticked += int(ticked)
        self.routers_skipped += int(skipped)
        self.routers_batched += int(batched)

    # ------------------------------------------------------------------ query
    def is_delivered(self, message_id: str) -> bool:
        """Whether the bundle has reached its destination at least once."""
        return message_id in self._delivered_ids

    def delivery_time(self, message_id: str) -> Optional[float]:
        """First delivery time of the bundle, or ``None``."""
        return self._delivered_ids.get(message_id)

    def per_node_drops(self) -> Dict[int, int]:
        """Mapping node id -> number of replicas dropped at that node."""
        return dict(self._per_node_drops)

    # -------------------------------------------------------------- metrics
    @property
    def delivery_ratio(self) -> float:
        """Delivered bundles / created bundles (0 when nothing was created)."""
        if self.created == 0:
            return 0.0
        return self.delivered / self.created

    @property
    def average_latency(self) -> float:
        """Mean end-to-end delay of first deliveries (0 when none)."""
        if self.delivered == 0:
            return 0.0
        return self.latency_sum / self.delivered

    @property
    def goodput(self) -> float:
        """Delivered bundles / relayed replicas (the paper's goodput)."""
        if self.relayed == 0:
            return 0.0
        return self.delivered / self.relayed

    @property
    def overhead_ratio(self) -> float:
        """(relayed - delivered) / delivered — the ONE simulator's overhead."""
        if self.delivered == 0:
            return float("inf") if self.relayed > 0 else 0.0
        return (self.relayed - self.delivered) / self.delivered

    @property
    def average_hop_count(self) -> float:
        """Mean hop count over first deliveries."""
        if self.delivered == 0:
            return 0.0
        return self.hop_count_sum / self.delivered
