"""Growable column stores for the columnar metrics mode.

Million-event sweeps should not allocate one frozen dataclass per relay: in
columnar mode the :class:`~repro.metrics.collector.StatsCollector` appends
each event's fields to a :class:`ColumnTable` — numeric fields land in
preallocated, geometrically grown NumPy arrays; string fields (message ids)
in plain Python lists.  The record dataclasses are materialized on demand
only when somebody actually reads a ``*_records`` list, and analysis code
can skip materialization entirely via :meth:`ColumnTable.column`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np


class _Growable:
    """An append-only 1-D array with amortized O(1) appends."""

    __slots__ = ("_data", "_n")

    _INITIAL = 64

    def __init__(self, dtype) -> None:
        self._data = np.empty(self._INITIAL, dtype=dtype)
        self._n = 0

    def append(self, value) -> None:
        data = self._data
        n = self._n
        if n == len(data):
            grown = np.empty(2 * len(data), dtype=data.dtype)
            grown[:n] = data
            self._data = grown
            data = grown
        data[n] = value
        self._n = n + 1

    def extend(self, values) -> None:
        """Append a whole batch in one vectorized copy."""
        values = np.asarray(values, dtype=self._data.dtype)
        n = self._n
        needed = n + len(values)
        if needed > len(self._data):
            capacity = len(self._data)
            while capacity < needed:
                capacity *= 2
            grown = np.empty(capacity, dtype=self._data.dtype)
            grown[:n] = self._data[:n]
            self._data = grown
        self._data[n:needed] = values
        self._n = needed

    def __len__(self) -> int:
        return self._n

    def array(self) -> np.ndarray:
        """Read-only view of the appended values (no copy)."""
        return self._data[:self._n]


class ColumnTable:
    """One event type's columns plus on-demand record materialization.

    Parameters
    ----------
    fields:
        ``(name, dtype)`` pairs in record-field order.  ``dtype`` is a NumPy
        dtype string (``"f8"``, ``"i8"``, ``"?"``) or ``"object"`` for string
        columns (kept as Python lists — ids are shared, not copied).
    record_type:
        The dataclass to materialize rows into.
    """

    __slots__ = ("fields", "record_type", "_columns", "_materialized")

    def __init__(self, fields: Sequence[Tuple[str, str]],
                 record_type: Callable) -> None:
        self.fields = tuple(fields)
        self.record_type = record_type
        self._columns: List = [
            [] if dtype == "object" else _Growable(dtype)
            for _, dtype in self.fields]
        #: memoized (row_count, records) of the last materialization
        self._materialized: Tuple[int, List] = (-1, [])

    def append(self, *values) -> None:
        """Append one row; *values* in field order."""
        for column, value in zip(self._columns, values):
            column.append(value)

    def extend(self, *column_batches) -> None:
        """Append many rows at once; *column_batches* in field order.

        Each element is one column's worth of new values (array or sequence,
        all the same length).  Numeric columns take one vectorized copy each
        instead of a Python-level append per row — this is the bulk path the
        world's batched link bookkeeping feeds a whole tick's contact events
        through.
        """
        for column, batch in zip(self._columns, column_batches):
            # both list (object columns) and _Growable expose extend()
            column.extend(batch)

    def __len__(self) -> int:
        return len(self._columns[0]) if self._columns else 0

    def column(self, name: str) -> np.ndarray:
        """One column as an array (numeric: zero-copy view; object: copy)."""
        for (field, dtype), column in zip(self.fields, self._columns):
            if field == name:
                if dtype == "object":
                    return np.asarray(column, dtype=object)
                return column.array()
        raise KeyError(f"unknown column {name!r}")

    def columns(self) -> Dict[str, np.ndarray]:
        """All columns by name."""
        return {name: self.column(name) for name, _ in self.fields}

    def materialize(self) -> List:
        """Build the record list (one dataclass per row) on demand.

        Memoized on the row count (columns are append-only), so repeated
        ``*_records`` reads — including per-element indexing in a loop — pay
        the dataclass construction once per batch of appends.
        """
        count = len(self)
        cached_count, cached = self._materialized
        if cached_count == count:
            return cached
        raw = [column if isinstance(column, list) else column.array().tolist()
               for column in self._columns]
        records = [self.record_type(*row) for row in zip(*raw)]
        self._materialized = (count, records)
        return records
