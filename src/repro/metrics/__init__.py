"""Statistics collection and the paper's evaluation metrics."""

from repro.metrics.events import (
    MessageCreated,
    MessageRelayed,
    MessageDelivered,
    MessageDropped,
    TransferAborted,
    ContactRecord,
)
from repro.metrics.collector import StatsCollector
from repro.metrics.reports import SimulationReport, build_report

__all__ = [
    "MessageCreated",
    "MessageRelayed",
    "MessageDelivered",
    "MessageDropped",
    "TransferAborted",
    "ContactRecord",
    "StatsCollector",
    "SimulationReport",
    "build_report",
]
