"""Synthetic "downtown" road-map generation.

The paper drives its evaluation with bus lines over the downtown Helsinki map
bundled with the ONE simulator.  That map is not redistributable here, so we
generate a structurally similar substitute: a dense grid of streets with a
sprinkling of diagonal short-cuts and a few removed blocks, covering roughly
the same extent (about 4.5 km x 3.4 km for the Helsinki downtown area).  What
matters for the routing protocols is that bus routes overlap and induce
recurring, semi-periodic contacts — which any connected downtown-style grid
provides — not the exact street geometry.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.mobility.roadmap import RoadMap


def generate_downtown_map(width: float = 4500.0, height: float = 3400.0,
                          spacing: float = 300.0, diagonal_prob: float = 0.15,
                          removal_prob: float = 0.05,
                          seed: int = 0) -> RoadMap:
    """Generate a connected downtown-style road map.

    Parameters
    ----------
    width, height:
        Extent of the map in metres.
    spacing:
        Street-grid spacing in metres.
    diagonal_prob:
        Probability of adding a diagonal short-cut across a block.
    removal_prob:
        Probability of removing a non-critical street segment (adds
        irregularity).  Removals that would disconnect the map are undone.
    seed:
        RNG seed; the same seed always yields the same map.

    Returns
    -------
    RoadMap
        A connected road graph spanning the requested extent.
    """
    if spacing <= 0:
        raise ValueError("spacing must be positive")
    if width < spacing or height < spacing:
        raise ValueError("map extent must be at least one grid cell")
    rng = random.Random(seed)
    roadmap = RoadMap()

    cols = int(round(width / spacing)) + 1
    rows = int(round(height / spacing)) + 1
    index: Dict[Tuple[int, int], int] = {}
    for r in range(rows):
        for c in range(cols):
            # jitter interior vertices slightly so streets are not perfectly
            # axis-aligned (mirrors a real downtown's irregularity)
            jitter_x = rng.uniform(-0.15, 0.15) * spacing if 0 < c < cols - 1 else 0.0
            jitter_y = rng.uniform(-0.15, 0.15) * spacing if 0 < r < rows - 1 else 0.0
            vid = roadmap.add_vertex(c * spacing + jitter_x, r * spacing + jitter_y)
            index[(r, c)] = vid

    # grid edges
    edges: List[Tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((index[(r, c)], index[(r, c + 1)]))
            if r + 1 < rows:
                edges.append((index[(r, c)], index[(r + 1, c)]))
    for u, v in edges:
        roadmap.add_edge(u, v)

    # diagonal short-cuts
    for r in range(rows - 1):
        for c in range(cols - 1):
            if rng.random() < diagonal_prob:
                if rng.random() < 0.5:
                    roadmap.add_edge(index[(r, c)], index[(r + 1, c + 1)])
                else:
                    roadmap.add_edge(index[(r, c + 1)], index[(r + 1, c)])

    # random street removals that keep the map connected
    if removal_prob > 0:
        for u, v in edges:
            if rng.random() < removal_prob:
                length = roadmap._adjacency[u].pop(v, None)
                roadmap._adjacency[v].pop(u, None)
                if length is not None and not roadmap.is_connected():
                    # undo a removal that disconnected the map
                    roadmap._adjacency[u][v] = length
                    roadmap._adjacency[v][u] = length
    return roadmap


def assign_districts(roadmap: RoadMap, num_districts: int,
                     grid: Optional[Tuple[int, int]] = None) -> Dict[int, int]:
    """Partition map vertices into spatial districts.

    Districts are axis-aligned blocks of the bounding box (``grid`` gives the
    number of blocks per axis; by default a near-square factorisation of
    ``num_districts`` is used).  Districts double as the *communities* the CR
    protocol exploits: each bus line is generated mostly within one district,
    so intra-district contact rates are much higher than inter-district ones.

    Returns
    -------
    dict
        Mapping of vertex id -> district id in ``range(num_districts)``.
    """
    if num_districts < 1:
        raise ValueError("need at least one district")
    if grid is None:
        gx = int(np.ceil(np.sqrt(num_districts)))
        gy = int(np.ceil(num_districts / gx))
    else:
        gx, gy = grid
        if gx * gy < num_districts:
            raise ValueError("grid too small for the requested number of districts")
    min_x, min_y, max_x, max_y = roadmap.bounds()
    span_x = max(max_x - min_x, 1e-9)
    span_y = max(max_y - min_y, 1e-9)
    assignment: Dict[int, int] = {}
    for v in range(roadmap.num_vertices):
        x, y = roadmap.coordinates(v)
        cx = min(gx - 1, int((x - min_x) / span_x * gx))
        cy = min(gy - 1, int((y - min_y) / span_y * gy))
        district = (cy * gx + cx) % num_districts
        assignment[v] = district
    return assignment


def district_vertices(assignment: Dict[int, int]) -> Dict[int, List[int]]:
    """Invert a vertex->district assignment into district -> vertex list."""
    result: Dict[int, List[int]] = {}
    for vertex, district in assignment.items():
        result.setdefault(district, []).append(vertex)
    return result
