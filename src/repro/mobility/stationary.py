"""Stationary "movement" for fixed infrastructure nodes and unit tests."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.mobility.base import MovementModel
from repro.mobility.path import Path


class StationaryMovement(MovementModel):
    """A node that never moves from its configured position."""

    def __init__(self, position: Sequence[float]) -> None:
        self._position = np.asarray(position, dtype=float)
        if self._position.shape != (2,):
            raise ValueError("position must be a 2-D point")

    def initial_position(self, rng) -> np.ndarray:
        return self._position.copy()

    def next_path(self, position: np.ndarray, now: float, rng) -> Optional[Path]:
        return None
