"""Movement-model interface and the per-node path follower."""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.mobility.path import Path


class MovementModel(abc.ABC):
    """Produces an initial position and a stream of paths for one node.

    A model instance is bound to a single node (so it may keep per-node state
    such as the current stop index on a bus line).  All randomness must come
    from the :class:`random.Random` passed in, so runs are reproducible.
    """

    @abc.abstractmethod
    def initial_position(self, rng) -> np.ndarray:
        """Return the node's starting position."""

    @abc.abstractmethod
    def next_path(self, position: np.ndarray, now: float, rng) -> Optional[Path]:
        """Return the next path to follow from *position*.

        Returning ``None`` means the node stays put indefinitely (stationary
        models and trace replay use this).
        """

    @property
    def community(self) -> Optional[int]:
        """Community id implied by the movement model, if any.

        Map-route and community movement models know which district/community
        their node belongs to; other models return ``None``.
        """
        return None

    @property
    def supports_batch_advance(self) -> bool:
        """Whether followers of this model may be advanced by the batch kernel.

        ``True`` opts the model's nodes into
        :class:`~repro.mobility.engine.MovementEngine`'s vectorized
        advance (bit-identical to the per-follower loop, see engine.py for
        the contract); ``False`` (the default) keeps them on the exact
        per-follower ``move`` loop.  A model should only opt in if its paths
        are plain constant-speed :class:`~repro.mobility.path.Path` objects
        driven exclusively through the follower (no external path mutation).
        """
        return False


class PathFollower:
    """Drives one node's position by consuming paths from a movement model.

    Parameters
    ----------
    model:
        The node's movement model.
    rng:
        Node-specific :class:`random.Random`.

    The follower's :attr:`position` is one persistent ``(2,)`` float64 array
    that is mutated in place.  By default the follower owns it; once the node
    is registered with a world, :meth:`bind` re-points it at the node's row
    view of the world's :class:`~repro.world.positions.PositionStore`, so the
    world-wide position matrix updates as a side effect of movement with no
    per-tick gathering.
    """

    def __init__(self, model: MovementModel, rng) -> None:
        self.model = model
        self._rng = rng
        self._position = np.array(model.initial_position(rng), dtype=float)
        self._path: Optional[Path] = None
        self._halted = False
        # batch-advance bookkeeping (set by MovementEngine.register)
        self._engine = None
        self._engine_slot = -1

    @property
    def position(self) -> np.ndarray:
        """The node's live position (mutated in place as the node moves)."""
        return self._position

    @position.setter
    def position(self, value) -> None:
        self._position[:] = value

    def bind(self, storage: np.ndarray) -> None:
        """Re-point :attr:`position` at *storage* (a ``(2,)`` writable view).

        The current position is copied in, so binding is transparent to the
        movement state.
        """
        storage[:] = self._position
        self._position = storage

    @property
    def halted(self) -> bool:
        """Whether the model declined to provide further paths."""
        return self._halted

    @property
    def path(self) -> Optional[Path]:
        """The path currently being followed (``None`` before the first and
        after the last one)."""
        return self._path

    def attach_engine(self, engine, slot: int) -> None:
        """Bind this follower to a batch movement engine slot.

        From here on, any out-of-band state change (today: :meth:`teleport`)
        notifies the engine so it re-reads the follower's path state before
        the next batch advance.
        """
        self._engine = engine
        self._engine_slot = int(slot)

    def move(self, dt: float, now: float) -> np.ndarray:
        """Advance the node by *dt* seconds and return the new position."""
        position = self._position
        path = self._path
        # hot path: still travelling along the current path
        if path is not None and not path.done:
            remaining = path.advance_into(dt, position)
            if remaining <= 0:
                return position
        else:
            remaining = float(dt)
        # A tiny guard avoids infinite loops if a model returns zero-length,
        # zero-wait paths forever.
        for _ in range(64):
            if remaining <= 0 or self._halted:
                break
            if self._path is None or self._path.done:
                self._path = self.model.next_path(position, now, self._rng)
                if self._path is None:
                    self._halted = True
                    break
            remaining = self._path.advance_into(remaining, position)
        return position

    def teleport(self, position: np.ndarray) -> None:
        """Force the node to *position* and drop the current path."""
        self._position[:] = np.asarray(position, dtype=float)
        self._path = None
        self._halted = False
        if self._engine is not None:
            self._engine.invalidate(self._engine_slot)
