"""Community-structured mobility.

Nodes belong to communities with spatial *home districts*: most waypoints are
drawn inside the home district, occasionally the node roams anywhere.  This is
the standard synthetic way of producing the "contact frequency within a
community is much higher than across communities" structure the paper's CR
protocol exploits (Section IV-A), and it lets the community machinery be
exercised independently of the bus-line scenario.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.mobility.base import MovementModel
from repro.mobility.path import Path


@dataclass(frozen=True)
class CommunityLayout:
    """Spatial layout of communities over a rectangular world.

    Attributes
    ----------
    area:
        ``(width, height)`` of the whole world in metres.
    num_communities:
        Number of communities; home districts tile the area in a near-square
        grid.
    """

    area: Tuple[float, float]
    num_communities: int

    def __post_init__(self) -> None:
        if self.area[0] <= 0 or self.area[1] <= 0:
            raise ValueError("area must be positive")
        if self.num_communities < 1:
            raise ValueError("need at least one community")

    @property
    def grid(self) -> Tuple[int, int]:
        """Number of district cells per axis ``(gx, gy)``."""
        gx = int(np.ceil(np.sqrt(self.num_communities)))
        gy = int(np.ceil(self.num_communities / gx))
        return gx, gy

    def district_bounds(self, community: int) -> Tuple[float, float, float, float]:
        """``(min_x, min_y, max_x, max_y)`` of the community's home district."""
        if not 0 <= community < self.num_communities:
            raise ValueError(f"community {community} out of range")
        gx, gy = self.grid
        cell_w = self.area[0] / gx
        cell_h = self.area[1] / gy
        cx = community % gx
        cy = community // gx
        return (cx * cell_w, cy * cell_h, (cx + 1) * cell_w, (cy + 1) * cell_h)

    def community_of_point(self, point: Sequence[float]) -> int:
        """Community whose district contains *point* (clamped to the area)."""
        gx, gy = self.grid
        x = min(max(float(point[0]), 0.0), self.area[0] - 1e-9)
        y = min(max(float(point[1]), 0.0), self.area[1] - 1e-9)
        cx = int(x / (self.area[0] / gx))
        cy = int(y / (self.area[1] / gy))
        return min(cy * gx + cx, self.num_communities - 1)


class CommunityMovement(MovementModel):
    """Random-waypoint movement biased toward a home district.

    Parameters
    ----------
    layout:
        The community layout.
    community_id:
        Which community this node belongs to.
    local_probability:
        Probability that the next waypoint is inside the home district.
    min_speed, max_speed, wait:
        As in random waypoint.
    """

    def __init__(self, layout: CommunityLayout, community_id: int,
                 local_probability: float = 0.85, min_speed: float = 0.8,
                 max_speed: float = 2.0, wait: Tuple[float, float] = (0.0, 60.0)) -> None:
        if not 0 <= local_probability <= 1:
            raise ValueError("local_probability must be in [0, 1]")
        if min_speed <= 0 or max_speed < min_speed:
            raise ValueError(f"invalid speed range [{min_speed}, {max_speed}]")
        if wait[0] < 0 or wait[1] < wait[0]:
            raise ValueError(f"invalid wait range {wait!r}")
        self.layout = layout
        self.community_id = int(community_id)
        self.local_probability = float(local_probability)
        self.min_speed = float(min_speed)
        self.max_speed = float(max_speed)
        self.wait = (float(wait[0]), float(wait[1]))
        # validates the community id
        layout.district_bounds(self.community_id)

    @property
    def community(self) -> int:
        """The node's community id."""
        return self.community_id

    @property
    def supports_batch_advance(self) -> bool:
        """Two-waypoint constant-speed paths: safe for the batch kernel."""
        return True

    def _point_in(self, bounds: Tuple[float, float, float, float], rng) -> np.ndarray:
        min_x, min_y, max_x, max_y = bounds
        return np.array([rng.uniform(min_x, max_x), rng.uniform(min_y, max_y)])

    def initial_position(self, rng) -> np.ndarray:
        return self._point_in(self.layout.district_bounds(self.community_id), rng)

    def next_path(self, position: np.ndarray, now: float, rng) -> Path:
        if rng.random() < self.local_probability:
            bounds = self.layout.district_bounds(self.community_id)
        else:
            bounds = (0.0, 0.0, self.layout.area[0], self.layout.area[1])
        destination = self._point_in(bounds, rng)
        speed = rng.uniform(self.min_speed, self.max_speed)
        wait = rng.uniform(*self.wait)
        return Path([position, destination], speed=speed, wait_time=wait)
