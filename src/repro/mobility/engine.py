"""Batched movement: one vectorized advance instead of n ``move`` calls.

The seed world moved nodes with a per-node Python loop —
``for node: node.follower.move(dt, now)`` — which at 10 000 nodes costs more
than the connectivity detection it feeds.  :class:`MovementEngine` replaces
the loop for the models that opt in
(:attr:`~repro.mobility.base.MovementModel.supports_batch_advance`): nodes
whose current tick stays *inside* their current path segment (or inside the
end-of-path pause) are advanced with a handful of NumPy operations straight
into the world's :class:`~repro.world.positions.PositionStore` matrix; only
the nodes that cross a segment boundary, finish a pause, or need a fresh
path from their model this tick fall back to the exact per-follower loop.

Bit-identity contract
---------------------
The batch kernel is **bit-identical** to ``PathFollower.move``, not merely
close: it mirrors the scalar arithmetic of
:meth:`~repro.mobility.path.Path._consume` and
:meth:`~repro.mobility.path.Path._position_xy` operation for operation —

* travel:   ``offset += speed * dt`` then ``frac = offset / seg_len`` and
  ``x = ax + frac * (bx - ax)`` (same IEEE-754 float64 ops, same order);
* wait:     ``waited += dt`` with the same strict ``dt < wait_time - waited``
  fast-path predicate ``_consume`` uses, so the *boundary* tick (the one
  that finishes a segment or pause) always falls back to the scalar code.

Because the fast path only ever executes ticks whose scalar counterpart
would not leave the current segment/pause, every position the simulation
observes is the same 64-bit pattern the loop would have produced.  The
engine mirrors path progress in flat arrays while a node is on the fast
path and flushes it back (:meth:`~repro.mobility.path.Path.set_progress`)
the moment the node needs the scalar loop; out-of-band state changes
(``PathFollower.teleport``) invalidate the mirror through
:meth:`invalidate`.

Models without a batch kernel — and any follower whose state the engine
cannot mirror (no path yet, zero-length segment, non-positive speed) — run
the unchanged per-follower loop, so enabling the engine never changes
behaviour, only cost.
"""

from __future__ import annotations

from typing import List, Set

import numpy as np

from repro.mobility.base import PathFollower

#: follower fast-path states
TRAVEL = 0  #: inside a positive-length segment of the current path
WAIT = 1  #: inside the end-of-path pause
FALLBACK = 2  #: per-follower loop (no batch kernel, or at a boundary)
HALTED = 3  #: model returned no further paths; skipped entirely


class MovementEngine:
    """Advances every registered follower once per world tick.

    Parameters
    ----------
    positions:
        The world's :class:`~repro.world.positions.PositionStore` (held by
        duck type to keep the mobility package import-independent of the
        world package); row *i* belongs to the *i*-th registered follower —
        the world registers followers in position-row order.
    batch:
        ``False`` disables the kernel entirely: :meth:`advance` becomes the
        historical per-follower loop (used for A/B parity pins and as the
        guaranteed-exact reference).
    """

    def __init__(self, positions, batch: bool = True) -> None:
        self._positions = positions
        self.batch_enabled = bool(batch)
        self._followers: List[PathFollower] = []
        self._batchable: List[bool] = []
        self._dirty: Set[int] = set()
        self._size = 0  # follower count the arrays are allocated for
        self._mode = np.empty(0, dtype=np.int64)
        self._ax = np.empty(0, dtype=float)
        self._ay = np.empty(0, dtype=float)
        self._bx = np.empty(0, dtype=float)
        self._by = np.empty(0, dtype=float)
        self._seg_len = np.empty(0, dtype=float)
        self._offset = np.empty(0, dtype=float)
        self._speed = np.empty(0, dtype=float)
        self._waited = np.empty(0, dtype=float)
        self._wait_time = np.empty(0, dtype=float)
        # observability: how many node-ticks took which path
        self.fast_moves = 0
        self.loop_moves = 0

    # ------------------------------------------------------------ registration
    def register(self, follower: PathFollower) -> int:
        """Add *follower* (its position row is the returned slot index)."""
        slot = len(self._followers)
        self._followers.append(follower)
        batchable = (self.batch_enabled
                     and follower.model.supports_batch_advance)
        self._batchable.append(batchable)
        if batchable:
            follower.attach_engine(self, slot)
        return slot

    @property
    def num_followers(self) -> int:
        """Number of registered followers."""
        return len(self._followers)

    def invalidate(self, slot: int) -> None:
        """Mark one slot's mirrored path state stale (teleport hook)."""
        if 0 <= slot < len(self._followers):
            self._dirty.add(int(slot))

    # ----------------------------------------------------------------- arrays
    def _grow(self) -> None:
        """Resize the state arrays to the follower count; new slots go dirty."""
        old = self._size
        n = len(self._followers)
        grown = max(n, 1)

        def resize(array: np.ndarray, fill: float) -> np.ndarray:
            fresh = np.full(grown, fill, dtype=array.dtype)
            fresh[:old] = array[:old]
            return fresh

        self._mode = resize(self._mode, FALLBACK)
        self._ax = resize(self._ax, 0.0)
        self._ay = resize(self._ay, 0.0)
        self._bx = resize(self._bx, 0.0)
        self._by = resize(self._by, 0.0)
        # neutral values keep the vector predicates warning-free for slots
        # that are not in TRAVEL/WAIT mode
        self._seg_len = resize(self._seg_len, 1.0)
        self._offset = resize(self._offset, 0.0)
        self._speed = resize(self._speed, 0.0)
        self._waited = resize(self._waited, 0.0)
        self._wait_time = resize(self._wait_time, 0.0)
        self._size = n
        self._dirty.update(range(old, n))

    def _refresh(self, slot: int) -> None:
        """Re-mirror one follower's path state into the flat arrays."""
        if not self._batchable[slot]:
            return
        follower = self._followers[slot]
        mode = self._mode
        if follower.halted:
            mode[slot] = HALTED
            return
        path = follower.path
        if path is None or path.done:
            mode[slot] = FALLBACK
            return
        state = path.batch_state()
        if state is None:
            # past the last waypoint: inside the end-of-path pause
            mode[slot] = WAIT
            self._offset[slot] = 0.0
            self._waited[slot] = path.waited
            self._wait_time[slot] = path.wait_time
            return
        ax, ay, bx, by, seg_len, offset = state
        if seg_len <= 0.0 or path.speed <= 0.0:
            mode[slot] = FALLBACK
            return
        mode[slot] = TRAVEL
        self._ax[slot] = ax
        self._ay[slot] = ay
        self._bx[slot] = bx
        self._by[slot] = by
        self._seg_len[slot] = seg_len
        self._offset[slot] = offset
        self._speed[slot] = path.speed
        self._waited[slot] = path.waited
        self._wait_time[slot] = path.wait_time

    # ---------------------------------------------------------------- advance
    def advance(self, dt: float, now: float) -> None:
        """Move every non-halted follower by *dt* seconds."""
        if not self.batch_enabled:
            for follower in self._followers:
                if not follower.halted:
                    follower.move(dt, now)
                    self.loop_moves += 1
            return
        if self._size != len(self._followers):
            self._grow()
        if self._dirty:
            for slot in sorted(self._dirty):
                self._refresh(slot)
            self._dirty.clear()

        mode = self._mode
        # the same strict predicates _consume uses: a tick that would exactly
        # finish a segment or pause is NOT fast — it falls back to the scalar
        # code, which also handles starting the next segment/path
        step = self._speed * dt
        fast_travel = (mode == TRAVEL) & (step < self._seg_len - self._offset)
        fast_wait = (mode == WAIT) & (dt < self._wait_time - self._waited)

        travelling = np.nonzero(fast_travel)[0]
        if len(travelling):
            offset = self._offset
            offset[travelling] += step[travelling]
            frac = offset[travelling] / self._seg_len[travelling]
            data = self._positions.view()
            ax = self._ax[travelling]
            ay = self._ay[travelling]
            data[travelling, 0] = ax + frac * (self._bx[travelling] - ax)
            data[travelling, 1] = ay + frac * (self._by[travelling] - ay)
        waiting = np.nonzero(fast_wait)[0]
        if len(waiting):
            # position already holds the exact path endpoint (written by the
            # boundary tick's scalar fallback); only the pause clock advances
            self._waited[waiting] += dt
        self.fast_moves += len(travelling) + len(waiting)

        slow = np.nonzero(~(fast_travel | fast_wait) & (mode != HALTED))[0]
        for index in slow:
            slot = int(index)
            follower = self._followers[slot]
            if self._batchable[slot]:
                state = int(mode[slot])
                if state in (TRAVEL, WAIT) and follower.path is not None:
                    # hand the mirrored progress back before the scalar move
                    follower.path.set_progress(float(self._offset[slot]),
                                               float(self._waited[slot]))
                if not follower.halted:
                    follower.move(dt, now)
                    self.loop_moves += 1
                self._refresh(slot)
            elif not follower.halted:
                follower.move(dt, now)
                self.loop_moves += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "batch" if self.batch_enabled else "loop"
        return (f"MovementEngine({kind}, {len(self._followers)} followers, "
                f"fast={self.fast_moves}, loop={self.loop_moves})")
