"""Bus-line (map-route) mobility.

This reproduces the ONE simulator's ``MapRouteMovement``: each node (bus)
follows a fixed cyclic route of stops over the road map, moving at a speed
drawn per leg from ``[min_speed, max_speed]`` and pausing at each stop.

:func:`generate_bus_routes` lays out a synthetic bus network: every district
gets several local lines whose stops lie inside the district, plus a few
*express* lines that cross districts and provide the inter-community contact
opportunities the CR protocol relies on.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.mobility.base import MovementModel
from repro.mobility.map_generator import district_vertices
from repro.mobility.path import Path
from repro.mobility.roadmap import RoadMap


class BusRoute:
    """A cyclic bus line over a road map.

    Parameters
    ----------
    roadmap:
        The underlying road graph.
    stops:
        Vertex ids of the stops, visited in order and then wrapped around.
        Consecutive stops are connected by their shortest road path.
    district:
        District (community) the line primarily serves, or ``None`` for
        express lines spanning several districts.
    name:
        Human-readable line name.
    """

    def __init__(self, roadmap: RoadMap, stops: Sequence[int],
                 district: Optional[int] = None, name: str = "") -> None:
        if len(stops) < 2:
            raise ValueError("a bus route needs at least two stops")
        if len(set(stops)) < 2:
            raise ValueError("a bus route needs at least two distinct stops")
        self.roadmap = roadmap
        self.stops = list(stops)
        self.district = district
        self.name = name or f"line-{id(self) % 10000}"
        # Pre-compute the road path between consecutive stops (cyclic).
        self._legs: List[List[int]] = []
        cyclic = self.stops + [self.stops[0]]
        for a, b in zip(cyclic[:-1], cyclic[1:]):
            if a == b:
                self._legs.append([a])
            else:
                self._legs.append(roadmap.shortest_path(a, b))

    @property
    def num_stops(self) -> int:
        """Number of stops on the line."""
        return len(self.stops)

    def leg(self, index: int) -> List[int]:
        """Vertex sequence of the ``index``-th leg (stop i -> stop i+1)."""
        return list(self._legs[index % len(self._legs)])

    def leg_waypoints(self, index: int) -> List[np.ndarray]:
        """Waypoint coordinates of the ``index``-th leg."""
        return self.roadmap.path_coordinates(self.leg(index))

    def total_length(self) -> float:
        """Length of one full loop of the line in metres."""
        return sum(self.roadmap.path_length(leg) for leg in self._legs if len(leg) > 1)

    def stop_coordinates(self) -> List[np.ndarray]:
        """Coordinates of the stops."""
        return self.roadmap.path_coordinates(self.stops)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BusRoute({self.name!r}, stops={len(self.stops)}, "
                f"district={self.district})")


class MapRouteMovement(MovementModel):
    """Drive a node along a :class:`BusRoute`.

    Parameters
    ----------
    route:
        The bus line to follow.
    min_speed, max_speed:
        Per-leg speed range in m/s (the paper uses 2.7-13.9 m/s).
    stop_wait:
        ``(min, max)`` pause at each stop in seconds.
    start_stop:
        Index of the stop the node starts from; ``None`` picks a random stop
        (so buses on the same line are spread around the loop).
    """

    def __init__(self, route: BusRoute, min_speed: float = 2.7,
                 max_speed: float = 13.9, stop_wait: Tuple[float, float] = (10.0, 30.0),
                 start_stop: Optional[int] = None) -> None:
        if min_speed <= 0 or max_speed < min_speed:
            raise ValueError(f"invalid speed range [{min_speed}, {max_speed}]")
        if stop_wait[0] < 0 or stop_wait[1] < stop_wait[0]:
            raise ValueError(f"invalid stop wait range {stop_wait!r}")
        self.route = route
        self.min_speed = float(min_speed)
        self.max_speed = float(max_speed)
        self.stop_wait = (float(stop_wait[0]), float(stop_wait[1]))
        self._start_stop = start_stop
        self._next_leg = 0

    @property
    def community(self) -> Optional[int]:
        """The district served by the node's line (``None`` for express lines)."""
        return self.route.district

    def initial_position(self, rng) -> np.ndarray:
        if self._start_stop is None:
            self._next_leg = rng.randrange(self.route.num_stops)
        else:
            self._next_leg = self._start_stop % self.route.num_stops
        stop_vertex = self.route.stops[self._next_leg]
        return self.route.roadmap.coordinates(stop_vertex)

    def next_path(self, position: np.ndarray, now: float, rng) -> Path:
        waypoints = self.route.leg_waypoints(self._next_leg)
        self._next_leg = (self._next_leg + 1) % self.route.num_stops
        speed = rng.uniform(self.min_speed, self.max_speed)
        wait = rng.uniform(*self.stop_wait)
        # Start the leg from wherever the node actually is (it should already
        # be at the leg's first stop, but guard against drift).
        if waypoints and not np.allclose(waypoints[0], position):
            waypoints = [np.asarray(position, dtype=float)] + waypoints
        return Path(waypoints, speed=speed, wait_time=wait)


def district_hubs(roadmap: RoadMap, districts: Dict[int, int]) -> Dict[int, int]:
    """Pick one *hub* vertex per district: the vertex closest to its centroid.

    Downtown bus networks funnel lines through a small number of interchange
    stops; routing every district's local lines (and the express lines)
    through its hub recreates that overlap, which is what gives contact
    patterns their predictable, semi-periodic structure.
    """
    by_district = district_vertices(districts)
    hubs: Dict[int, int] = {}
    for district, vertices in by_district.items():
        coords = np.vstack([roadmap.coordinates(v) for v in vertices])
        centroid = coords.mean(axis=0)
        distances = ((coords - centroid) ** 2).sum(axis=1)
        hubs[district] = vertices[int(np.argmin(distances))]
    return hubs


def generate_bus_routes(roadmap: RoadMap, districts: Dict[int, int],
                        lines_per_district: int = 2,
                        stops_per_line: int = 5,
                        express_lines: int = 2,
                        express_stops: int = 6,
                        seed: int = 0,
                        use_hubs: bool = True) -> List[BusRoute]:
    """Generate a synthetic bus network over *roadmap*.

    Parameters
    ----------
    roadmap:
        The road graph.
    districts:
        Vertex -> district assignment (see
        :func:`repro.mobility.map_generator.assign_districts`).
    lines_per_district:
        Number of local lines per district.
    stops_per_line:
        Stops per local line.
    express_lines:
        Number of cross-district lines.
    express_stops:
        Stops per express line (drawn from all districts).
    seed:
        RNG seed.
    use_hubs:
        If ``True`` every district gets a hub stop shared by all of its local
        lines, and express lines connect the hubs — mirroring how real
        downtown bus lines overlap at interchanges.  If ``False`` stops are
        sampled independently (more diffuse contact structure).

    Returns
    -------
    list of BusRoute
        Local lines first (grouped by district id), then express lines with
        ``district=None``.
    """
    if lines_per_district < 0 or express_lines < 0:
        raise ValueError("line counts must be non-negative")
    if stops_per_line < 2 or (express_lines > 0 and express_stops < 2):
        raise ValueError("lines need at least two stops")
    rng = random.Random(seed)
    by_district = district_vertices(districts)
    hubs = district_hubs(roadmap, districts) if use_hubs else {}
    routes: List[BusRoute] = []
    for district in sorted(by_district):
        vertices = by_district[district]
        for line_idx in range(lines_per_district):
            k = min(stops_per_line, len(vertices))
            if k < 2:
                raise ValueError(
                    f"district {district} has too few vertices ({len(vertices)}) "
                    "for a bus line")
            stops = rng.sample(vertices, k)
            hub = hubs.get(district)
            if hub is not None and hub not in stops:
                stops[0] = hub
            if len(set(stops)) < 2:
                stops = rng.sample(vertices, k)
            routes.append(BusRoute(roadmap, stops, district=district,
                                   name=f"d{district}-l{line_idx}"))
    all_vertices = list(districts)
    district_ids = sorted(by_district)
    for line_idx in range(express_lines):
        # express lines take one stop per district (cycled) so they touch
        # every part of town; with hubs enabled they call at the interchanges
        stops: List[int] = []
        for i in range(express_stops):
            district = district_ids[i % len(district_ids)]
            if use_hubs and i < len(district_ids):
                stops.append(hubs[district])
            else:
                stops.append(rng.choice(by_district[district]))
        # deduplicate consecutive repeats while keeping order
        deduped: List[int] = []
        for stop in stops:
            if not deduped or deduped[-1] != stop:
                deduped.append(stop)
        stops = deduped
        if len(set(stops)) < 2:
            stops = rng.sample(all_vertices, min(express_stops, len(all_vertices)))
        routes.append(BusRoute(roadmap, stops, district=None,
                               name=f"express-{line_idx}"))
    return routes
