"""Piecewise-linear movement paths.

A :class:`Path` is a sequence of waypoints traversed at a constant speed,
optionally followed by a pause.  :meth:`Path.advance` moves along the path by
a time budget and reports the new position, which is all the world update loop
needs.  Segment lengths are pre-computed once at construction because
``advance`` runs for every node on every world tick.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np


class Path:
    """A traversable sequence of waypoints.

    Parameters
    ----------
    waypoints:
        Sequence of 2-D points (the first one is the starting position).
    speed:
        Constant speed in m/s along the whole path; must be positive unless
        the path is a single point.
    wait_time:
        Pause (seconds) after the last waypoint before the path is "done".
    """

    __slots__ = ("waypoints", "speed", "wait_time", "_lengths", "_segment",
                 "_offset", "_waited")

    def __init__(self, waypoints: Sequence[Sequence[float]], speed: float,
                 wait_time: float = 0.0) -> None:
        pts = [np.asarray(p, dtype=float) for p in waypoints]
        if not pts:
            raise ValueError("path needs at least one waypoint")
        if len(pts) > 1 and speed <= 0:
            raise ValueError(f"speed must be positive for a moving path, got {speed}")
        if wait_time < 0:
            raise ValueError("wait_time must be non-negative")
        self.waypoints: List[np.ndarray] = pts
        self.speed = float(speed)
        self.wait_time = float(wait_time)
        # pre-computed Euclidean segment lengths
        self._lengths: List[float] = [
            math.dist(tuple(a), tuple(b))
            for a, b in zip(pts[:-1], pts[1:])
        ]
        self._segment = 0          # index of the segment currently being traversed
        self._offset = 0.0         # metres travelled into the current segment
        self._waited = 0.0         # seconds already waited at the end

    # ------------------------------------------------------------------ state
    @property
    def position(self) -> np.ndarray:
        """Current position along the path."""
        if self._segment >= len(self._lengths):
            return self.waypoints[-1].copy()
        a = self.waypoints[self._segment]
        b = self.waypoints[self._segment + 1]
        seg_len = self._lengths[self._segment]
        if seg_len == 0:
            return a.copy()
        frac = self._offset / seg_len
        return a + frac * (b - a)

    @property
    def done(self) -> bool:
        """Whether all waypoints have been reached and the pause has elapsed."""
        at_end = self._segment >= len(self._lengths)
        return at_end and self._waited >= self.wait_time

    @property
    def total_length(self) -> float:
        """Total geometric length of the path in metres."""
        return float(sum(self._lengths))

    def duration(self) -> float:
        """Time to traverse the whole path, including the final pause."""
        if not self._lengths:
            return self.wait_time
        return self.total_length / self.speed + self.wait_time

    # ---------------------------------------------------------------- advance
    def advance(self, dt: float) -> tuple:
        """Move along the path for *dt* seconds.

        Returns
        -------
        (position, leftover)
            ``position`` is the new position; ``leftover`` is the unused part
            of *dt* (non-zero only once the path is done, so the caller can
            immediately start the next path within the same step).
        """
        if dt < 0:
            raise ValueError("dt must be non-negative")
        remaining = float(dt)
        # traverse segments
        while remaining > 0 and self._segment < len(self._lengths):
            seg_len = self._lengths[self._segment]
            left_in_segment = seg_len - self._offset
            step = self.speed * remaining
            if step < left_in_segment:
                self._offset += step
                remaining = 0.0
            else:
                # finish this segment and carry the unused time over
                if self.speed > 0:
                    remaining -= left_in_segment / self.speed
                self._segment += 1
                self._offset = 0.0
        # wait at the end
        if remaining > 0 and self._segment >= len(self._lengths):
            wait_left = self.wait_time - self._waited
            if remaining < wait_left:
                self._waited += remaining
                remaining = 0.0
            else:
                self._waited = self.wait_time
                remaining -= max(0.0, wait_left)
        return self.position, remaining

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Path({len(self.waypoints)} waypoints, speed={self.speed}, "
                f"wait={self.wait_time})")
