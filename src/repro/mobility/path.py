"""Piecewise-linear movement paths.

A :class:`Path` is a sequence of waypoints traversed at a constant speed,
optionally followed by a pause.  :meth:`Path.advance` moves along the path by
a time budget and reports the new position, which is all the world update loop
needs.  Because ``advance`` runs for every node on every world tick, the hot
path works on pre-computed *scalar* coordinates (no small-ndarray arithmetic)
and :meth:`Path.advance_into` writes the position straight into a
caller-provided array — the node's row view of the world's
:class:`~repro.world.positions.PositionStore`.

Waypoints are copied at construction: callers routinely pass the node's live
position view as the first waypoint, and the path must keep the *snapshot*,
not alias storage that mutates as the node moves.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np


class Path:
    """A traversable sequence of waypoints.

    Parameters
    ----------
    waypoints:
        Sequence of 2-D points (the first one is the starting position).
    speed:
        Constant speed in m/s along the whole path; must be positive unless
        the path is a single point.
    wait_time:
        Pause (seconds) after the last waypoint before the path is "done".
    """

    __slots__ = ("waypoints", "speed", "wait_time", "_xy", "_lengths",
                 "_segment", "_offset", "_waited")

    def __init__(self, waypoints: Sequence[Sequence[float]], speed: float,
                 wait_time: float = 0.0) -> None:
        # np.array (not asarray) so a live position view passed as a waypoint
        # is snapshotted rather than aliased
        pts = [np.array(p, dtype=float) for p in waypoints]
        if not pts:
            raise ValueError("path needs at least one waypoint")
        if len(pts) > 1 and speed <= 0:
            raise ValueError(f"speed must be positive for a moving path, got {speed}")
        if wait_time < 0:
            raise ValueError("wait_time must be non-negative")
        self.waypoints: List[np.ndarray] = pts
        self.speed = float(speed)
        self.wait_time = float(wait_time)
        # scalar copies of the waypoint coordinates and pre-computed segment
        # lengths: advance() and position_into() never touch ndarrays
        self._xy: List[tuple] = [(float(p[0]), float(p[1])) for p in pts]
        self._lengths: List[float] = [
            math.dist(a, b) for a, b in zip(self._xy[:-1], self._xy[1:])
        ]
        self._segment = 0          # index of the segment currently being traversed
        self._offset = 0.0         # metres travelled into the current segment
        self._waited = 0.0         # seconds already waited at the end

    # ------------------------------------------------------------------ state
    def _position_xy(self) -> tuple:
        """Current position along the path as a scalar ``(x, y)`` pair."""
        segment = self._segment
        if segment >= len(self._lengths):
            return self._xy[-1]
        seg_len = self._lengths[segment]
        ax, ay = self._xy[segment]
        if seg_len == 0.0:
            return ax, ay
        bx, by = self._xy[segment + 1]
        frac = self._offset / seg_len
        return ax + frac * (bx - ax), ay + frac * (by - ay)

    @property
    def position(self) -> np.ndarray:
        """Current position along the path (freshly allocated array)."""
        return np.array(self._position_xy(), dtype=float)

    def position_into(self, out: np.ndarray) -> None:
        """Write the current position into ``out`` (shape ``(2,)``)."""
        out[0], out[1] = self._position_xy()

    @property
    def done(self) -> bool:
        """Whether all waypoints have been reached and the pause has elapsed."""
        at_end = self._segment >= len(self._lengths)
        return at_end and self._waited >= self.wait_time

    @property
    def waited(self) -> float:
        """Seconds already paused at the end of the path."""
        return self._waited

    # ----------------------------------------------------------- batch access
    def batch_state(self):
        """Current-segment snapshot for the batch movement kernel.

        Returns ``(ax, ay, bx, by, seg_len, offset)`` — the endpoints,
        length and traversed offset of the segment currently being walked —
        or ``None`` when the path is past its last waypoint (waiting).  The
        scalars are exactly the ones :meth:`_consume`/:meth:`_position_xy`
        operate on, which is what makes the vectorized advance bit-identical
        to the scalar one (see :mod:`repro.mobility.engine`).
        """
        segment = self._segment
        if segment >= len(self._lengths):
            return None
        ax, ay = self._xy[segment]
        bx, by = self._xy[segment + 1]
        return ax, ay, bx, by, self._lengths[segment], self._offset

    def set_progress(self, offset: float, waited: float) -> None:
        """Write back batch-advanced progress (the engine's flush).

        Only meaningful with values produced by advancing the *current*
        batch state with the same arithmetic as :meth:`_consume`; the
        movement engine calls this right before handing a node back to the
        exact per-follower loop.
        """
        self._offset = float(offset)
        self._waited = float(waited)

    @property
    def total_length(self) -> float:
        """Total geometric length of the path in metres."""
        return float(sum(self._lengths))

    def duration(self) -> float:
        """Time to traverse the whole path, including the final pause."""
        if not self._lengths:
            return self.wait_time
        return self.total_length / self.speed + self.wait_time

    # ---------------------------------------------------------------- advance
    def _consume(self, dt: float) -> float:
        """Advance the internal state by *dt* seconds; returns unused time."""
        if dt < 0:
            raise ValueError("dt must be non-negative")
        remaining = float(dt)
        lengths = self._lengths
        num_segments = len(lengths)
        speed = self.speed
        # traverse segments
        while remaining > 0 and self._segment < num_segments:
            seg_len = lengths[self._segment]
            left_in_segment = seg_len - self._offset
            step = speed * remaining
            if step < left_in_segment:
                self._offset += step
                remaining = 0.0
            else:
                # finish this segment and carry the unused time over
                if speed > 0:
                    remaining -= left_in_segment / speed
                self._segment += 1
                self._offset = 0.0
        # wait at the end
        if remaining > 0 and self._segment >= num_segments:
            wait_left = self.wait_time - self._waited
            if remaining < wait_left:
                self._waited += remaining
                remaining = 0.0
            else:
                self._waited = self.wait_time
                remaining -= max(0.0, wait_left)
        return remaining

    def advance(self, dt: float) -> tuple:
        """Move along the path for *dt* seconds.

        Returns
        -------
        (position, leftover)
            ``position`` is the new position; ``leftover`` is the unused part
            of *dt* (non-zero only once the path is done, so the caller can
            immediately start the next path within the same step).
        """
        leftover = self._consume(dt)
        return self.position, leftover

    def advance_into(self, dt: float, out: np.ndarray) -> float:
        """Like :meth:`advance`, but writes the position into ``out``.

        Returns only the leftover time; the new position lands in ``out``
        without allocating.  This is the world tick's hot call.
        """
        leftover = self._consume(dt)
        out[0], out[1] = self._position_xy()
        return leftover

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Path({len(self.waypoints)} waypoints, speed={self.speed}, "
                f"wait={self.wait_time})")
