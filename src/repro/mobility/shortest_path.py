"""Shortest-path map-based mobility.

The node repeatedly picks a random map vertex as its destination and walks
there along the road network's shortest path (the ONE simulator's
``ShortestPathMapBasedMovement``).  Used by pedestrian-style scenarios in the
examples and ablations.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.mobility.base import MovementModel
from repro.mobility.path import Path
from repro.mobility.roadmap import RoadMap


class ShortestPathMapBasedMovement(MovementModel):
    """Walk between random map vertices along shortest road paths.

    Parameters
    ----------
    roadmap:
        The road graph to move on.
    min_speed, max_speed:
        Per-trip speed range in m/s.
    wait:
        ``(min, max)`` pause at each destination in seconds.
    allowed_vertices:
        Optional restriction of start/destination vertices (e.g. to one
        district); paths may still traverse other vertices.
    """

    def __init__(self, roadmap: RoadMap, min_speed: float = 0.8,
                 max_speed: float = 1.4, wait: Tuple[float, float] = (0.0, 120.0),
                 allowed_vertices: Optional[Sequence[int]] = None) -> None:
        if roadmap.num_vertices < 2:
            raise ValueError("road map needs at least two vertices")
        if min_speed <= 0 or max_speed < min_speed:
            raise ValueError(f"invalid speed range [{min_speed}, {max_speed}]")
        if wait[0] < 0 or wait[1] < wait[0]:
            raise ValueError(f"invalid wait range {wait!r}")
        self.roadmap = roadmap
        self.min_speed = float(min_speed)
        self.max_speed = float(max_speed)
        self.wait = (float(wait[0]), float(wait[1]))
        if allowed_vertices is None:
            self.allowed = list(range(roadmap.num_vertices))
        else:
            self.allowed = list(allowed_vertices)
            if len(self.allowed) < 2:
                raise ValueError("need at least two allowed vertices")
        self._current_vertex: Optional[int] = None

    def initial_position(self, rng) -> np.ndarray:
        self._current_vertex = rng.choice(self.allowed)
        return self.roadmap.coordinates(self._current_vertex)

    def next_path(self, position: np.ndarray, now: float, rng) -> Path:
        if self._current_vertex is None:
            self._current_vertex = self.roadmap.nearest_vertex(position)
        target = rng.choice(self.allowed)
        attempts = 0
        while target == self._current_vertex and attempts < 16:
            target = rng.choice(self.allowed)
            attempts += 1
        vertices = self.roadmap.shortest_path(self._current_vertex, target)
        waypoints = self.roadmap.path_coordinates(vertices)
        if not np.allclose(waypoints[0], position):
            waypoints = [np.asarray(position, dtype=float)] + waypoints
        self._current_vertex = target
        speed = rng.uniform(self.min_speed, self.max_speed)
        wait = rng.uniform(*self.wait)
        return Path(waypoints, speed=speed, wait_time=wait)
