"""Random-waypoint mobility over a rectangular area."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.mobility.base import MovementModel
from repro.mobility.path import Path


class RandomWaypointMovement(MovementModel):
    """Classic random-waypoint model.

    The node repeatedly picks a uniformly random destination in the area,
    moves there in a straight line at a per-trip random speed and pauses.

    Parameters
    ----------
    area:
        ``(width, height)`` of the movement area in metres.
    min_speed, max_speed:
        Per-trip speed range in m/s.
    wait:
        ``(min, max)`` pause at each waypoint in seconds.
    origin:
        Lower-left corner of the area (defaults to the origin).
    """

    def __init__(self, area: Tuple[float, float], min_speed: float = 0.5,
                 max_speed: float = 1.5, wait: Tuple[float, float] = (0.0, 10.0),
                 origin: Tuple[float, float] = (0.0, 0.0)) -> None:
        if area[0] <= 0 or area[1] <= 0:
            raise ValueError(f"area must be positive, got {area!r}")
        if min_speed <= 0 or max_speed < min_speed:
            raise ValueError(f"invalid speed range [{min_speed}, {max_speed}]")
        if wait[0] < 0 or wait[1] < wait[0]:
            raise ValueError(f"invalid wait range {wait!r}")
        self.area = (float(area[0]), float(area[1]))
        self.origin = (float(origin[0]), float(origin[1]))
        self.min_speed = float(min_speed)
        self.max_speed = float(max_speed)
        self.wait = (float(wait[0]), float(wait[1]))

    @property
    def supports_batch_advance(self) -> bool:
        """Two-waypoint constant-speed paths: safe for the batch kernel."""
        return True

    def _random_point(self, rng) -> np.ndarray:
        return np.array([
            self.origin[0] + rng.uniform(0.0, self.area[0]),
            self.origin[1] + rng.uniform(0.0, self.area[1]),
        ])

    def initial_position(self, rng) -> np.ndarray:
        return self._random_point(rng)

    def next_path(self, position: np.ndarray, now: float, rng) -> Path:
        destination = self._random_point(rng)
        speed = rng.uniform(self.min_speed, self.max_speed)
        wait = rng.uniform(*self.wait)
        return Path([position, destination], speed=speed, wait_time=wait)
