"""Road-map graphs for map-constrained mobility.

A :class:`RoadMap` is an undirected weighted graph whose vertices are map
points (intersections) and whose edges are road segments, with Euclidean edge
lengths.  It provides shortest paths (Dijkstra over an adjacency list) and
nearest-vertex lookup, which is everything the map-based movement models need.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np


class RoadMap:
    """An undirected road graph with Euclidean edge weights."""

    def __init__(self) -> None:
        self._coords: List[np.ndarray] = []
        self._adjacency: List[Dict[int, float]] = []

    # --------------------------------------------------------------- building
    def add_vertex(self, x: float, y: float) -> int:
        """Add an intersection at ``(x, y)`` and return its vertex id."""
        self._coords.append(np.array([float(x), float(y)]))
        self._adjacency.append({})
        return len(self._coords) - 1

    def add_edge(self, u: int, v: int) -> float:
        """Connect vertices *u* and *v* with a road segment.

        Returns the segment length.  Adding an existing edge is a no-op that
        still returns the length.  Self-loops are rejected.
        """
        if u == v:
            raise ValueError("self-loop edges are not allowed in a road map")
        self._check_vertex(u)
        self._check_vertex(v)
        length = float(np.linalg.norm(self._coords[u] - self._coords[v]))
        if length == 0.0:
            raise ValueError(f"vertices {u} and {v} are co-located; zero-length edge")
        self._adjacency[u][v] = length
        self._adjacency[v][u] = length
        return length

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < len(self._coords):
            raise IndexError(f"vertex {v} does not exist")

    # ------------------------------------------------------------- inspection
    @property
    def num_vertices(self) -> int:
        """Number of intersections."""
        return len(self._coords)

    @property
    def num_edges(self) -> int:
        """Number of road segments."""
        return sum(len(adj) for adj in self._adjacency) // 2

    def coordinates(self, v: int) -> np.ndarray:
        """Coordinates of vertex *v* (copy)."""
        self._check_vertex(v)
        return self._coords[v].copy()

    def all_coordinates(self) -> np.ndarray:
        """``(num_vertices, 2)`` array of all vertex coordinates."""
        if not self._coords:
            return np.empty((0, 2))
        return np.vstack(self._coords)

    def neighbors(self, v: int) -> List[int]:
        """Vertices adjacent to *v*."""
        self._check_vertex(v)
        return list(self._adjacency[v])

    def edge_length(self, u: int, v: int) -> float:
        """Length of the edge between *u* and *v* (raises if absent)."""
        self._check_vertex(u)
        try:
            return self._adjacency[u][v]
        except KeyError:
            raise KeyError(f"no edge between {u} and {v}") from None

    def bounds(self) -> Tuple[float, float, float, float]:
        """``(min_x, min_y, max_x, max_y)`` bounding box of all vertices."""
        coords = self.all_coordinates()
        if coords.size == 0:
            return (0.0, 0.0, 0.0, 0.0)
        mins = coords.min(axis=0)
        maxs = coords.max(axis=0)
        return (float(mins[0]), float(mins[1]), float(maxs[0]), float(maxs[1]))

    def nearest_vertex(self, point: Sequence[float]) -> int:
        """Vertex closest (Euclidean) to *point*."""
        if not self._coords:
            raise ValueError("road map has no vertices")
        coords = self.all_coordinates()
        p = np.asarray(point, dtype=float)
        return int(np.argmin(((coords - p) ** 2).sum(axis=1)))

    def is_connected(self) -> bool:
        """Whether every vertex is reachable from vertex 0."""
        if self.num_vertices == 0:
            return True
        seen = {0}
        stack = [0]
        while stack:
            u = stack.pop()
            for v in self._adjacency[u]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        return len(seen) == self.num_vertices

    # ------------------------------------------------------------ shortest path
    def shortest_path(self, source: int, target: int) -> List[int]:
        """Vertex sequence of the shortest path from *source* to *target*.

        Raises
        ------
        ValueError
            If *target* is unreachable from *source*.
        """
        self._check_vertex(source)
        self._check_vertex(target)
        if source == target:
            return [source]
        dist = {source: 0.0}
        prev: Dict[int, int] = {}
        heap: List[Tuple[float, int]] = [(0.0, source)]
        visited = set()
        while heap:
            d, u = heapq.heappop(heap)
            if u in visited:
                continue
            visited.add(u)
            if u == target:
                break
            for v, w in self._adjacency[u].items():
                nd = d + w
                if nd < dist.get(v, float("inf")):
                    dist[v] = nd
                    prev[v] = u
                    heapq.heappush(heap, (nd, v))
        if target not in dist:
            raise ValueError(f"vertex {target} is unreachable from {source}")
        path = [target]
        while path[-1] != source:
            path.append(prev[path[-1]])
        path.reverse()
        return path

    def path_length(self, vertices: Sequence[int]) -> float:
        """Total length of a vertex sequence along existing edges."""
        return sum(self.edge_length(u, v) for u, v in zip(vertices[:-1], vertices[1:]))

    def path_coordinates(self, vertices: Iterable[int]) -> List[np.ndarray]:
        """Waypoint coordinates for a vertex sequence."""
        return [self.coordinates(v) for v in vertices]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RoadMap({self.num_vertices} vertices, {self.num_edges} edges)"
