"""Home-cell community mobility (caveman / HCMM-style).

The classic way to *generate* the community structure CR exploits, rather
than assume it: the world is tiled into cells (one per community, reusing
:class:`~repro.mobility.community.CommunityLayout`), every node has a *home
cell* it gravitates to, and each waypoint decision either stays home (with
probability ``1 - roaming_probability``) or roams to another cell.  This is
the caveman-graph analogue of Musolesi & Mascolo's HCMM: intra-cell contact
rates are much higher than inter-cell ones, with the roaming trips providing
the inter-community bridges CR's Algorithm 3 relies on.

Unlike :class:`~repro.mobility.community.CommunityMovement` (which biases
waypoints but never changes membership), this model optionally *re-homes*:
with ``rehome_interval`` set, a node periodically migrates to a random new
home cell.  The node's predefined ``community`` label — what CR's ``oracle``
mode sees — stays the *initial* home, so under drift the oracle assignment
goes stale while online detection (``cr-kclique`` / ``cr-newman``) tracks
the migrations.  The ``community-drift`` catalog scenario is built on
exactly this asymmetry.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.mobility.base import MovementModel
from repro.mobility.community import CommunityLayout
from repro.mobility.path import Path


class HomeCellMovement(MovementModel):
    """Random waypoints gravitating to a home cell, with optional re-homing.

    Parameters
    ----------
    layout:
        Cell layout (one cell per community).
    home_cell:
        The node's initial home cell.
    roaming_probability:
        Probability that a waypoint decision leaves the home cell.
    min_speed, max_speed, wait:
        As in random waypoint.
    rehome_interval:
        Mean seconds between home-cell migrations (exponentially
        distributed); ``None`` disables drift entirely.
    """

    def __init__(self, layout: CommunityLayout, home_cell: int,
                 roaming_probability: float = 0.15, min_speed: float = 0.8,
                 max_speed: float = 2.0,
                 wait: Tuple[float, float] = (0.0, 60.0),
                 rehome_interval: Optional[float] = None) -> None:
        if not 0 <= roaming_probability <= 1:
            raise ValueError("roaming_probability must be in [0, 1]")
        if min_speed <= 0 or max_speed < min_speed:
            raise ValueError(f"invalid speed range [{min_speed}, {max_speed}]")
        if wait[0] < 0 or wait[1] < wait[0]:
            raise ValueError(f"invalid wait range {wait!r}")
        if rehome_interval is not None and rehome_interval <= 0:
            raise ValueError("rehome_interval must be positive (or None)")
        layout.district_bounds(int(home_cell))  # validates the cell id
        self.layout = layout
        self.initial_home = int(home_cell)
        self.home_cell = int(home_cell)
        self.roaming_probability = float(roaming_probability)
        self.min_speed = float(min_speed)
        self.max_speed = float(max_speed)
        self.wait = (float(wait[0]), float(wait[1]))
        self.rehome_interval = (None if rehome_interval is None
                                else float(rehome_interval))
        self.rehomes = 0
        self._rehome_at: Optional[float] = None

    @property
    def community(self) -> int:
        """The *initial* home cell — the static label the oracle mode sees."""
        return self.initial_home

    @property
    def supports_batch_advance(self) -> bool:
        """Two-waypoint constant-speed paths: safe for the batch kernel."""
        return True

    def _point_in(self, cell: int, rng) -> np.ndarray:
        min_x, min_y, max_x, max_y = self.layout.district_bounds(cell)
        return np.array([rng.uniform(min_x, max_x), rng.uniform(min_y, max_y)])

    def _other_cell(self, rng) -> int:
        """A uniformly random cell different from the current home cell."""
        choices = [cell for cell in range(self.layout.num_communities)
                   if cell != self.home_cell]
        return rng.choice(choices)

    def _maybe_rehome(self, now: float, rng) -> None:
        if self.rehome_interval is None:
            return
        if self._rehome_at is None:
            self._rehome_at = now + rng.expovariate(1.0 / self.rehome_interval)
            return
        while now >= self._rehome_at:
            if self.layout.num_communities > 1:
                self.home_cell = self._other_cell(rng)
                self.rehomes += 1
            self._rehome_at += rng.expovariate(1.0 / self.rehome_interval)

    def initial_position(self, rng) -> np.ndarray:
        return self._point_in(self.home_cell, rng)

    def next_path(self, position: np.ndarray, now: float, rng) -> Path:
        self._maybe_rehome(now, rng)
        roam = (self.layout.num_communities > 1
                and rng.random() < self.roaming_probability)
        cell = self._other_cell(rng) if roam else self.home_cell
        destination = self._point_in(cell, rng)
        speed = rng.uniform(self.min_speed, self.max_speed)
        wait = rng.uniform(*self.wait)
        return Path([position, destination], speed=speed, wait_time=wait)
