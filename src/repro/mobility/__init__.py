"""Mobility models.

The paper evaluates on the ONE simulator's vehicular map-driven model: buses
following fixed lines over the downtown Helsinki road map.  We rebuild that
structure synthetically: :mod:`repro.mobility.map_generator` creates a
"downtown" road graph, :func:`repro.mobility.map_route.generate_bus_routes`
lays cyclic bus lines over it (grouped into districts, which double as the
communities used by the CR protocol), and :class:`MapRouteMovement` drives a
node along its line.

Additional models (random waypoint, shortest-path map-based, community-home
movement, stationary) support the examples, tests and ablations.
"""

from repro.mobility.base import MovementModel, PathFollower
from repro.mobility.engine import MovementEngine
from repro.mobility.path import Path
from repro.mobility.roadmap import RoadMap
from repro.mobility.map_generator import generate_downtown_map, assign_districts
from repro.mobility.map_route import BusRoute, MapRouteMovement, generate_bus_routes
from repro.mobility.shortest_path import ShortestPathMapBasedMovement
from repro.mobility.random_waypoint import RandomWaypointMovement
from repro.mobility.community import CommunityMovement, CommunityLayout
from repro.mobility.hcmm import HomeCellMovement
from repro.mobility.stationary import StationaryMovement

__all__ = [
    "MovementModel",
    "MovementEngine",
    "PathFollower",
    "Path",
    "RoadMap",
    "generate_downtown_map",
    "assign_districts",
    "BusRoute",
    "MapRouteMovement",
    "generate_bus_routes",
    "ShortestPathMapBasedMovement",
    "RandomWaypointMovement",
    "CommunityMovement",
    "CommunityLayout",
    "HomeCellMovement",
    "StationaryMovement",
]
