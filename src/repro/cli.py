"""The ``python -m repro`` command-line interface.

Six subcommands expose the scenario catalog, the experiment drivers and the
results store without writing any Python:

``list``
    Show every registered scenario and routing protocol.
``run``
    Run one named scenario (averaged over seeds, optionally in parallel).
``sweep``
    Run a scenario across a parameter grid; with ``--store`` the grid is
    resumable and dedupes against everything already computed.
``figure``
    Regenerate one of the paper's figures or ablations — or all of them
    (``figure all``); with ``--from-store`` only missing cells simulate.
``serve``
    Drain a spool directory of queued run requests into a results store,
    streaming one progress line per resolved cell.
``bench``
    Run the paired performance benchmarks (vectorized hot path vs the
    in-tree pure-Python reference implementations), write a ``BENCH_*.json``
    trajectory point and optionally gate against a committed baseline.

Output flags are uniform: **every** subcommand takes ``--json`` (the payload
on stdout; the default is a human-aligned text rendering) and ``--output
FILE`` (the same payload written to a file, combinable with either stdout
mode).  See ``docs/cli.md`` for the full reference with copy-paste examples
and ``docs/results-store.md`` for the store workflow.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence

from repro.experiments.catalog import (
    available_scenarios,
    make_scenario,
    scenario_entries,
)
from repro.experiments.figures import FIGURE_NAMES
from repro.experiments import figures as figure_drivers
from repro.checkpoint import CheckpointError
from repro.experiments.results import AveragedResult
from repro.experiments.runner import (
    resume_scenario,
    run_averaged,
    run_scenario_checkpointed,
)
from repro.experiments.scenario import ScenarioConfig, apply_overrides
from repro.experiments.sweep import sweep as run_sweep
from repro.experiments.tables import (
    format_figure,
    format_report_table,
)
from repro.routing.registry import available_routers, router_summary
from repro.store import StoreError, open_store, serve

_HEADLINE_METRICS = ("delivery_ratio", "latency", "goodput", "overhead_ratio")


# ----------------------------------------------------------------- arg parsing
def parse_seeds(spec: str) -> List[int]:
    """Parse a seed specification into a list of ints.

    Accepts a single seed (``"7"``), an inclusive range (``"1-4"``) or a
    comma list (``"1,3,9"``).
    """
    spec = spec.strip()
    try:
        if "," in spec:
            return [int(part) for part in spec.split(",") if part.strip()]
        if "-" in spec[1:]:  # allow a leading minus to fail int() below
            low, _, high = spec.partition("-")
            first, last = int(low), int(high)
            if last < first:
                raise ValueError
            return list(range(first, last + 1))
        return [int(spec)]
    except ValueError:
        raise ValueError(
            f"invalid seed spec {spec!r}; expected N, A-B or A,B,C") from None


def parse_value(text: str) -> object:
    """Parse one override value: JSON first, bare string as fallback.

    JSON covers numbers, booleans, null, quoted strings and lists; lists are
    converted to tuples so they fit tuple-typed scenario fields like
    ``message_interval``.
    """
    try:
        value = json.loads(text)
    except (json.JSONDecodeError, ValueError):
        return text
    if isinstance(value, list):
        return tuple(value)
    return value


def parse_assignments(pairs: Sequence[str]) -> Dict[str, object]:
    """Parse repeated ``key=value`` strings (``--set``) into an override dict."""
    overrides: Dict[str, object] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise ValueError(f"invalid --set {pair!r}; expected key=value")
        overrides[key.strip()] = parse_value(value.strip())
    return overrides


def parse_grid(specs: Sequence[str]) -> Dict[str, List[object]]:
    """Parse repeated ``key=v1,v2,...`` strings (``--grid``) into a sweep grid."""
    grid: Dict[str, List[object]] = {}
    for spec in specs:
        key, sep, values = spec.partition("=")
        if not sep or not key or not values:
            raise ValueError(f"invalid --grid {spec!r}; expected key=v1,v2,...")
        grid[key.strip()] = [parse_value(v.strip())
                             for v in values.split(",") if v.strip()]
    return grid


def _csv_floats(text: str) -> List[float]:
    return [float(part) for part in text.split(",") if part.strip()]


def _csv_ints(text: str) -> List[int]:
    return [int(part) for part in text.split(",") if part.strip()]


def _csv_names(text: str) -> List[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


# --------------------------------------------------------------- output flags
def _emit(payload: object) -> None:
    print(json.dumps(payload, indent=2, sort_keys=True))


def emit_payload(args, payload: object) -> bool:
    """Apply the uniform output contract to a subcommand's JSON payload.

    Writes *payload* to ``--output FILE`` when given (announced on stderr)
    and prints it to stdout with ``--json``.  Returns whether stdout was
    consumed — when False the caller renders its human text instead.
    """
    if getattr(args, "output", None):
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote {args.output}", file=sys.stderr)
    if args.json:
        _emit(payload)
        return True
    return False


def _check_protocol(name: Optional[str]) -> None:
    if name is not None and name not in available_routers():
        raise KeyError(f"unknown protocol {name!r}; known: "
                       f"{', '.join(available_routers())}")


def _scenario_config(args) -> ScenarioConfig:
    """Resolve a subcommand's scenario + overrides into one config."""
    overrides = parse_assignments(args.set or [])
    _check_protocol(getattr(args, "protocol", None))
    if getattr(args, "protocol", None):
        overrides["protocol"] = args.protocol
    return make_scenario(args.scenario, overrides)


# --------------------------------------------------------------- store plumbing
class _StoreProgress:
    """Stream one stderr line per resolved cell; count the cached/computed
    split for the ``store:`` summary line (what the CI smoke asserts on)."""

    def __init__(self) -> None:
        self.cached = 0
        self.computed = 0

    def __call__(self, event: Dict[str, object]) -> None:
        if event.get("status") == "cached":
            self.cached += 1
        else:
            self.computed += 1
        print(f"cell {int(event['index']) + 1}/{event['total']} "
              f"{event['status']:<8s} {event['scenario']}/{event['protocol']} "
              f"seed={event['seed']}", file=sys.stderr)

    def summary(self, path: str) -> str:
        return (f"store: reused {self.cached} cells, computed {self.computed} "
                f"({path})")


# ----------------------------------------------------------------- subcommands
def cmd_list(args) -> int:
    """``list``: show the scenario catalog and the protocol registry."""
    scenarios = [entry.describe() for entry in scenario_entries()]
    protocols = [{"name": name, "summary": router_summary(name)}
                 for name in available_routers()]
    if emit_payload(args, {"scenarios": scenarios, "protocols": protocols}):
        return 0
    print(f"Scenarios ({len(scenarios)}):")
    width = max(len(s["name"]) for s in scenarios)
    for entry in scenarios:
        print(f"  {entry['name']:<{width}}  [{entry['kind']:9s}] "
              f"{entry['summary']}")
    print()
    print(f"Protocols ({len(protocols)}):")
    width = max(len(p["name"]) for p in protocols)
    for proto in protocols:
        print(f"  {proto['name']:<{width}}  {proto['summary']}")
    return 0


def _run_checkpointed(args) -> "tuple[AveragedResult, List[str]]":
    """The checkpoint/resume arm of ``run`` (single seed, serial only)."""
    seeds = parse_seeds(args.seeds)
    if len(seeds) != 1:
        raise ValueError(
            "--checkpoint-every/--resume run a single simulation; pass one "
            "seed (snapshots pin the seed, averaging would need one file "
            "per seed)")
    if args.backend not in (None, "serial"):
        raise ValueError(
            "--checkpoint-every/--resume require the serial backend")
    if args.resume:
        overrides = parse_assignments(args.set or [])
        unsupported = set(overrides) - {"sim_time"}
        if unsupported or getattr(args, "protocol", None):
            raise ValueError(
                "--resume only accepts a sim_time override; the snapshot "
                "pins every other field (protocol, traffic, topology, seed)")
        report, config, written = resume_scenario(
            args.resume, sim_time=overrides.get("sim_time"),
            checkpoint_every=args.checkpoint_every,
            checkpoint_dir=args.checkpoint_dir)
    else:
        config = _scenario_config(args).with_overrides(seed=seeds[0])
        report, written = run_scenario_checkpointed(
            config, args.checkpoint_every, directory=args.checkpoint_dir)
    result = AveragedResult(protocol=config.protocol,
                            num_nodes=config.num_nodes,
                            seeds=[config.seed], reports=[report],
                            config=config)
    return result, written


def cmd_run(args) -> int:
    """``run``: run one scenario averaged over seeds."""
    written: List[str] = []
    if args.resume or args.checkpoint_every:
        if args.store:
            raise ValueError(
                "--store does not combine with --checkpoint-every/--resume; "
                "record the finished run into a store with a plain run")
        result, written = _run_checkpointed(args)
        protocol = result.protocol
        for path in written:
            print(f"wrote checkpoint {path}", file=sys.stderr)
    else:
        config = _scenario_config(args)
        protocol = config.protocol
        seeds = parse_seeds(args.seeds)
        if args.store:
            progress = _StoreProgress()
            with open_store(args.store) as store:
                result = run_averaged(config, seeds, backend=args.backend,
                                      store=store, progress=progress)
            print(progress.summary(args.store), file=sys.stderr)
        else:
            result = run_averaged(config, seeds, backend=args.backend)
    payload = {
        "scenario": args.scenario,
        "protocol": protocol,
        "backend": args.backend or "serial",
        "checkpoints": written,
        "resumed_from": args.resume,
        "summary": result.as_dict(),
        # timings stay in the JSON payload: the CI smoke uploads this as
        # the per-phase breakdown artifact (wall seconds + tick samples
        # per pipeline phase; excluded from determinism comparisons)
        "reports": [report.as_dict(include_timings=True)
                    for report in result.reports],
    }
    if emit_payload(args, payload):
        return 0
    print(f"scenario {args.scenario!r} protocol {protocol!r} "
          f"seeds {result.seeds} backend {args.backend or 'serial'}")
    print()
    print(format_report_table(result.reports))
    print()
    for metric in _HEADLINE_METRICS:
        print(f"mean {metric:<22s} {result.mean(metric):10.4f} "
              f"(std {result.std(metric):.4f})")
    if result.mean("community_detections") > 0:
        print(f"mean community_detections   "
              f"{result.mean('community_detections'):10.4f} "
              f"({result.mean('community_detection_seconds'):.4f} s compute, "
              f"{result.mean('community_reassignments'):.1f} reassignments)")
    phase_names = sorted({name for report in result.reports
                          for name in report.tick_phase_seconds})
    if phase_names:
        runs = len(result.reports)
        breakdown = "  ".join(
            f"{name} "
            f"{sum(r.tick_phase_seconds.get(name, 0.0) for r in result.reports) / runs:.3f}s"
            for name in phase_names)
        print(f"tick phases (mean wall time per run): {breakdown}")
        rates = []
        for name in phase_names:
            seconds = sum(r.tick_phase_seconds.get(name, 0.0)
                          for r in result.reports)
            samples = sum(r.tick_phase_samples.get(name, 0)
                          for r in result.reports)
            if samples and seconds > 0:
                rates.append(f"{name} {samples / seconds:,.0f}")
        if rates:
            print(f"tick phase throughput (ticks/s): {'  '.join(rates)}")
    if any(r.routers_ticked or r.routers_skipped or r.routers_batched
           for r in result.reports):
        runs = len(result.reports)
        print("router sweep (mean per run): "
              f"ticked {sum(r.routers_ticked for r in result.reports) / runs:,.0f}  "
              f"skipped {sum(r.routers_skipped for r in result.reports) / runs:,.0f}  "
              f"batched {sum(r.routers_batched for r in result.reports) / runs:,.0f}")
    if any(r.transfers_completed or r.transfers_aborted
           for r in result.reports):
        runs = len(result.reports)
        delivered_mb = (sum(r.bytes_delivered for r in result.reports)
                        / runs / (1024 * 1024))
        print("transfers (mean per run): "
              f"completed {sum(r.transfers_completed for r in result.reports) / runs:,.0f}  "
              f"aborted {sum(r.transfers_aborted for r in result.reports) / runs:,.0f}  "
              f"delivered {delivered_mb:,.1f} MB")
    return 0


def _sweep_resumed(args, grid):
    """Fork every grid cell of a horizon sweep from one warm snapshot.

    Only the ``sim_time`` axis is admissible: everything else — protocol,
    traffic model, topology — is baked into the serialized world, so a
    non-horizon override would silently not take effect.  Each cell loads
    the snapshot fresh and runs forward to its own horizon, which turns an
    N-cell warmup-heavy sweep into one warmup plus N cheap continuations.
    """
    from repro.experiments.results import SweepPoint

    unsupported = set(grid) - {"sim_time"}
    if unsupported or getattr(args, "protocol", None) or args.set:
        raise ValueError(
            "sweep --resume supports only the sim_time grid axis (the "
            "snapshot pins every other field); got "
            f"{sorted(unsupported) or 'non-horizon overrides'}")
    points = []
    for value in grid["sim_time"]:
        report, config, _ = resume_scenario(args.resume, sim_time=value)
        result = AveragedResult(protocol=config.protocol,
                                num_nodes=config.num_nodes,
                                seeds=[config.seed], reports=[report],
                                config=config)
        points.append(SweepPoint(overrides={"sim_time": value}, result=result))
    return points


def cmd_sweep(args) -> int:
    """``sweep``: run a scenario across a parameter grid."""
    grid = parse_grid(args.grid)
    if args.resume:
        if args.store:
            raise ValueError(
                "--store does not combine with --resume (snapshot-forked "
                "cells bypass the cell-identity dedupe)")
        points = _sweep_resumed(args, grid)
        seeds = points[0].result.seeds if points else []
    else:
        config = _scenario_config(args)
        seeds = parse_seeds(args.seeds)
        if args.store:
            progress = _StoreProgress()
            with open_store(args.store) as store:
                points = run_sweep(config, grid, seeds=seeds,
                                   backend=args.backend, store=store,
                                   progress=progress)
            print(progress.summary(args.store), file=sys.stderr)
        else:
            points = run_sweep(config, grid, seeds=seeds, backend=args.backend)
    rows = [{"overrides": point.overrides,
             "delivery_ratio": point.value("delivery_ratio"),
             "latency": point.value("average_latency"),
             "goodput": point.value("goodput"),
             "overhead_ratio": point.value("overhead_ratio")}
            for point in points]
    payload = {"scenario": args.scenario, "grid": grid, "seeds": seeds,
               "points": rows}
    if emit_payload(args, payload):
        return 0
    keys = list(grid)
    header = keys + ["delivery_ratio", "latency", "goodput", "overhead_ratio"]
    table = [header]
    for row in rows:
        table.append([str(row["overrides"][key]) for key in keys]
                     + [f"{row['delivery_ratio']:.4f}",
                        f"{row['latency']:.1f}",
                        f"{row['goodput']:.4f}",
                        f"{row['overhead_ratio']:.2f}"])
    widths = [max(len(line[col]) for line in table)
              for col in range(len(header))]
    for index, line in enumerate(table):
        text = "  ".join(cell.ljust(widths[col])
                         for col, cell in enumerate(line)).rstrip()
        print(text)
        if index == 0:
            print("-" * len(text))
    return 0


def cmd_bench(args) -> int:
    """``bench``: run the paired benchmarks, write/compare BENCH JSON."""
    from repro import bench

    if args.quick:
        # deprecated spelling: warn and forward (it predates --scale)
        print("warning: --quick is deprecated; use --scale quick",
              file=sys.stderr)
        if args.scale is not None and args.scale != "quick":
            raise ValueError(
                f"--quick contradicts --scale {args.scale}; pass one of them")
    scale = args.scale or "quick"
    payload = bench.run_benchmarks(scale_name=scale, seed=args.seed)
    if args.output:
        # BENCH artifacts keep their established trailing-newline format
        bench.write_payload(payload, args.output)
        print(f"wrote {args.output}", file=sys.stderr)
    status = 0
    if args.json:
        _emit(payload)
    else:
        print(bench.format_summary(payload))
    mismatched = [name for name, entry in payload["benchmarks"].items()
                  if not entry["checksums_match"]]
    if mismatched:
        print(f"error: checksum mismatch in {', '.join(mismatched)} — the "
              "vectorized path diverged from the reference implementation",
              file=sys.stderr)
        status = 1
    if args.compare:
        baseline = bench.load_payload(args.compare)
        failures = bench.compare_to_baseline(payload, baseline,
                                             max_regression=args.max_regression)
        if failures:
            for failure in failures:
                print(f"regression: {failure}", file=sys.stderr)
            status = 1
        else:
            print(f"no regression vs {args.compare} "
                  f"(threshold {args.max_regression:.0%})", file=sys.stderr)
    return status


def _figure_kwargs(name: str, args) -> Dict[str, object]:
    """Driver-specific keyword arguments for one figure, from the CLI args."""
    if name == "fig2":
        return {"node_counts": args.nodes,
                "protocols": _csv_names(args.protocols)}
    if name in ("fig3", "fig4"):
        return {"node_counts": args.nodes, "lambdas": args.lambdas}
    defaults = {"ablation-alpha": ("alphas", "0.1,0.28,0.5,1.0"),
                "ablation-ttl": ("ttls", "300,600,1200,2400"),
                "ablation-buffer": ("buffers",
                                    "262144,524288,1048576,2097152")}
    keyword, fallback = defaults[name]
    # --values carries ablation sweep values; for `figure all` every
    # ablation uses its own defaults (one shared list cannot fit all three)
    values = args.values if args.figure != "all" else None
    return {keyword: _csv_floats(values or fallback)}


def cmd_figure(args) -> int:
    """``figure``: regenerate one paper figure / ablation — or all of them."""
    if args.scale == "paper":
        base = ScenarioConfig.paper_scale()
    else:
        base = ScenarioConfig.bench_scale()
    overrides = parse_assignments(args.set or [])
    if overrides:
        base = apply_overrides(base, overrides)
    seeds = parse_seeds(args.seeds)
    names = FIGURE_NAMES if args.figure == "all" else (args.figure,)
    progress = _StoreProgress() if args.store else None
    store = open_store(args.store) if args.store else None
    try:
        rendered = {
            name: figure_drivers.figure(
                name, seeds=seeds, base=base, backend=args.backend,
                store=store, progress=progress, **_figure_kwargs(name, args))
            for name in names}
    finally:
        if store is not None:
            store.close()
    if progress is not None:
        print(progress.summary(args.store), file=sys.stderr)
    if args.figure == "all":
        payload: Dict[str, object] = {
            "figures": {name: fig.as_dict()
                        for name, fig in rendered.items()}}
    else:
        payload = rendered[args.figure].as_dict()
    if emit_payload(args, payload):
        return 0
    for name in names:
        print(format_figure(rendered[name]))
    return 0


def cmd_serve(args) -> int:
    """``serve``: drain a spool of run requests into a results store."""

    def emit(event: Dict[str, object]) -> None:
        if args.json:
            print(json.dumps(event, sort_keys=True), flush=True)
        elif event.get("event") == "cell":
            print(f"[{event['request']}] cell {int(event['index']) + 1}/"
                  f"{event['total']} {event['status']} "
                  f"{event['scenario']}/{event['protocol']} "
                  f"seed={event['seed']}", flush=True)
        elif event.get("status") == "failed":
            print(f"[{event['request']}] failed: {event['error']}", flush=True)
        else:
            print(f"[{event['request']}] done "
                  f"(computed {event['cells_computed']}, "
                  f"cached {event['cells_cached']})", flush=True)

    with open_store(args.store) as store:
        summary = serve(args.spool, store, once=args.once, poll=args.poll,
                        backend=args.backend, emit=emit,
                        max_requests=args.max_requests)
    payload = {"spool": args.spool, "store": args.store, **summary}
    if args.json:
        print(json.dumps({"event": "summary", **payload}, sort_keys=True),
              flush=True)
    if getattr(args, "output", None):
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote {args.output}", file=sys.stderr)
    if not args.json:
        print(f"serve: {summary['requests_done']} done, "
              f"{summary['requests_failed']} failed; "
              f"cells computed {summary['cells_computed']}, "
              f"cached {summary['cells_cached']}")
    return 0 if summary["requests_failed"] == 0 else 1


# ---------------------------------------------------------------------- parser
def _add_output_flags(p) -> None:
    """The uniform output contract: every subcommand has these two."""
    p.add_argument("--json", action="store_true",
                   help="machine-readable payload on stdout")
    p.add_argument("--output", default=None, metavar="FILE",
                   help="also write the JSON payload to FILE")


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="DTN routing reproduction (conf_icpp_ChenL11): run "
                    "scenarios, sweeps and paper figures from the command "
                    "line.")
    sub = parser.add_subparsers(dest="command", required=True)

    list_parser = sub.add_parser(
        "list", help="list registered scenarios and protocols")
    _add_output_flags(list_parser)
    list_parser.set_defaults(func=cmd_list)

    def add_common(p, scenario: bool = True):
        if scenario:
            p.add_argument("scenario", choices=available_scenarios(),
                           metavar="SCENARIO",
                           help="a scenario name from 'list'")
            p.add_argument("--protocol", default=None,
                           help="routing protocol (default: the scenario's)")
        p.add_argument("--seeds", default="1",
                       help="seed spec: N, A-B or A,B,C (default: 1)")
        p.add_argument("--backend", choices=("serial", "process"),
                       default=None,
                       help="execution backend (default: serial)")
        p.add_argument("--set", action="append", metavar="KEY=VALUE",
                       help="override a scenario field (repeatable; "
                            "router.NAME goes to router_params)")
        _add_output_flags(p)

    run_parser = sub.add_parser(
        "run", help="run one scenario, averaged over seeds")
    add_common(run_parser)
    run_parser.add_argument(
        "--store", default=None, metavar="FILE",
        help="results store: serve already-recorded seeds from it, append "
             "fresh ones (see docs/results-store.md)")
    run_parser.add_argument(
        "--checkpoint-every", type=float, default=None, metavar="SECONDS",
        help="snapshot the world every SECONDS of simulated time (single "
             "seed, serial backend; see docs/checkpointing.md)")
    run_parser.add_argument(
        "--checkpoint-dir", default=".", metavar="DIR",
        help="directory for --checkpoint-every snapshots (default: .)")
    run_parser.add_argument(
        "--resume", default=None, metavar="FILE",
        help="resume a snapshot instead of starting fresh; only a sim_time "
             "--set override is accepted (the snapshot pins the rest)")
    run_parser.set_defaults(func=cmd_run)

    sweep_parser = sub.add_parser(
        "sweep", help="run a scenario across a parameter grid")
    add_common(sweep_parser)
    sweep_parser.add_argument(
        "--grid", action="append", required=True, metavar="KEY=V1,V2,...",
        help="one grid axis (repeatable; crossed as a Cartesian product)")
    sweep_parser.add_argument(
        "--store", default=None, metavar="FILE",
        help="results store: skip cells already in it, append fresh cells "
             "as they complete — an interrupted sweep resumes for free")
    sweep_parser.add_argument(
        "--resume", default=None, metavar="FILE",
        help="fork every cell from a warmed-up snapshot (sim_time axis only)")
    sweep_parser.set_defaults(func=cmd_sweep)

    figure_parser = sub.add_parser(
        "figure", help="regenerate paper figures / ablations")
    figure_parser.add_argument("figure", choices=FIGURE_NAMES + ("all",),
                               metavar="FIGURE",
                               help=f"one of: {', '.join(FIGURE_NAMES)}, all")
    figure_parser.add_argument("--scale", choices=("bench", "paper"),
                               default="bench",
                               help="base scenario scale (default: bench)")
    figure_parser.add_argument("--nodes", type=_csv_ints, default=[40, 80, 120],
                               metavar="N1,N2,...",
                               help="node counts (default: 40,80,120)")
    figure_parser.add_argument("--lambdas", type=_csv_ints,
                               default=[6, 8, 10, 12], metavar="L1,L2,...",
                               help="replica quotas for fig3/fig4")
    figure_parser.add_argument("--protocols",
                               default="eer,cr,ebr,maxprop,spray-and-wait,"
                                       "spray-and-focus",
                               metavar="P1,P2,...",
                               help="protocols for fig2")
    figure_parser.add_argument("--values", default=None, metavar="V1,V2,...",
                               help="sweep values for a single ablation "
                                    "(ignored by 'all': each ablation keeps "
                                    "its defaults)")
    figure_parser.add_argument("--store", "--from-store", dest="store",
                               default=None, metavar="FILE",
                               help="render from a results store, simulating "
                                    "only the missing cells (--from-store is "
                                    "an alias)")
    add_common(figure_parser, scenario=False)
    figure_parser.set_defaults(func=cmd_figure)

    serve_parser = sub.add_parser(
        "serve", help="serve queued run requests from a spool directory")
    serve_parser.add_argument("spool", metavar="SPOOL_DIR",
                              help="directory watched for *.json run "
                                   "requests (see docs/results-store.md)")
    serve_parser.add_argument("--store", required=True, metavar="FILE",
                              help="results store every cell resolves "
                                   "through")
    serve_parser.add_argument("--once", action="store_true",
                              help="drain the queued requests, then exit "
                                   "(default: keep polling)")
    serve_parser.add_argument("--poll", type=float, default=2.0,
                              metavar="SECONDS",
                              help="idle poll interval (default: 2.0)")
    serve_parser.add_argument("--max-requests", type=int, default=None,
                              metavar="N",
                              help="stop after N processed requests")
    serve_parser.add_argument("--backend", choices=("serial", "process"),
                              default=None,
                              help="execution backend per request "
                                   "(default: serial)")
    _add_output_flags(serve_parser)
    serve_parser.set_defaults(func=cmd_serve)

    bench_parser = sub.add_parser(
        "bench", help="run the paired performance benchmarks")
    bench_parser.add_argument("--scale", choices=("smoke", "quick", "full"),
                              default=None,
                              help="benchmark scale (default: quick)")
    bench_parser.add_argument("--quick", action="store_true",
                              help="deprecated spelling of --scale quick "
                                   "(warns and forwards)")
    bench_parser.add_argument("--seed", type=int, default=1,
                              help="workload seed (default: 1)")
    bench_parser.add_argument("--compare", default=None, metavar="FILE",
                              help="fail when a paired speedup regresses vs "
                                   "a committed BENCH_*.json")
    bench_parser.add_argument("--max-regression", type=float, default=0.25,
                              metavar="FRACTION",
                              help="allowed speedup drop for --compare "
                                   "(default: 0.25)")
    _add_output_flags(bench_parser)
    bench_parser.set_defaults(func=cmd_bench)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (KeyError, ValueError, TypeError, OSError, CheckpointError,
            StoreError) as error:
        message = error.args[0] if error.args else str(error)
        print(f"error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
