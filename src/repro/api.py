"""The stable public API facade.

``repro.api`` is the blessed import surface for driving experiments from
Python: one module, a handful of entry points, stable across refactors of
the packages underneath.  Everything here follows one result-type
convention — :class:`AveragedResult` and :class:`SweepPoint` share the
``as_dict()``/``identity_keys()`` contract (see
:mod:`repro.experiments.results`), and every entry point accepts an optional
results store for exact dedupe and crash-resumable grids.

    from repro import api

    config = api.ScenarioConfig.bench_scale(protocol="eer", num_nodes=40)
    report = api.run(config)                        # one simulation
    result = api.run_averaged(config, seeds=[1, 2]) # averaged over seeds

    with api.open_store("results.sqlite") as store:
        points = api.sweep(config, {"message_copies": [4, 8, 12]},
                           seeds=[1, 2], store=store)   # resumable
        fig = api.figure("fig3", seeds=[1, 2], store=store)

The old deep import paths (``repro.experiments.runner.AveragedResult``,
``repro.experiments.sweep.SweepPoint``) keep working but warn; new code
should import from here or from :mod:`repro.experiments`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.backend import (
    BackendLike,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
)
from repro.experiments.catalog import available_scenarios, make_scenario
from repro.experiments.figures import (
    FIGURE_NAMES,
    FigureResult,
    figure,
    figure_set,
)
from repro.experiments.results import AveragedResult, SweepPoint
from repro.experiments.runner import run_averaged, run_many_averaged, run_scenario
from repro.experiments.scenario import (
    MobilityKind,
    ScenarioConfig,
    apply_overrides,
)
from repro.experiments.sweep import sweep, sweep_grid
from repro.metrics.reports import SimulationReport
from repro.store import ResultsStore, open_store, serve


def run(config: ScenarioConfig, *, store: Optional[ResultsStore] = None
        ) -> SimulationReport:
    """Run one fully-specified scenario and return its report.

    With a *store*, a run whose identity key is already recorded is served
    from it (no simulation); a fresh run is appended before returning —
    stored and fresh reports are byte-identical in their canonical form.
    """
    if store is not None:
        cached = store.get(config)
        if cached is not None:
            return cached
    report = run_scenario(config)
    if store is not None:
        store.put(config, report)
    return report


__all__ = [
    # the blessed entry points
    "run",
    "run_averaged",
    "run_many_averaged",
    "sweep",
    "sweep_grid",
    "figure",
    "figure_set",
    "open_store",
    "serve",
    # the types they take and return
    "ScenarioConfig",
    "MobilityKind",
    "SimulationReport",
    "AveragedResult",
    "SweepPoint",
    "FigureResult",
    "ResultsStore",
    # catalog + composition helpers
    "available_scenarios",
    "make_scenario",
    "apply_overrides",
    "FIGURE_NAMES",
    # execution backends
    "BackendLike",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
]
