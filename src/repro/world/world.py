"""The world update loop.

:class:`World` owns the nodes and, once per update interval (the paper's
``update interval`` setting), runs an explicit
:class:`~repro.world.pipeline.TickPipeline` of four named phases:

1. ``move`` — advance every node along its movement model (batched through
   :class:`~repro.mobility.engine.MovementEngine`; models with a batch
   kernel advance in one vectorized call, the rest keep the per-follower
   loop),
2. ``connectivity`` — re-detect link pairs and raise link-up / link-down
   events,
3. ``transfers`` — progress in-flight transfers on every live connection and
   hand completed replicas to the receiving routers,
4. ``routers`` — give every router an ``update`` tick so it can expire TTLs
   and enqueue new transfers.

Each phase is wall-clock metered through the stats collector (see
``tick_phase_seconds``), which is how the world-tick benchmarks attribute
cost per stage and how sharded phase implementations prove their speedups.

The tick is kept allocation-free where it matters (see DESIGN.md): node
positions live in a single preallocated
:class:`~repro.world.positions.PositionStore` that movement mutates in
place, the connectivity detector is stateful and reuses its acceleration
structures across ticks, and link-up / link-down events are derived by
diffing sorted pair-code arrays instead of Python sets.

All statistics flow through a single :class:`~repro.metrics.collector.StatsCollector`.
"""

from __future__ import annotations

from time import perf_counter as _perf_counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.metrics.collector import StatsCollector
from repro.mobility.engine import MovementEngine
from repro.net.connection import Connection, Transfer
from repro.net.engine import TransferEngine
from repro.net.message import Message
from repro.routing.soa import RouterStateStore
from repro.sim.engine import Simulator
from repro.sim.process import PeriodicProcess
from repro.world.connectivity import ConnectivityDetector, KDTreeConnectivity
from repro.world.node import DTNNode
from repro.world.pipeline import TickPhase, TickPipeline
from repro.world.positions import PositionStore

#: node ids are packed two-per-int64 for the sorted link diff
_MAX_NODE_ID = 2 ** 31 - 1


def _empty_codes() -> np.ndarray:
    return np.empty(0, dtype=np.int64)


def _sorted_diff(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a \\ b`` for sorted unique int arrays, without re-sorting.

    Equivalent to ``np.setdiff1d(a, b, assume_unique=True)`` but exploits
    that both inputs are already sorted (one ``searchsorted`` instead of a
    concatenate-and-sort), which the per-tick link diff calls twice.
    """
    if not len(a) or not len(b):
        return a
    idx = np.searchsorted(b, a)
    idx[idx == len(b)] = len(b) - 1
    return a[b[idx] != a]


def _decode_codes(codes: np.ndarray) -> List[Tuple[int, int]]:
    """Unpack sorted link codes into ascending ``(id_lo, id_hi)`` key tuples.

    One vectorized shift and one mask over the whole array (instead of the
    historical per-code Python ``int()`` comprehension); ``tolist`` hands
    back native ints, and sorted codes unpack to keys in ascending pair
    order — the order the link dispatch contract requires.

    The ``int64`` normalisation below guarantees the ``tolist`` results are
    plain Python ints whatever array dtype (or plain sequence) the caller
    hands in — keys land in dicts holding up to 100k ids, where a stray
    ``np.int64`` key would hash equal but cost an object per lookup.
    """
    codes = np.asarray(codes, dtype=np.int64)
    if not len(codes):
        return []
    return list(zip((codes >> 32).tolist(), (codes & 0xFFFFFFFF).tolist()))


class World:
    """Container and update driver for a set of DTN nodes.

    Parameters
    ----------
    simulator:
        The discrete-event engine the world schedules its update process on.
    update_interval:
        Seconds between world updates (the paper uses 0.1 s; the reproduction
        defaults to 1 s, see DESIGN.md).
    stats:
        Statistics collector; a fresh one is created if not supplied.
    detector:
        Connectivity detector implementation.
    batch_movement:
        ``False`` pins the ``move`` phase to the historical per-follower
        loop; the default lets batch-capable mobility models advance through
        the vectorized :class:`~repro.mobility.engine.MovementEngine`
        kernel (bit-identical either way, see engine.py).
    router_skiplist:
        ``True`` (the default) lets the ``routers`` phase skip provably idle
        routers (see DESIGN.md, "The idle router contract"): a router is
        ticked only when it has buffered messages, a live connection with
        queued transfers, a TTL due, a link event this tick, or opts out of
        skipping (``Router.idle_skip_safe``).  ``False`` pins the historical
        tick-every-router loop; both settings are bit-identical by
        construction, pinned by report-equality tests.
    router_soa:
        ``True`` (the default) resolves the ``routers`` phase through the
        struct-of-arrays sweep (see DESIGN.md, "Struct-of-arrays router
        state"): the skip predicate evaluates as vectorized masks over
        columnar per-router state, provable no-op ticks of batch-capable
        protocols (``Router.supports_batch_update``) resolve without
        executing, and the remainder runs the exact per-router loop in the
        same order.  ``False`` pins the PR6 per-router skip-scan as the
        benchmark baseline; bit-identical simulation outcomes either way.
        Requires ``router_skiplist`` (the sweep *is* the skip predicate).
    transfer_engine:
        ``True`` (the default) resolves the ``transfers`` phase through the
        columnar :class:`~repro.net.engine.TransferEngine` (see DESIGN.md,
        "Columnar transfer accounting"): in-flight head-of-queue bytes
        drain in one vectorized subtraction over struct-of-arrays rows, and
        only connections whose head transfer completed this tick replay the
        exact reference drain (in ``established_seq`` order, so completion
        dispatch is byte-identical).  ``False`` pins the per-connection
        ``Connection.advance`` loop as the benchmark baseline.  Requires
        ``flat_tick`` (the engine's push seams — activity sink,
        ``established_seq`` — only exist there).
    """

    def __init__(self, simulator: Simulator, update_interval: float = 1.0,
                 stats: Optional[StatsCollector] = None,
                 detector: Optional[ConnectivityDetector] = None,
                 batch_movement: bool = True,
                 router_skiplist: bool = True,
                 flat_tick: bool = True,
                 router_soa: bool = True,
                 transfer_engine: bool = True) -> None:
        if update_interval <= 0:
            raise ValueError("update_interval must be positive")
        if router_skiplist and not flat_tick:
            # the skip-list's O(1) queued-transfer check relies on the
            # flattened tick's activity-sink registrations; the historical
            # tick never populates them
            raise ValueError("router_skiplist requires flat_tick")
        if router_soa and not router_skiplist:
            # the SoA sweep is a vectorized evaluation of the skip
            # predicate; without the skip-list there is no predicate to
            # vectorize (the reference loop ticks every router)
            raise ValueError("router_soa requires router_skiplist")
        if transfer_engine and not flat_tick:
            # engine rows key on established_seq and ingest from the
            # activity sink — flat-tick machinery the historical tick
            # never assigns
            raise ValueError("transfer_engine requires flat_tick")
        self.simulator = simulator
        self.update_interval = float(update_interval)
        self.stats = stats if stats is not None else StatsCollector()
        self.detector = detector if detector is not None else KDTreeConnectivity()
        self.router_skiplist = bool(router_skiplist)
        self.router_soa = bool(router_soa)
        #: False pins the historical tick structure — per-event contact
        #: stats, a fresh Connection per establishment (no pooling) and the
        #: O(live links) transfer scan — as the reference half of the
        #: world-tick benchmarks; identical simulation outcomes either way
        self.flat_tick = bool(flat_tick)
        #: world-scoped shared services (e.g. the community provider all CR
        #: routers of this world consult); keyed by an arbitrary hashable
        self.services: Dict[object, object] = {}
        self._nodes: Dict[int, DTNNode] = {}
        self._node_order: List[DTNNode] = []
        self._positions = PositionStore()
        self.movement = MovementEngine(self._positions, batch=batch_movement)
        self._connections: Dict[Tuple[int, int], Connection] = {}
        #: sorted int64 codes (id_lo << 32 | id_hi) of the live links
        self._link_codes = _empty_codes()
        #: node ids that received a link event since their last routers phase
        #: (the skip-list's dirty set; cleared at the end of every routers
        #: phase)
        self._router_events: set = set()
        # connection pooling: a connection released by a tear-down becomes
        # reusable only from the *next* link-diff application onward —
        # routers are handed the torn-down object in the same tick's batch
        # dispatch, so same-tick reuse would alias two links onto one object
        self._connection_pool: List[Connection] = []
        self._released_connections: List[Connection] = []
        self._conn_seq = 0
        #: connections whose queue went empty -> non-empty since the last
        #: transfers phase (fed by Connection.activity_sink)
        self._newly_active: List[Connection] = []
        #: established_seq -> connection, for every connection that may hold
        #: queued transfers; the transfers phase walks this instead of every
        #: live link
        self._active_transfers: Dict[int, Connection] = {}
        # skip-list/sweep observability (surfaced on SimulationReport, the
        # CI smoke and the benchmarks): ticked = real Router.update calls,
        # skipped = provably asleep, batched = awake no-ops the SoA sweep
        # resolved without executing
        self.routers_ticked = 0
        self.routers_skipped = 0
        self.routers_batched = 0
        #: columnar per-router state behind the vectorized routers phase
        #: (None when router_soa is off; see repro.routing.soa)
        self.router_store = RouterStateStore() if self.router_soa else None
        #: columnar in-flight transfer state behind the vectorized transfers
        #: phase (None when the engine is off; see repro.net.engine).  With
        #: the engine on, ``_active_transfers`` stays empty — the engine's
        #: rows *are* the active set
        self.transfer_engine = TransferEngine() if transfer_engine else None
        #: per-node caches rebuilt lazily after node registration
        self._ranges_cache: Optional[np.ndarray] = None
        self._ids_cache: Optional[np.ndarray] = None
        self._last_update = 0.0
        self.updates = 0
        #: the staged tick: every update runs these four phases in order,
        #: each metered into ``stats.tick_phase_seconds``
        self.pipeline = TickPipeline([
            TickPhase("move", self._phase_move),
            TickPhase("connectivity", self._phase_connectivity),
            TickPhase("transfers", self._phase_transfers),
            TickPhase("routers", self._phase_routers),
        ], stats=self.stats)
        self._process = PeriodicProcess(
            simulator, self.update_interval, self._update, priority=0)

    # ------------------------------------------------------------------ nodes
    def add_node(self, node: DTNNode) -> DTNNode:
        """Register *node* (its id must be unique) and return it.

        The node's path follower is re-bound onto this world's position
        store, so from here on the node moves by writing into its row of the
        world-wide position matrix.
        """
        if node.node_id in self._nodes:
            raise ValueError(f"duplicate node id {node.node_id}")
        if node.node_id > _MAX_NODE_ID:
            raise ValueError(f"node id {node.node_id} exceeds {_MAX_NODE_ID}")
        if node.router is None:
            raise ValueError(f"node {node.node_id} has no router attached")
        backing = self._positions.data
        index = self._positions.add(node.position)
        if self._positions.data is not backing:
            # the store grew and reallocated: re-bind every existing follower
            # onto its (moved) row view
            for row, existing in enumerate(self._node_order):
                existing.follower.bind(self._positions.row(row))
        node.follower.bind(self._positions.row(index))
        self.movement.register(node.follower)
        self._nodes[node.node_id] = node
        self._node_order.append(node)
        if self.router_store is not None:
            # SoA rows are appended in registration order, so store row
            # index == _node_order index == the serial loop's visit order
            self.router_store.register(node)
        self._ranges_cache = None
        self._ids_cache = None
        return node

    @property
    def nodes(self) -> List[DTNNode]:
        """All nodes in registration order."""
        return list(self._node_order)

    @property
    def num_nodes(self) -> int:
        """Number of registered nodes."""
        return len(self._node_order)

    def node_ids(self) -> List[int]:
        """All node ids in registration order."""
        return [node.node_id for node in self._node_order]

    def get_node(self, node_id: int) -> DTNNode:
        """Look up a node by id."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise KeyError(f"no node with id {node_id}") from None

    def community_of(self, node_id: int) -> Optional[int]:
        """Community id of *node_id* (``None`` if unknown / not structured)."""
        node = self._nodes.get(node_id)
        return None if node is None else node.community

    def positions(self) -> np.ndarray:
        """``(n, 2)`` array of current node positions (registration order).

        This is a live, zero-copy view of the world's position store: it
        reflects movement as it happens and must not be mutated by callers.
        """
        return self._positions.view()

    def ranges(self) -> np.ndarray:
        """``(n,)`` array of per-node radio ranges (registration order).

        Cached: radios are assumed immutable for a node's lifetime
        (:class:`~repro.world.interface.Interface` is frozen, and swapping
        ``node.interface`` mid-run is unsupported — connectivity would keep
        using the range recorded at registration).
        """
        if self._ranges_cache is None or len(self._ranges_cache) != len(self._node_order):
            self._ranges_cache = np.array(
                [node.interface.transmit_range for node in self._node_order],
                dtype=float)
        return self._ranges_cache

    def _node_id_array(self) -> np.ndarray:
        if self._ids_cache is None or len(self._ids_cache) != len(self._node_order):
            self._ids_cache = np.array(
                [node.node_id for node in self._node_order], dtype=np.int64)
        return self._ids_cache

    # --------------------------------------------------------------- messages
    def create_message(self, source_id: int, message: Message) -> bool:
        """Inject an application message at its source node.

        Returns ``True`` if the source router accepted (buffered) it.
        """
        node = self.get_node(source_id)
        self.stats.message_created(message)
        assert node.router is not None
        return node.router.create_message(message)

    # ------------------------------------------------------------ connections
    @property
    def connections(self) -> List[Connection]:
        """All currently active connections."""
        return list(self._connections.values())

    def connection_between(self, a: int, b: int) -> Optional[Connection]:
        """The active connection between nodes *a* and *b*, if any."""
        return self._connections.get((min(a, b), max(a, b)))

    # ----------------------------------------------------------------- update
    def _update(self, simulator: Simulator) -> None:
        now = simulator.now
        dt = now - self._last_update
        self._last_update = now
        self.updates += 1
        if dt <= 0:
            return
        self.pipeline.run(now, dt)

    # one thin adapter per phase: the pipeline hands every stage the same
    # ``(now, dt)`` signature, subclass overrides of the underlying methods
    # (e.g. TraceReplayWorld._refresh_connectivity) keep working
    def _phase_move(self, now: float, dt: float) -> None:
        self._move_nodes(dt, now)

    def _phase_connectivity(self, now: float, dt: float) -> None:
        self._refresh_connectivity(now)

    def _phase_transfers(self, now: float, dt: float) -> None:
        self._advance_transfers(now, dt)

    def _phase_routers(self, now: float, dt: float) -> None:
        self._update_routers(now)

    def _move_nodes(self, dt: float, now: float) -> None:
        self.movement.advance(dt, now)

    def _refresh_connectivity(self, now: float) -> None:
        # sub-metered separately from the surrounding phase: the phase also
        # applies link events (world bookkeeping + router dispatch), and the
        # detector benchmarks compare pure detection cost across detectors
        start = _perf_counter()
        index_pairs = self.detector.update(self.positions(), self.ranges())
        self.stats.tick_phase("connectivity.detect", _perf_counter() - start)
        if len(index_pairs):
            ids = self._node_id_array()
            a = ids[index_pairs[:, 0]]
            b = ids[index_pairs[:, 1]]
            codes = (np.minimum(a, b) << 32) | np.maximum(a, b)
            codes.sort()
        else:
            codes = _empty_codes()
        previous = self._link_codes
        down_keys = _decode_codes(_sorted_diff(previous, codes))
        up_keys = _decode_codes(_sorted_diff(codes, previous))
        self._link_codes = codes
        if down_keys or up_keys:
            self._apply_link_changes(down_keys, up_keys, now)

    @staticmethod
    def _decode(code: np.int64) -> Tuple[int, int]:
        """Decode one packed link code (kept for tests/exploratory use; the
        tick uses the vectorized :func:`_decode_codes`)."""
        value = int(code)
        return value >> 32, value & 0xFFFFFFFF

    def _apply_link_changes(self, down_keys: List[Tuple[int, int]],
                            up_keys: List[Tuple[int, int]], now: float) -> None:
        """Apply one tick's sorted link diff and notify routers in batches.

        Phase 1 performs all world-side bookkeeping in the deterministic
        event order (tear-downs in ascending pair order — aborting transfers
        and closing contacts — then establishments in ascending pair order).
        Phase 2 hands every affected router *all* of its link changes in one
        :meth:`~repro.routing.base.Router.batch_changed_connections` call,
        in ascending node-id order.  Ascending dispatch preserves the
        contact-state exchange invariant (see
        :meth:`~repro.routing.active.ContactAwareRouter.is_exchange_initiator`):
        the larger-id endpoint of every new contact — the exchange initiator —
        is always notified after the smaller-id endpoint has folded the
        contact into its own state.
        """
        flat = self.flat_tick
        # connections released by the *previous* diff application become
        # reusable now: routers saw those objects in that tick's batch
        # dispatch, and any stale transfer-phase registration has been purged
        if flat and self._released_connections:
            self._connection_pool.extend(self._released_connections)
            self._released_connections = []
        events_by_node: Dict[int, List[Tuple[Connection, bool]]] = {}
        bucket = events_by_node.setdefault
        teardown = self._teardown_link
        for key in down_keys:
            connection = teardown(key, now)
            event = (connection, False)
            bucket(key[0], []).append(event)
            bucket(key[1], []).append(event)
        if flat and down_keys:
            self.stats.contact_down_batch(down_keys, now)
        establish = self._establish_link
        for key in up_keys:
            connection = establish(key, now)
            event = (connection, True)
            bucket(key[0], []).append(event)
            bucket(key[1], []).append(event)
        if flat and up_keys:
            self.stats.contact_up_batch(up_keys, now)
        # every endpoint that saw a link event must run its next routers
        # phase (the skip-list's wake condition: per-meeting evaluation gates
        # are consumed on that tick)
        self._router_events.update(events_by_node)
        nodes = self._nodes
        for node_id in sorted(events_by_node):
            router = nodes[node_id].router
            assert router is not None
            router.batch_changed_connections(events_by_node[node_id])

    def _establish_link(self, key: Tuple[int, int], now: float) -> Connection:
        """World-side bookkeeping for a new link (no router notification;
        contact stats are recorded in batch by the caller on the flat tick,
        per event here on the historical one)."""
        node_a = self._nodes[key[0]]
        node_b = self._nodes[key[1]]
        bitrate = node_a.interface.link_bitrate(node_b.interface)
        if not self.flat_tick:
            connection = Connection(node_a, node_b, bitrate, now)
            self.stats.contact_up(node_a.node_id, node_b.node_id, now)
        elif self._connection_pool:
            connection = self._connection_pool.pop()
            connection.reset(node_a, node_b, bitrate, now)
        else:
            connection = Connection(node_a, node_b, bitrate, now)
        if self.flat_tick:
            self._conn_seq += 1
            connection.established_seq = self._conn_seq
            connection.activity_sink = self._newly_active
            connection.engine = self.transfer_engine
        self._connections[key] = connection
        node_a.connections[node_b.node_id] = connection
        node_b.connections[node_a.node_id] = connection
        if self.router_store is not None:
            self.router_store.link_delta(key[0], key[1], 1)
        return connection

    def _teardown_link(self, key: Tuple[int, int], now: float) -> Connection:
        """World-side bookkeeping for a lost link (no router notification;
        contact stats are recorded in batch by the caller)."""
        connection = self._connections.pop(key)
        aborted = connection.tear_down(now)
        for transfer in aborted:
            self.stats.transfer_aborted(
                transfer.message, transfer.sender.node_id,
                transfer.receiver.node_id, now, transfer.bytes_left)
            assert transfer.sender.router is not None
            transfer.sender.router.transfer_aborted(transfer)
        node_a = connection.node_a
        node_b = connection.node_b
        node_a.connections.pop(node_b.node_id, None)
        node_b.connections.pop(node_a.node_id, None)
        if self.router_store is not None:
            self.router_store.link_delta(key[0], key[1], -1)
        if self.flat_tick:
            self._released_connections.append(connection)
        else:
            self.stats.contact_down(node_a.node_id, node_b.node_id, now)
        return connection

    def _link_up(self, key: Tuple[int, int], now: float) -> None:
        """Establish one link and notify both routers (single-event path)."""
        self._apply_link_changes([], [key], now)

    def _link_down(self, key: Tuple[int, int], now: float) -> None:
        """Tear down one link and notify both routers (single-event path)."""
        self._apply_link_changes([key], [], now)

    def _advance_transfers(self, now: float, dt: float) -> None:
        """Progress in-flight transfers on every connection that has any.

        O(connections with queued transfers), not O(live links): routers
        announce queue activity through ``Connection.activity_sink`` and the
        registrations drain here.  Processing in ascending
        ``established_seq`` order reproduces the historical iteration order
        of the live-link table exactly (dict insertion order == establishment
        order, because a re-established key re-enters the table at the end
        with a fresh sequence number).  No transfer is ever enqueued during
        this phase — sends happen in router hooks (contact/update) — so the
        active set only shrinks mid-phase.
        """
        if not self.flat_tick:
            # historical structure: scan every live link (the reference
            # half of the world-tick benchmarks)
            for connection in list(self._connections.values()):
                for transfer in connection.advance(now, dt):
                    self._complete_transfer(transfer, now)
            return
        engine = self.transfer_engine
        if engine is not None:
            # columnar path: one vectorized byte sweep, exact replay only
            # for rows whose head completed (see repro.net.engine).  The
            # engine's rows replace ``_active_transfers`` entirely
            engine.sweep(self, now, dt)
            return
        active = self._active_transfers
        pending = self._newly_active
        if pending:
            for connection in pending:
                active[connection.established_seq] = connection
            pending.clear()
        if not active:
            return
        finished: List[int] = []
        for seq in sorted(active):
            connection = active[seq]
            # a pooled connection re-established under a new sequence number
            # leaves its old registration stale; likewise torn-down links
            if connection.established_seq != seq or not connection.is_up:
                finished.append(seq)
                continue
            for transfer in connection.advance(now, dt):
                self._complete_transfer(transfer, now)
            if not connection.has_queued:
                finished.append(seq)
        for seq in finished:
            del active[seq]

    def _complete_transfer(self, transfer: Transfer, now: float) -> None:
        sender = transfer.sender
        receiver = transfer.receiver
        replica = transfer.message.replicate(transfer.copies, receiver.node_id, now)
        assert receiver.router is not None and sender.router is not None
        accepted = receiver.router.receive_message(replica, sender)
        final = replica.destination == receiver.node_id
        self.stats.message_relayed(replica, sender.node_id, receiver.node_id,
                                   now, transfer.copies, final)
        self.stats.transfer_completed(replica)
        # Only *accepted* arrivals at the destination count toward delivery
        # accounting; the collector dedupes repeat arrivals by message id
        # (first one is the delivery, later ones are duplicate_deliveries).
        if final and accepted:
            self.stats.message_delivered(replica, now)
        if accepted:
            sender.router.transfer_completed(transfer)

    def _no_queued_transfers(self) -> bool:
        """Whether provably no connection anywhere holds a queued transfer.

        The O(1) half of the skip-list wake predicate.  With the transfer
        engine on the active set lives in the engine's rows
        (``_active_transfers`` stays empty); either way an un-ingested
        announcement in ``_newly_active`` counts as queued.
        """
        if self._newly_active:
            return False
        if self.transfer_engine is not None:
            return not len(self.transfer_engine)
        return not self._active_transfers

    def router_rebound(self, node: DTNNode) -> None:
        """Notification that a router was (re)attached to *node*.

        Called by :meth:`~repro.routing.base.Router.attach`; refreshes the
        node's SoA row so router-derived columns (skip safety, batch
        capability) never go stale across mid-run router swaps.  No-op when
        the SoA store is off or the node is not registered yet (the
        builders attach routers before ``add_node``).
        """
        if self.router_store is not None:
            self.router_store.rebind(node)

    def _update_routers(self, now: float) -> None:
        events = self._router_events
        if self.router_store is not None:
            ticked, batched, skipped = self.router_store.sweep(self, now)
            self.routers_ticked += ticked
            self.routers_batched += batched
            self.routers_skipped += skipped
            self.stats.router_sweep(ticked, skipped, batched)
            events.clear()
            return
        if not self.router_skiplist:
            for node in self._node_order:
                assert node.router is not None
                node.router.update(now)
            self.routers_ticked += len(self._node_order)
            self.stats.router_sweep(len(self._node_order), 0, 0)
            events.clear()
            return
        ticked = 0
        for node in self._node_order:
            router = node.router
            assert router is not None
            if router.idle_skip_safe and node.node_id not in events:
                # skip-list fast path: prove the tick would be a no-op.
                # An empty buffer has nothing to expire or send; waking on
                # queued transfers is defensive (in-flight traffic keeps
                # both endpoints hot).  A loaded router with no contacts
                # only needs its tick when a TTL comes due.
                if not len(node.buffer):
                    # every connection holding a queued transfer is
                    # registered in the active set (or announced itself via
                    # activity_sink this phase), so when both are empty the
                    # per-connection scan is provably False — O(1) instead
                    # of O(neighbours) in the idle-world common case
                    conns = node.connections
                    if (not conns
                            or self._no_queued_transfers()
                            or not any(
                                c.has_queued for c in conns.values())):
                        continue
                elif not node.connections and node.buffer.next_expiry() > now:
                    continue
            router.update(now)
            ticked += 1
        self.routers_ticked += ticked
        self.routers_skipped += len(self._node_order) - ticked
        self.stats.router_sweep(ticked, len(self._node_order) - ticked, 0)
        events.clear()

    # ------------------------------------------------------------ checkpoints
    def save_checkpoint(self, path: str, *, config=None, metadata=None):
        """Snapshot the full world state to *path* (see :mod:`repro.checkpoint`).

        Everything reachable from the world — simulator clock and event
        queue, RNG streams, routers, buffers, contact histories, community
        caches, live connections and the in-flight stats collector — is
        captured.  Returns the snapshot manifest.  Call at a tick boundary
        (i.e. not from inside a phase callback) so the restored run resumes
        on the exact event the original would have fired next.
        """
        from repro.checkpoint import save_checkpoint
        return save_checkpoint(self, path, config=config, metadata=metadata)

    @staticmethod
    def load_checkpoint(path: str) -> "World":
        """Restore a world (and its whole simulation) from a snapshot file.

        The returned world's ``simulator`` can simply ``run(until=...)``
        onward; resuming is byte-identical to never having stopped (pinned
        by :func:`repro.testing.assert_resume_equality`).  Use
        :func:`repro.checkpoint.load_checkpoint` instead when the manifest
        or the embedded scenario config is also needed.
        """
        from repro.checkpoint import load_checkpoint
        return load_checkpoint(path).world

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        # Pickling broke the one load-bearing aliasing relationship in the
        # graph: each follower's position was a row *view* of the position
        # matrix and came back as an independent copy.  Re-bind every
        # follower onto its row.  This is bit-exact — the copy holds the
        # same float64 patterns as the row — and nothing else needs fixing:
        # the MovementEngine's fast-path mirrors are plain arrays that
        # round-trip as-is (they may be *ahead* of the path scalars
        # mid-flight, so they must not be re-derived from the paths).
        for row, node in enumerate(self._node_order):
            node.follower.bind(self._positions.row(row))

    # ------------------------------------------------------------------ misc
    def stop(self) -> None:
        """Stop the periodic update process (used when tearing a world down).

        Also releases detector-owned resources (the sharded detector's
        worker pool) — detectors without a ``close`` are untouched.
        """
        self._process.stop()
        close = getattr(self.detector, "close", None)
        if close is not None:
            close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"World({self.num_nodes} nodes, {len(self._connections)} links, "
                f"updates={self.updates})")
