"""World model: nodes, radio interfaces, connectivity and the update loop."""

from repro.world.interface import Interface
from repro.world.node import DTNNode
from repro.world.connectivity import (
    ConnectivityDetector,
    GridConnectivity,
    KDTreeConnectivity,
    BruteForceConnectivity,
)
from repro.world.pipeline import TickPhase, TickPipeline
from repro.world.positions import PositionStore
from repro.world.sharded import ShardedConnectivity
from repro.world.world import World

__all__ = [
    "Interface",
    "DTNNode",
    "ConnectivityDetector",
    "GridConnectivity",
    "KDTreeConnectivity",
    "BruteForceConnectivity",
    "ShardedConnectivity",
    "TickPhase",
    "TickPipeline",
    "PositionStore",
    "World",
]
