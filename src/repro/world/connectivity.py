"""Range-based connectivity detection.

Given the node positions at one instant, a detector returns the node pairs
that can communicate (distance at most the minimum of the two radio ranges).
Three interchangeable implementations are provided:

* :class:`KDTreeConnectivity` — :class:`scipy.spatial.cKDTree` pair query
  (default; fastest for the node counts of the paper's scenarios),
* :class:`GridConnectivity` — spatial hashing into square cells,
* :class:`BruteForceConnectivity` — O(n²) reference used to cross-check the
  other two in tests.

Detectors are *stateful*: the world calls :meth:`ConnectivityDetector.update`
once per tick with the current positions, and an implementation may carry
acceleration structures from one tick to the next — the k-d tree skips
rebuilds while nodes have drifted less than a slack margin since the last
build, and the grid re-bins only the nodes that changed cell.  State never
affects the *result*, only the work done to compute it: every ``update`` is
equivalent to a from-scratch detection, and detectors resynchronise
automatically when the node count (or the cell size) changes between calls.

``update`` returns an ``(m, 2)`` int64 array of index pairs with ``i < j``
per row, sorted lexicographically, which is what the world's sorted-array
link diffing consumes.  The legacy :meth:`ConnectivityDetector.find_pairs`
set-of-tuples API is kept as a thin wrapper for tests and exploratory code.
"""

from __future__ import annotations

import abc
import math
from typing import Dict, List, Set, Tuple

import numpy as np
from scipy.spatial import cKDTree


Pair = Tuple[int, int]


def _empty_pairs() -> np.ndarray:
    return np.empty((0, 2), dtype=np.int64)


def _canonicalise(pairs: np.ndarray) -> np.ndarray:
    """Return *pairs* with ``i < j`` per row, lexicographically sorted."""
    if len(pairs) == 0:
        return _empty_pairs()
    lo = pairs.min(axis=1)
    hi = pairs.max(axis=1)
    order = np.lexsort((hi, lo))
    return np.column_stack((lo[order], hi[order]))


def _filter_by_range(pairs: np.ndarray, positions: np.ndarray,
                     ranges: np.ndarray) -> np.ndarray:
    """Keep only candidate pairs whose distance is within both nodes' ranges.

    Fully vectorised: one gather per endpoint and one boolean mask, instead
    of the seed's per-pair Python loop.
    """
    if len(pairs) == 0:
        return _empty_pairs()
    i = pairs[:, 0]
    j = pairs[:, 1]
    delta = positions[i] - positions[j]
    limit = np.minimum(ranges[i], ranges[j])
    mask = (delta * delta).sum(axis=1) <= limit * limit
    return pairs[mask]


class ConnectivityDetector(abc.ABC):
    """Finds node index pairs within mutual radio range."""

    @abc.abstractmethod
    def update(self, positions: np.ndarray, ranges: np.ndarray) -> np.ndarray:
        """Detect connectable pairs for the current tick.

        Parameters
        ----------
        positions:
            ``(n, 2)`` array of node positions.  Implementations must not
            keep a live reference to it across calls (the world hands in a
            view of storage that mutates as nodes move) — snapshot with
            ``positions.copy()`` if state is carried over.
        ranges:
            ``(n,)`` array of per-node radio ranges.

        Returns
        -------
        ``(m, 2)`` int64 array of index pairs, ``i < j`` per row, sorted
        lexicographically.
        """

    def reset(self) -> None:
        """Drop any carried-over acceleration state (stateless by default)."""

    def find_pairs(self, positions: np.ndarray, ranges: np.ndarray) -> Set[Pair]:
        """Legacy API: :meth:`update` as a ``{(i, j)}`` set with ``i < j``."""
        pairs = self.update(np.asarray(positions, dtype=float),
                            np.asarray(ranges, dtype=float))
        return {(int(i), int(j)) for i, j in pairs}


class BruteForceConnectivity(ConnectivityDetector):
    """Reference O(n²) implementation (vectorised with NumPy)."""

    def update(self, positions: np.ndarray, ranges: np.ndarray) -> np.ndarray:
        n = len(positions)
        if n < 2:
            return _empty_pairs()
        ii, jj = np.triu_indices(n, k=1)
        delta = positions[ii] - positions[jj]
        limit = np.minimum(ranges[ii], ranges[jj])
        mask = (delta * delta).sum(axis=1) <= limit * limit
        # triu_indices is already in (i, j) lexicographic order with i < j
        return np.column_stack((ii[mask], jj[mask])).astype(np.int64)


class KDTreeConnectivity(ConnectivityDetector):
    """k-d tree pair query with lazy rebuilds.

    The tree is built on a *snapshot* of the positions and reused while the
    maximum displacement of any node since the snapshot stays below a slack
    margin (a fraction of the maximum radio range).  While reusing, the pair
    query radius is inflated by twice the current displacement, which makes
    the candidate set a superset of the true pair set; the exact vectorised
    range filter against the *current* positions then restores correctness.

    Parameters
    ----------
    rebuild_margin:
        Slack as a fraction of the maximum radio range.  ``0`` rebuilds
        every tick (the seed behaviour).
    """

    def __init__(self, rebuild_margin: float = 0.25) -> None:
        if rebuild_margin < 0:
            raise ValueError("rebuild_margin must be non-negative")
        self.rebuild_margin = float(rebuild_margin)
        self._tree = None
        self._snapshot: np.ndarray = None  # positions the tree was built on
        self.rebuilds = 0  # observability: how often the tree was rebuilt

    def reset(self) -> None:
        self._tree = None
        self._snapshot = None

    def update(self, positions: np.ndarray, ranges: np.ndarray) -> np.ndarray:
        n = len(positions)
        if n < 2:
            self.reset()
            return _empty_pairs()
        max_range = float(ranges.max())
        if max_range <= 0:
            self.reset()
            return _empty_pairs()
        margin = self.rebuild_margin * max_range
        displacement = 0.0
        rebuild = self._tree is None or len(self._snapshot) != n
        if not rebuild:
            delta = positions - self._snapshot
            moved_sq = float((delta * delta).sum(axis=1).max())
            if moved_sq > margin * margin:
                rebuild = True
            else:
                displacement = math.sqrt(moved_sq)
        if rebuild:
            self._snapshot = np.array(positions, dtype=float)
            self._tree = cKDTree(self._snapshot)
            self.rebuilds += 1
        candidates = self._tree.query_pairs(max_range + 2.0 * displacement,
                                            output_type="ndarray")
        if len(candidates) == 0:
            return _empty_pairs()
        valid = _filter_by_range(candidates.astype(np.int64), positions, ranges)
        return _canonicalise(valid)


class GridConnectivity(ConnectivityDetector):
    """Spatial-hash grid with cell size equal to the maximum radio range.

    The cell assignment of every node is kept across ticks; on update only
    the nodes whose cell changed are re-binned (two dict operations per moved
    node) instead of rebuilding the whole hash.  A full rebuild happens when
    the node count or the cell size changes.
    """

    def __init__(self) -> None:
        self._cell_size: float = 0.0
        self._cells: np.ndarray = None  # (n, 2) int cell coordinates
        self._buckets: Dict[Tuple[int, int], List[int]] = {}

    def reset(self) -> None:
        self._cell_size = 0.0
        self._cells = None
        self._buckets = {}

    def _rebuild(self, cells: np.ndarray) -> None:
        buckets: Dict[Tuple[int, int], List[int]] = {}
        for idx, (cx, cy) in enumerate(cells):
            buckets.setdefault((int(cx), int(cy)), []).append(idx)
        self._buckets = buckets

    def _rebin_moved(self, cells: np.ndarray) -> None:
        moved = np.nonzero((cells != self._cells).any(axis=1))[0]
        buckets = self._buckets
        for idx in moved:
            index = int(idx)
            old = (int(self._cells[index, 0]), int(self._cells[index, 1]))
            new = (int(cells[index, 0]), int(cells[index, 1]))
            members = buckets[old]
            members.remove(index)
            if not members:
                del buckets[old]
            buckets.setdefault(new, []).append(index)

    def update(self, positions: np.ndarray, ranges: np.ndarray) -> np.ndarray:
        n = len(positions)
        if n < 2:
            self.reset()
            return _empty_pairs()
        cell = float(ranges.max())
        if cell <= 0:
            self.reset()
            return _empty_pairs()
        cells = np.floor(positions / cell).astype(np.int64)
        if self._cells is None or len(self._cells) != n or self._cell_size != cell:
            self._rebuild(cells)
        else:
            self._rebin_moved(cells)
        self._cells = cells
        self._cell_size = cell

        candidates_i: List[int] = []
        candidates_j: List[int] = []
        buckets = self._buckets
        # only "forward" neighbour cells, to avoid double counting
        forward_offsets = ((0, 1), (1, -1), (1, 0), (1, 1))
        for (cx, cy), members in buckets.items():
            # pairs within the cell
            for a in range(len(members)):
                for b in range(a + 1, len(members)):
                    candidates_i.append(members[a])
                    candidates_j.append(members[b])
            # pairs with forward neighbouring cells
            for dx, dy in forward_offsets:
                other = buckets.get((cx + dx, cy + dy))
                if not other:
                    continue
                for a in members:
                    candidates_i.extend([a] * len(other))
                    candidates_j.extend(other)
        if not candidates_i:
            return _empty_pairs()
        pairs = np.column_stack((
            np.asarray(candidates_i, dtype=np.int64),
            np.asarray(candidates_j, dtype=np.int64)))
        valid = _filter_by_range(pairs, positions, ranges)
        return _canonicalise(valid)
