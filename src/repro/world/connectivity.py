"""Range-based connectivity detection.

Given the node positions at one instant, a detector returns the node pairs
that can communicate (distance at most the minimum of the two radio ranges).
Four interchangeable implementations are provided:

* :class:`KDTreeConnectivity` — :class:`scipy.spatial.cKDTree` pair query
  (default; fastest for the node counts of the paper's scenarios),
* :class:`GridConnectivity` — spatial hashing into square cells with
  array-based bucket pairing,
* :class:`BruteForceConnectivity` — O(n²) reference used to cross-check the
  others in tests,
* :class:`~repro.world.sharded.ShardedConnectivity` (own module) — strip
  sharding with a cached cross-tick candidate superset, for 10k-node worlds.

Detectors are *stateful*: the world calls :meth:`ConnectivityDetector.update`
once per tick with the current positions, and an implementation may carry
acceleration structures from one tick to the next — the k-d tree skips
rebuilds while nodes have drifted less than a slack margin since the last
build, and the grid reuses its bucket index (and the candidate pairs derived
from it) while no node changes cell.  State never
affects the *result*, only the work done to compute it: every ``update`` is
equivalent to a from-scratch detection, and detectors resynchronise
automatically when the node count (or the cell size) changes between calls.

``update`` returns an ``(m, 2)`` int64 array of index pairs with ``i < j``
per row, sorted lexicographically, which is what the world's sorted-array
link diffing consumes.  The legacy :meth:`ConnectivityDetector.find_pairs`
set-of-tuples API is kept as a thin wrapper for tests and exploratory code.
"""

from __future__ import annotations

import abc
import math
from typing import List, Set, Tuple

import numpy as np
from scipy.spatial import cKDTree


Pair = Tuple[int, int]


def _empty_pairs() -> np.ndarray:
    return np.empty((0, 2), dtype=np.int64)


def _canonicalise(pairs: np.ndarray) -> np.ndarray:
    """Return *pairs* with ``i < j`` per row, lexicographically sorted."""
    if len(pairs) == 0:
        return _empty_pairs()
    lo = pairs.min(axis=1)
    hi = pairs.max(axis=1)
    order = np.lexsort((hi, lo))
    return np.column_stack((lo[order], hi[order]))


def _filter_by_range(pairs: np.ndarray, positions: np.ndarray,
                     ranges: np.ndarray) -> np.ndarray:
    """Keep only candidate pairs whose distance is within both nodes' ranges.

    Fully vectorised: one gather per endpoint and one boolean mask, instead
    of the seed's per-pair Python loop.
    """
    if len(pairs) == 0:
        return _empty_pairs()
    i = pairs[:, 0]
    j = pairs[:, 1]
    delta = positions[i] - positions[j]
    limit = np.minimum(ranges[i], ranges[j])
    mask = (delta * delta).sum(axis=1) <= limit * limit
    return pairs[mask]


class ConnectivityDetector(abc.ABC):
    """Finds node index pairs within mutual radio range."""

    @abc.abstractmethod
    def update(self, positions: np.ndarray, ranges: np.ndarray) -> np.ndarray:
        """Detect connectable pairs for the current tick.

        Parameters
        ----------
        positions:
            ``(n, 2)`` array of node positions.  Implementations must not
            keep a live reference to it across calls (the world hands in a
            view of storage that mutates as nodes move) — snapshot with
            ``positions.copy()`` if state is carried over.
        ranges:
            ``(n,)`` array of per-node radio ranges.

        Returns
        -------
        ``(m, 2)`` int64 array of index pairs, ``i < j`` per row, sorted
        lexicographically.
        """

    def reset(self) -> None:
        """Drop any carried-over acceleration state (stateless by default)."""

    def find_pairs(self, positions: np.ndarray, ranges: np.ndarray) -> Set[Pair]:
        """Legacy API: :meth:`update` as a ``{(i, j)}`` set with ``i < j``."""
        pairs = self.update(np.asarray(positions, dtype=float),
                            np.asarray(ranges, dtype=float))
        return {(int(i), int(j)) for i, j in pairs}


class BruteForceConnectivity(ConnectivityDetector):
    """Reference O(n²) implementation (vectorised with NumPy)."""

    def update(self, positions: np.ndarray, ranges: np.ndarray) -> np.ndarray:
        n = len(positions)
        if n < 2:
            return _empty_pairs()
        ii, jj = np.triu_indices(n, k=1)
        delta = positions[ii] - positions[jj]
        limit = np.minimum(ranges[ii], ranges[jj])
        mask = (delta * delta).sum(axis=1) <= limit * limit
        # triu_indices is already in (i, j) lexicographic order with i < j
        return np.column_stack((ii[mask], jj[mask])).astype(np.int64)


class KDTreeConnectivity(ConnectivityDetector):
    """k-d tree pair query with lazy rebuilds.

    The tree is built on a *snapshot* of the positions and reused while the
    maximum displacement of any node since the snapshot stays below a slack
    margin (a fraction of the maximum radio range).  While reusing, the pair
    query radius is inflated by twice the current displacement, which makes
    the candidate set a superset of the true pair set; the exact vectorised
    range filter against the *current* positions then restores correctness.

    Parameters
    ----------
    rebuild_margin:
        Slack as a fraction of the maximum radio range.  ``0`` rebuilds
        every tick (the seed behaviour).
    """

    def __init__(self, rebuild_margin: float = 0.25) -> None:
        if rebuild_margin < 0:
            raise ValueError("rebuild_margin must be non-negative")
        self.rebuild_margin = float(rebuild_margin)
        self._tree = None
        self._snapshot: np.ndarray = None  # positions the tree was built on
        self.rebuilds = 0  # observability: how often the tree was rebuilt

    def reset(self) -> None:
        self._tree = None
        self._snapshot = None

    def update(self, positions: np.ndarray, ranges: np.ndarray) -> np.ndarray:
        n = len(positions)
        if n < 2:
            self.reset()
            return _empty_pairs()
        max_range = float(ranges.max())
        if max_range <= 0:
            self.reset()
            return _empty_pairs()
        margin = self.rebuild_margin * max_range
        displacement = 0.0
        rebuild = self._tree is None or len(self._snapshot) != n
        if not rebuild:
            delta = positions - self._snapshot
            moved_sq = float((delta * delta).sum(axis=1).max())
            if moved_sq > margin * margin:
                rebuild = True
            else:
                displacement = math.sqrt(moved_sq)
        if rebuild:
            self._snapshot = np.array(positions, dtype=float)
            self._tree = cKDTree(self._snapshot)
            self.rebuilds += 1
        candidates = self._tree.query_pairs(max_range + 2.0 * displacement,
                                            output_type="ndarray")
        if len(candidates) == 0:
            return _empty_pairs()
        valid = _filter_by_range(candidates.astype(np.int64), positions, ranges)
        return _canonicalise(valid)


class GridConnectivity(ConnectivityDetector):
    """Spatial-hash grid with cell size equal to the maximum radio range.

    Cells are packed into scalar bucket keys and the per-node bucket index
    (a stable argsort of the keys plus per-bucket start/end offsets) is kept
    across ticks: while no node changes cell the index is reused as-is, and
    candidate generation never touches Python loops over buckets —
    within-bucket pairs come from stride-``d`` comparisons of the sorted key
    array, cross-bucket pairs from one ``searchsorted`` + ragged-range
    expansion per forward neighbour offset (array-based bucket pairing; the
    historical nested per-bucket loops are gone).  A full index rebuild —
    one ``argsort`` — happens when any node moved cell, or when the node
    count or the cell size changes.
    """

    #: forward neighbour cells only, to avoid double counting
    _FORWARD_OFFSETS = ((0, 1), (1, -1), (1, 0), (1, 1))

    def __init__(self) -> None:
        self._cell_size: float = 0.0
        self._cells: np.ndarray = None  # (n, 2) int cell coordinates
        self._pairs: np.ndarray = _empty_pairs()  # candidates of the index
        self._keys: np.ndarray = None  # (n,) packed collision-free keys
        self._order: np.ndarray = None  # argsort of the keys
        self._sorted_keys: np.ndarray = None
        self._unique_keys: np.ndarray = None
        self._starts: np.ndarray = None  # bucket slices into _order
        self._ends: np.ndarray = None
        self._stride = 0  # key packing stride (see _rebuild_index)

    def reset(self) -> None:
        self._cell_size = 0.0
        self._cells = None
        self._pairs = _empty_pairs()
        self._keys = None
        self._order = None
        self._sorted_keys = None
        self._unique_keys = None
        self._starts = None
        self._ends = None
        self._stride = 0

    def _rebuild_index(self, cells: np.ndarray) -> None:
        """Pack cells into scalar keys and (arg)sort nodes by bucket.

        The packing ``key = (cx - min_cx) * stride + (cy - min_cy)`` uses
        ``stride = height + 2`` so a neighbour offset of ``dy = ±1`` can
        never alias a *different* real bucket: shifted keys either hit the
        true neighbour or fall on a key no bucket occupies.
        """
        min_cx = int(cells[:, 0].min())
        min_cy = int(cells[:, 1].min())
        height = int(cells[:, 1].max()) - min_cy + 1
        self._stride = height + 2
        self._keys = ((cells[:, 0] - min_cx) * self._stride
                      + (cells[:, 1] - min_cy))
        self._order = np.argsort(self._keys, kind="stable")
        self._sorted_keys = self._keys[self._order]
        self._unique_keys, self._starts = np.unique(self._sorted_keys,
                                                    return_index=True)
        self._ends = np.append(self._starts[1:], len(self._sorted_keys))

    def _candidate_pairs(self) -> np.ndarray:
        """All index pairs sharing a bucket or in forward-adjacent buckets."""
        order = self._order
        sorted_keys = self._sorted_keys
        counts = self._ends - self._starts
        lefts: List[np.ndarray] = []
        rights: List[np.ndarray] = []
        # within-bucket pairs: nodes d apart in the sorted order share a
        # bucket iff their keys match — one stride-d comparison per distance
        for distance in range(1, int(counts.max())):
            same = sorted_keys[:-distance] == sorted_keys[distance:]
            if same.any():
                lefts.append(order[:-distance][same])
                rights.append(order[distance:][same])
        # cross-bucket pairs, one shifted-key lookup per forward offset
        n = len(self._keys)
        all_nodes = np.arange(n, dtype=np.int64)
        for dx, dy in self._FORWARD_OFFSETS:
            target = self._keys + (dx * self._stride + dy)
            bucket = np.searchsorted(self._unique_keys, target)
            bucket[bucket == len(self._unique_keys)] = len(self._unique_keys) - 1
            hit = self._unique_keys[bucket] == target
            start = np.where(hit, self._starts[bucket], 0)
            count = np.where(hit, self._ends[bucket] - self._starts[bucket], 0)
            total = int(count.sum())
            if not total:
                continue
            lefts.append(np.repeat(all_nodes, count))
            # ragged ranges [start_i, start_i + count_i) laid end to end
            base = np.cumsum(count) - count
            span = np.arange(total, dtype=np.int64) - np.repeat(base, count)
            rights.append(order[span + np.repeat(start, count)])
        if not lefts:
            return _empty_pairs()
        return np.column_stack((np.concatenate(lefts), np.concatenate(rights)))

    def update(self, positions: np.ndarray, ranges: np.ndarray) -> np.ndarray:
        n = len(positions)
        if n < 2:
            self.reset()
            return _empty_pairs()
        cell = float(ranges.max())
        if cell <= 0:
            self.reset()
            return _empty_pairs()
        cells = np.floor(positions / cell).astype(np.int64)
        if (self._cells is None or len(self._cells) != n
                or self._cell_size != cell
                or not np.array_equal(cells, self._cells)):
            self._rebuild_index(cells)
            self._cells = cells
            self._cell_size = cell
            # candidates are a pure function of the bucket index: compute
            # them once per index build, so reused-index ticks are just the
            # exact range filter below
            self._pairs = self._candidate_pairs()
        if not len(self._pairs):
            return _empty_pairs()
        valid = _filter_by_range(self._pairs, positions, ranges)
        return _canonicalise(valid)
