"""Range-based connectivity detection.

Given the node positions at one instant, a detector returns the set of node
pairs that can communicate (distance at most the minimum of the two radio
ranges).  Three interchangeable implementations are provided:

* :class:`KDTreeConnectivity` — :class:`scipy.spatial.cKDTree` pair query
  (default; fastest for the node counts of the paper's scenarios),
* :class:`GridConnectivity` — spatial hashing into square cells,
* :class:`BruteForceConnectivity` — O(n²) reference used to cross-check the
  other two in tests.
"""

from __future__ import annotations

import abc
from collections import defaultdict
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np
from scipy.spatial import cKDTree


Pair = Tuple[int, int]


def _filter_by_range(pairs: Sequence[Pair], positions: np.ndarray,
                     ranges: np.ndarray) -> Set[Pair]:
    """Keep only pairs whose distance is within both nodes' ranges."""
    result: Set[Pair] = set()
    for i, j in pairs:
        limit = min(ranges[i], ranges[j])
        delta = positions[i] - positions[j]
        if float(delta @ delta) <= limit * limit:
            result.add((i, j) if i < j else (j, i))
    return result


class ConnectivityDetector(abc.ABC):
    """Finds node index pairs within mutual radio range."""

    @abc.abstractmethod
    def find_pairs(self, positions: np.ndarray, ranges: np.ndarray) -> Set[Pair]:
        """Return ``{(i, j)}`` with ``i < j`` for all connectable pairs.

        Parameters
        ----------
        positions:
            ``(n, 2)`` array of node positions.
        ranges:
            ``(n,)`` array of per-node radio ranges.
        """


class BruteForceConnectivity(ConnectivityDetector):
    """Reference O(n²) implementation (vectorised with NumPy)."""

    def find_pairs(self, positions: np.ndarray, ranges: np.ndarray) -> Set[Pair]:
        n = len(positions)
        if n < 2:
            return set()
        diff = positions[:, None, :] - positions[None, :, :]
        dist_sq = (diff ** 2).sum(axis=-1)
        limit = np.minimum(ranges[:, None], ranges[None, :]) ** 2
        ii, jj = np.nonzero(dist_sq <= limit)
        return {(int(i), int(j)) for i, j in zip(ii, jj) if i < j}


class KDTreeConnectivity(ConnectivityDetector):
    """k-d tree pair query with the maximum range, then exact filtering."""

    def find_pairs(self, positions: np.ndarray, ranges: np.ndarray) -> Set[Pair]:
        n = len(positions)
        if n < 2:
            return set()
        max_range = float(ranges.max())
        if max_range <= 0:
            return set()
        tree = cKDTree(positions)
        candidates = tree.query_pairs(max_range, output_type="ndarray")
        if len(candidates) == 0:
            return set()
        if float(ranges.min()) == max_range:
            # uniform ranges: every candidate already qualifies
            return {(int(i), int(j)) for i, j in candidates}
        return _filter_by_range([(int(i), int(j)) for i, j in candidates],
                                positions, ranges)


class GridConnectivity(ConnectivityDetector):
    """Spatial-hash grid with cell size equal to the maximum radio range."""

    def find_pairs(self, positions: np.ndarray, ranges: np.ndarray) -> Set[Pair]:
        n = len(positions)
        if n < 2:
            return set()
        cell = float(ranges.max())
        if cell <= 0:
            return set()
        buckets: Dict[Tuple[int, int], List[int]] = defaultdict(list)
        cells = np.floor(positions / cell).astype(int)
        for idx, (cx, cy) in enumerate(cells):
            buckets[(int(cx), int(cy))].append(idx)
        candidates: List[Pair] = []
        neighbour_offsets = [(dx, dy) for dx in (-1, 0, 1) for dy in (-1, 0, 1)]
        for (cx, cy), members in buckets.items():
            # pairs within the cell
            for a in range(len(members)):
                for b in range(a + 1, len(members)):
                    candidates.append((members[a], members[b]))
            # pairs with neighbouring cells (only "forward" neighbours to avoid
            # double counting)
            for dx, dy in neighbour_offsets:
                if (dx, dy) <= (0, 0):
                    continue
                other = buckets.get((cx + dx, cy + dy))
                if not other:
                    continue
                for a in members:
                    for b in other:
                        candidates.append((a, b))
        return _filter_by_range(candidates, positions, ranges)
