"""Preallocated position storage for the world's hot path.

The seed implementation rebuilt an ``(n, 2)`` position matrix with
``np.vstack`` on every world tick — one allocation plus ``n`` small array
copies per update.  :class:`PositionStore` replaces that with a single
preallocated float64 array owned by the world: every node's
:class:`~repro.mobility.base.PathFollower` writes into its own row *view*,
so :meth:`PositionStore.view` is the current position matrix with zero
per-tick work.

Rows are handed out in registration order and never move.  The backing
array grows by doubling when full; growing reallocates, which invalidates
previously handed-out row views — the world (the only writer that adds
rows) re-binds every follower after a growth event, see
:meth:`~repro.world.world.World.add_node`.
"""

from __future__ import annotations

import numpy as np


class PositionStore:
    """A growable ``(capacity, 2)`` float64 array of node positions."""

    __slots__ = ("_data", "_count")

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._data = np.zeros((int(capacity), 2), dtype=float)
        self._count = 0

    def __len__(self) -> int:
        return self._count

    @property
    def capacity(self) -> int:
        """Number of rows the backing array can hold before growing."""
        return self._data.shape[0]

    @property
    def data(self) -> np.ndarray:
        """The full backing array (identity changes when the store grows)."""
        return self._data

    def add(self, position) -> int:
        """Append *position* and return its row index.

        May reallocate the backing array; compare :attr:`data` identity
        before/after to detect growth and re-bind outstanding row views.
        """
        if self._count == self._data.shape[0]:
            grown = np.zeros((self._data.shape[0] * 2, 2), dtype=float)
            grown[:self._count] = self._data[:self._count]
            self._data = grown
        index = self._count
        self._data[index] = np.asarray(position, dtype=float)
        self._count += 1
        return index

    def row(self, index: int) -> np.ndarray:
        """Writable ``(2,)`` view of one node's position."""
        if not 0 <= index < self._count:
            raise IndexError(f"row {index} out of range (count={self._count})")
        return self._data[index]

    def view(self) -> np.ndarray:
        """``(n, 2)`` view of all current positions (no copy)."""
        return self._data[:self._count]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PositionStore({self._count}/{self.capacity} rows)"
