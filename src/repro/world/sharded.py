"""Strip-sharded connectivity detection for 10k-node worlds.

:class:`ShardedConnectivity` is the scale-out variant of
:class:`~repro.world.connectivity.KDTreeConnectivity`.  It exploits the same
observation — nodes move a small fraction of the radio range per tick — but
restructures the work so the expensive part both *amortises* across ticks
and *shards* across workers:

1. **Rebuild (rare, sharded).**  A position snapshot is cut into vertical
   strips of width ``>= candidate_radius`` where ``candidate_radius =
   max_range + 2 * slack`` and ``slack = rebuild_margin * max_range``.  Each
   strip worker builds a k-d tree over its strip *plus the halo* (the slab of
   the next strip within ``candidate_radius`` of the shared boundary) and
   collects every pair within ``candidate_radius`` that has at least one
   endpoint inside the strip proper.  Strip tasks fan out over a thread pool
   (``cKDTree`` construction and pair queries release the GIL; the
   shard/merge contract below is deliberately process-friendly so a
   shared-memory process pool can replace the threads without touching the
   callers).  The merged, deduplicated candidate set is packed into sorted
   ``(lo << 32) | hi`` codes **once**, so it is stored pre-canonicalised.

2. **Tick (hot, vectorized, allocation-light).**  While no node has drifted
   more than ``slack`` from the snapshot, the candidate set is guaranteed to
   be a superset of the true pair set (triangle inequality: a pair within
   ``min(r_i, r_j) <= max_range`` *now* was within ``max_range + 2*slack``
   at the snapshot).  The per-tick work is therefore one exact vectorized
   range filter of the cached candidates against the *current* positions —
   no tree query, and no sort either, because a masked subset of a
   lexicographically sorted pair list is still sorted.

Shard/merge invariant
---------------------
Strips partition the snapshot by x; ``strip_width >= candidate_radius``
guarantees any candidate pair spans at most two *adjacent* strips, and the
halo rule (next strip's nodes with ``x <= boundary + candidate_radius``,
boundary-inclusive on both sides so nodes exactly on a strip edge are
covered) makes the owner strip see every such pair exactly once: pairs
wholly inside strip *s* belong to worker *s*, pairs crossing the *s*/*s+1*
boundary belong to worker *s* (the smaller strip index), and worker *s*
drops halo-halo pairs because worker *s+1* owns them.  The merge is a plain
concatenation in strip order followed by one sort — no dedup pass is needed,
and the result is independent of worker scheduling.

The output is **bit-identical** to every other detector's: the same
candidate-superset + exact-filter construction
(:func:`~repro.world.connectivity._filter_by_range` arithmetic) over the
same positions yields the same pair *set*, and canonical ordering makes it
the same ``(m, 2)`` int64 array.  Parity is pinned by hypothesis tests
(including nodes exactly on strip boundaries and halo edges) and by a
full-scenario report-equality test.
"""

from __future__ import annotations

import itertools
import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from multiprocessing import shared_memory
from typing import Dict, List, Optional

import numpy as np
from scipy.spatial import cKDTree

from repro.world.connectivity import ConnectivityDetector, _empty_pairs


def default_worker_count() -> int:
    """Worker-thread default: the CPUs this process may run on, capped at 8."""
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cpus = os.cpu_count() or 1
    return max(1, min(cpus, 8))


def _strip_pair_codes(snapshot: np.ndarray, members: np.ndarray,
                      halo: np.ndarray, radius: float) -> np.ndarray:
    """Candidate pair codes owned by one strip (mode-agnostic kernel).

    Shared verbatim by the thread and process execution modes: identical
    arithmetic over the identical snapshot rows yields identical codes, which
    is what keeps the two modes bit-for-bit interchangeable.
    """
    group = np.concatenate((members, halo))
    if len(group) < 2:
        return np.empty(0, dtype=np.int64)
    tree = cKDTree(snapshot[group])
    local = tree.query_pairs(radius, output_type="ndarray")
    if not len(local):
        return np.empty(0, dtype=np.int64)
    # local indices < len(members) are strip members; drop halo-halo
    # pairs — the next strip owns them
    owned = local[(local < len(members)).any(axis=1)]
    if not len(owned):
        return np.empty(0, dtype=np.int64)
    pairs = group[owned]
    lo = np.minimum(pairs[:, 0], pairs[:, 1])
    hi = np.maximum(pairs[:, 0], pairs[:, 1])
    return (lo << 32) | hi


#: per-worker-process cache of the one attached snapshot segment (the parent
#: recreates the segment — new name — only when the node count grows)
_WORKER_SEGMENTS: Dict[str, shared_memory.SharedMemory] = {}


def _attach_snapshot(name: str, n: int) -> np.ndarray:
    """Map the parent's shared snapshot segment into this worker process."""
    segment = _WORKER_SEGMENTS.get(name)
    if segment is None:
        # drop any stale attachment from a previous segment generation
        for stale_name, stale in list(_WORKER_SEGMENTS.items()):
            stale.close()
            del _WORKER_SEGMENTS[stale_name]
        # Python < 3.13 registers *attachments* with the resource tracker
        # too (no ``track=False`` yet).  Under fork the worker shares the
        # parent's tracker, so an unregister-after-attach would erase the
        # parent's own registration; under spawn the worker's fresh tracker
        # would try to unlink the parent-owned segment at worker exit.
        # Suppressing registration during the attach sidesteps both: the
        # parent remains the sole owner.
        from multiprocessing import resource_tracker
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            segment = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register
        _WORKER_SEGMENTS[name] = segment
    return np.ndarray((n, 2), dtype=np.float64, buffer=segment.buf)


def _process_strip_task(name: str, n: int, members: np.ndarray,
                        halo: np.ndarray, radius: float) -> np.ndarray:
    """One strip task executed in a worker process (module-level: picklable)."""
    snapshot = _attach_snapshot(name, n)
    return _strip_pair_codes(snapshot, members, halo, radius)


class ShardedConnectivity(ConnectivityDetector):
    """Sharded strip detection with a cached cross-tick candidate superset.

    Parameters
    ----------
    rebuild_margin:
        Slack as a fraction of the maximum radio range (as in
        :class:`~repro.world.connectivity.KDTreeConnectivity`).  Larger
        values rebuild less often but cache a quadratically larger candidate
        set; ``0.5`` balances the two for per-tick displacements around a few
        percent of the radio range.  Must be positive: with zero slack the
        cache would be invalidated by any movement and the detector would
        degenerate into a slower k-d tree rebuild per tick.
    workers:
        Worker threads for the rebuild fan-out (default:
        :func:`default_worker_count`).  ``1`` runs strips inline.
    shards_per_worker:
        Target strip tasks per worker at rebuild (>= 1).  More shards mean
        better load balance but more per-strip fixed cost; the strip count
        is always capped so strips stay at least ``candidate_radius`` wide.
    workers_mode:
        ``"thread"`` (default) fans strip tasks over a thread pool — cheap,
        and effective because ``cKDTree`` releases the GIL.  ``"process"``
        runs them in a persistent process pool with the snapshot in a
        ``multiprocessing.shared_memory`` segment: workers attach once per
        segment generation and read positions zero-copy, so only the strip
        index arrays and result codes cross the pipe.  Both modes drive the
        identical strip kernel over the identical snapshot and are therefore
        bit-identical; the process pool is for many-core machines where the
        NumPy/Python portions of the strip tasks would otherwise serialise.
    """

    def __init__(self, rebuild_margin: float = 0.5,
                 workers: Optional[int] = None,
                 shards_per_worker: int = 2,
                 workers_mode: str = "thread") -> None:
        if rebuild_margin <= 0:
            raise ValueError("rebuild_margin must be positive")
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1 (or None for the default)")
        if shards_per_worker < 1:
            raise ValueError("shards_per_worker must be >= 1")
        if workers_mode not in ("thread", "process"):
            raise ValueError(
                f"workers_mode must be 'thread' or 'process', "
                f"got {workers_mode!r}")
        self.rebuild_margin = float(rebuild_margin)
        self.workers = int(workers) if workers is not None else default_worker_count()
        self.shards_per_worker = int(shards_per_worker)
        self.workers_mode = workers_mode
        self._pool: Optional[Executor] = None
        self._segment: Optional[shared_memory.SharedMemory] = None
        self._snapshot: Optional[np.ndarray] = None
        self._ranges: Optional[np.ndarray] = None
        self._max_range = 0.0
        self._cand_i = np.empty(0, dtype=np.int64)
        self._cand_j = np.empty(0, dtype=np.int64)
        self._limit_sq = np.empty(0, dtype=float)
        # observability
        self.rebuilds = 0
        self.last_shards = 0

    # ------------------------------------------------------------- lifecycle
    def reset(self) -> None:
        """Drop the snapshot and cached candidates (keeps the thread pool)."""
        self._snapshot = None
        self._ranges = None
        self._max_range = 0.0
        self._cand_i = np.empty(0, dtype=np.int64)
        self._cand_j = np.empty(0, dtype=np.int64)
        self._limit_sq = np.empty(0, dtype=float)

    def close(self) -> None:
        """Release the worker pool and the shared snapshot segment (the
        world calls this on teardown)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._release_segment()

    def __getstate__(self) -> dict:
        # checkpoint support: the worker pool and the shared-memory segment
        # are process-local resources; both are created lazily, so dropping
        # them is enough — the restored detector rebuilds them on first use.
        # The snapshot and candidate arrays travel as-is, keeping the
        # restored detector's rebuild schedule (and therefore its output)
        # bit-identical to the uninterrupted one.
        state = self.__dict__.copy()
        state["_pool"] = None
        state["_segment"] = None
        return state

    def _executor(self) -> Executor:
        if self._pool is None:
            if self.workers_mode == "process":
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            else:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="sharded-connectivity")
        return self._pool

    # ------------------------------------------------------- shared snapshot
    def _release_segment(self) -> None:
        if self._segment is not None:
            self._segment.close()
            self._segment.unlink()
            self._segment = None

    def _publish_snapshot(self) -> shared_memory.SharedMemory:
        """Copy the rebuild snapshot into shared memory for process workers.

        The segment is recreated (fresh name) only when it is too small for
        the current node count; workers key their attachment cache on the
        name, so steady-state rebuilds reuse the mapping on both sides.
        """
        assert self._snapshot is not None
        needed = self._snapshot.nbytes
        if self._segment is None or self._segment.size < needed:
            self._release_segment()
            self._segment = shared_memory.SharedMemory(create=True, size=needed)
        view = np.ndarray(self._snapshot.shape, dtype=np.float64,
                          buffer=self._segment.buf)
        view[:] = self._snapshot
        return self._segment

    # --------------------------------------------------------------- rebuild
    def _strip_codes(self, members: np.ndarray, halo: np.ndarray,
                     radius: float) -> np.ndarray:
        """Candidate pair codes owned by one strip (runs on a worker)."""
        return _strip_pair_codes(self._snapshot, members, halo, radius)

    def _rebuild(self, positions: np.ndarray, ranges: np.ndarray) -> None:
        self._snapshot = np.array(positions, dtype=float)
        self._ranges = np.array(ranges, dtype=float)
        self._max_range = float(ranges.max())
        slack = self.rebuild_margin * self._max_range
        radius = self._max_range + 2.0 * slack

        x = self._snapshot[:, 0]
        x_min = float(x.min())
        span = max(float(x.max()) - x_min, 0.0)
        target = self.workers * self.shards_per_worker
        num_strips = max(1, min(target, int(span // radius) if radius > 0 else 1))
        self.last_shards = num_strips
        if num_strips == 1:
            order = np.arange(len(x), dtype=np.int64)
            bounds = np.array([0, len(x)], dtype=np.int64)
            width = span if span > 0 else 1.0
        else:
            width = span / num_strips
            strip = np.minimum((x - x_min) // width,
                               num_strips - 1).astype(np.int64)
            order = np.argsort(strip, kind="stable")
            bounds = np.searchsorted(strip[order],
                                     np.arange(num_strips + 1))

        def strip_slices(index: int):
            members = order[bounds[index]:bounds[index + 1]]
            if len(members) and index + 1 < num_strips:
                following = order[bounds[index + 1]:]
                # the halo cutoff is anchored on the members themselves, not
                # on the strip-boundary arithmetic: a later-strip node can
                # pair with a member only if its x is within the candidate
                # radius of some member's x, and float addition is monotonic,
                # so max(member x) + radius bounds every such node exactly
                # (no ULP mismatch against boundary expressions)
                cutoff = float(x[members].max()) + radius
                halo = following[x[following] <= cutoff]
            else:
                halo = np.empty(0, dtype=np.int64)
            return members, halo

        def strip_task(index: int) -> np.ndarray:
            members, halo = strip_slices(index)
            return self._strip_codes(members, halo, radius)

        if num_strips == 1 or self.workers == 1:
            shards: List[np.ndarray] = [strip_task(i) for i in range(num_strips)]
        elif self.workers_mode == "process":
            # publish the snapshot once; only index arrays and result codes
            # cross the pipe
            segment = self._publish_snapshot()
            slices = [strip_slices(i) for i in range(num_strips)]
            shards = list(self._executor().map(
                _process_strip_task,
                itertools.repeat(segment.name),
                itertools.repeat(len(self._snapshot)),
                (members for members, _ in slices),
                (halo for _, halo in slices),
                itertools.repeat(radius)))
        else:
            shards = list(self._executor().map(strip_task, range(num_strips)))

        codes = np.concatenate(shards) if shards else np.empty(0, np.int64)
        codes.sort()
        self._cand_i = codes >> 32
        self._cand_j = codes & 0xFFFFFFFF
        limit = np.minimum(self._ranges[self._cand_i],
                           self._ranges[self._cand_j])
        self._limit_sq = limit * limit
        self.rebuilds += 1

    # ----------------------------------------------------------------- update
    def update(self, positions: np.ndarray, ranges: np.ndarray) -> np.ndarray:
        n = len(positions)
        if n < 2:
            self.reset()
            return _empty_pairs()
        max_range = float(ranges.max())
        if max_range <= 0:
            self.reset()
            return _empty_pairs()
        slack = self.rebuild_margin * max_range
        rebuild = (self._snapshot is None or len(self._snapshot) != n
                   or self._max_range != max_range
                   or not np.array_equal(self._ranges, ranges))
        if not rebuild:
            delta = positions - self._snapshot
            moved_sq = float((delta * delta).sum(axis=1).max())
            rebuild = moved_sq > slack * slack
        if rebuild:
            self._rebuild(positions, ranges)
        # exact filter against the *current* positions; same arithmetic as
        # connectivity._filter_by_range, on flat component arrays
        px = np.ascontiguousarray(positions[:, 0])
        py = np.ascontiguousarray(positions[:, 1])
        ci = self._cand_i
        cj = self._cand_j
        dx = px[ci] - px[cj]
        dy = py[ci] - py[cj]
        mask = dx * dx + dy * dy <= self._limit_sq
        # candidates are stored (lo, hi) lex-sorted; a masked subset stays
        # sorted, so no per-tick canonicalisation is needed
        return np.column_stack((ci[mask], cj[mask]))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ShardedConnectivity(margin={self.rebuild_margin}, "
                f"workers={self.workers} [{self.workers_mode}], "
                f"rebuilds={self.rebuilds}, shards={self.last_shards})")
