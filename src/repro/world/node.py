"""DTN nodes.

A :class:`DTNNode` bundles the pieces that belong to one mobile device: its
identity, radio interface, movement driver, message buffer, active
connections and (once attached) its router.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

import numpy as np

from repro.mobility.base import MovementModel, PathFollower
from repro.net.buffer import DropPolicy, MessageBuffer
from repro.world.interface import Interface

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.net.connection import Connection
    from repro.routing.base import Router


class DTNNode:
    """One mobile node in the DTN.

    Parameters
    ----------
    node_id:
        Unique non-negative integer identity.
    movement:
        The node's movement model.
    interface:
        Radio parameters (defaults to the paper's 10 m / 2 Mbit/s).
    buffer_capacity:
        Buffer size in bytes (the paper uses 1 MB).
    rng:
        Node-specific :class:`random.Random` used by the movement model.
    community:
        Community id; if ``None``, the movement model's
        :attr:`~repro.mobility.base.MovementModel.community` is used.
    name:
        Optional human-readable name.
    drop_policy:
        Buffer eviction policy.
    """

    def __init__(self, node_id: int, movement: MovementModel, rng,
                 interface: Optional[Interface] = None,
                 buffer_capacity: float = 1024 * 1024,
                 community: Optional[int] = None, name: str = "",
                 drop_policy: DropPolicy = DropPolicy.OLDEST_RECEIVED) -> None:
        if node_id < 0:
            raise ValueError("node_id must be non-negative")
        self.node_id = int(node_id)
        self.name = name or f"n{node_id}"
        self.interface = interface or Interface()
        self.buffer = MessageBuffer(buffer_capacity, drop_policy)
        self.follower = PathFollower(movement, rng)
        self.movement = movement
        self._community = community if community is not None else movement.community
        self.router: Optional["Router"] = None
        #: active connections keyed by the peer's node id
        self.connections: Dict[int, "Connection"] = {}

    # --------------------------------------------------------------- identity
    @property
    def community(self) -> Optional[int]:
        """The node's community id, or ``None`` if not community-structured."""
        return self._community

    @community.setter
    def community(self, value: Optional[int]) -> None:
        self._community = value

    # --------------------------------------------------------------- position
    @property
    def position(self) -> np.ndarray:
        """Current position (metres)."""
        return self.follower.position

    def move(self, dt: float, now: float) -> np.ndarray:
        """Advance the node's movement by *dt* seconds."""
        return self.follower.move(dt, now)

    # ------------------------------------------------------------ connections
    def connection_to(self, peer_id: int) -> Optional["Connection"]:
        """The active connection to *peer_id*, if any."""
        return self.connections.get(peer_id)

    def connected_peers(self) -> List[int]:
        """Node ids of all peers currently in contact."""
        return list(self.connections)

    # ----------------------------------------------------------------- router
    def set_router(self, router: "Router") -> None:
        """Attach *router* to this node (also wires the back-reference)."""
        self.router = router

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pos = self.position
        return (f"DTNNode({self.node_id}, pos=({pos[0]:.0f},{pos[1]:.0f}), "
                f"buffered={len(self.buffer)})")
