"""Radio interface parameters.

The paper's setting: 2 Mbit/s transmit speed and a 10 m transmit range.
Speeds are stored in bytes per second because message sizes are in bytes.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Interface:
    """A node's radio.

    Attributes
    ----------
    transmit_range:
        Radio range in metres.
    transmit_speed:
        Link speed in bytes per second.
    """

    transmit_range: float = 10.0
    transmit_speed: float = 2_000_000 / 8  # 2 Mbit/s in bytes/s

    def __post_init__(self) -> None:
        if self.transmit_range <= 0:
            raise ValueError(f"transmit_range must be positive, got {self.transmit_range}")
        if self.transmit_speed <= 0:
            raise ValueError(f"transmit_speed must be positive, got {self.transmit_speed}")

    def link_bitrate(self, other: "Interface") -> float:
        """Bitrate of a link with *other* (the slower of the two radios)."""
        return min(self.transmit_speed, other.transmit_speed)

    def in_range(self, distance: float, other: "Interface") -> bool:
        """Whether two nodes at *distance* can form a link.

        Both radios must cover the distance, i.e. the effective range is the
        minimum of the two.
        """
        return distance <= min(self.transmit_range, other.transmit_range)
