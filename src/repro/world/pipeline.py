"""The staged world-tick pipeline.

:class:`TickPipeline` turns the world update from one opaque method into an
explicit sequence of named phases — ``move``, ``connectivity``,
``transfers``, ``routers`` — each independently replaceable and metered.
The pipeline is the seam the ROADMAP's sharded-world item names: a phase is
a plain callable ``(now, dt) -> None``, so a parallel implementation (the
batched :class:`~repro.mobility.engine.MovementEngine`, the strip-sharded
:class:`~repro.world.sharded.ShardedConnectivity`) slots in behind the same
phase name without the world loop changing shape.

Every phase execution is wall-clock metered through
:meth:`~repro.metrics.collector.StatsCollector.tick_phase`; the accumulated
per-phase seconds surface in :class:`~repro.metrics.reports.SimulationReport`
(as a timing side channel excluded from the canonical serialisation — wall
time is machine-specific, the simulation result is not) and in the
``world_tick_10k`` paired benchmark, which gates the sharded detector's
speedup per phase rather than per whole tick.

The metering overhead is two ``perf_counter`` calls per phase per tick
(sub-microsecond), which is why it stays on even for benchmark runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.metrics.collector import StatsCollector

#: phase callable signature: ``(now, dt) -> None``
PhaseFn = Callable[[float, float], None]


@dataclass(frozen=True)
class TickPhase:
    """One named stage of the world tick."""

    name: str
    fn: PhaseFn

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a tick phase needs a non-empty name")
        if not callable(self.fn):
            raise ValueError(f"phase {self.name!r} needs a callable fn")


class TickPipeline:
    """Runs an ordered list of :class:`TickPhase` once per world update.

    Parameters
    ----------
    phases:
        The stages, in execution order.  Phase names must be unique — they
        key the per-phase timing aggregation.
    stats:
        Collector receiving one :meth:`~StatsCollector.tick_phase` sample
        per phase per run; ``None`` disables metering entirely.
    """

    def __init__(self, phases: Sequence[TickPhase],
                 stats: Optional[StatsCollector] = None) -> None:
        if not phases:
            raise ValueError("a tick pipeline needs at least one phase")
        names = [phase.name for phase in phases]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate phase names in {names}")
        self._phases: Tuple[TickPhase, ...] = tuple(phases)
        self.stats = stats
        self.runs = 0

    @property
    def phase_names(self) -> List[str]:
        """The phase names, in execution order."""
        return [phase.name for phase in self._phases]

    def replace_phase(self, name: str, fn: PhaseFn) -> None:
        """Swap the implementation of phase *name* (same position, same name).

        This is the extension point for parallel/sharded phase variants and
        for tests that stub out a stage; unknown names raise ``KeyError``.
        """
        for index, phase in enumerate(self._phases):
            if phase.name == name:
                phases = list(self._phases)
                phases[index] = TickPhase(name, fn)
                self._phases = tuple(phases)
                return
        raise KeyError(f"no tick phase named {name!r}; "
                       f"known: {', '.join(self.phase_names)}")

    def run(self, now: float, dt: float) -> None:
        """Execute every phase in order, metering each one."""
        stats = self.stats
        perf_counter = time.perf_counter
        for phase in self._phases:
            if stats is None:
                phase.fn(now, dt)
            else:
                start = perf_counter()
                phase.fn(now, dt)
                stats.tick_phase(phase.name, perf_counter() - start)
        self.runs += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TickPipeline({' -> '.join(self.phase_names)}, runs={self.runs})"
