"""Importable test helpers.

The test-suite builds most router-level scenarios on small, fully
deterministic *trace-replay* worlds: connectivity is prescribed by an
explicit contact trace, so the exact sequence of meetings (and therefore of
routing decisions) is known in advance.  The helpers live here — inside the
installed package rather than in ``tests/conftest.py`` — so test modules can
import them without relying on pytest's ``conftest`` path insertion (which
broke when ``benchmarks/conftest.py`` shadowed ``tests/conftest.py``).
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.net.message import Message
from repro.sim.engine import Simulator
from repro.traces.contact_trace import ContactEvent, ContactTrace
from repro.traces.replay import TraceReplayWorld, build_trace_world

__all__ = ["make_trace", "make_contact_plan", "make_world", "inject_message",
           "canonical_report_bytes", "admissible_checkpoint_times",
           "assert_resume_equality"]


def make_trace(events: Iterable[Tuple[float, int, int, bool]]) -> ContactTrace:
    """Build a :class:`ContactTrace` from ``(time, a, b, up)`` tuples."""
    return ContactTrace([ContactEvent(t, a, b, up) for t, a, b, up in events])


def make_contact_plan(contacts: Iterable[Tuple[float, float, int, int]]) -> ContactTrace:
    """Build a trace from ``(start, end, a, b)`` contact intervals."""
    events = []
    for start, end, a, b in contacts:
        events.append(ContactEvent(start, a, b, True))
        events.append(ContactEvent(end, a, b, False))
    return ContactTrace(events)


def make_world(trace: ContactTrace, protocol: str = "epidemic", *,
               num_nodes: Optional[int] = None,
               communities: Optional[Dict[int, int]] = None,
               update_interval: float = 1.0,
               buffer_capacity: float = 10 * 1024 * 1024,
               router_params: Optional[dict] = None,
               seed: int = 1) -> Tuple[Simulator, TraceReplayWorld]:
    """Build a deterministic trace-replay world for router tests."""
    return build_trace_world(
        trace, protocol=protocol, seed=seed, update_interval=update_interval,
        buffer_capacity=buffer_capacity, num_nodes=num_nodes,
        communities=communities, router_params=router_params)


def inject_message(world, source: int, destination: int, *, now: float = 0.0,
                   size: int = 1000, ttl: float = 10_000.0, copies: int = 1,
                   message_id: str = "M1") -> Message:
    """Create and inject one message at *source*; returns the message."""
    message = Message(message_id, source, destination, size, now, ttl, copies,
                      dest_community=world.community_of(destination))
    world.create_message(source, message)
    return message


# ------------------------------------------------------ resume equality
def canonical_report_bytes(report) -> bytes:
    """The canonical byte form of a :class:`SimulationReport`.

    Timings are excluded (they measure the machine, not the simulation);
    everything else — metrics, counters, per-protocol extras — is serialized
    with sorted keys, so two runs are behaviourally identical iff their
    canonical bytes are equal.  This is the same payload the PR5/PR6 pin
    tests compare across ``flat_tick``/skip-list/process-pool modes.
    """
    payload = report.as_dict(include_timings=False)
    # community_detection_seconds is wall-clock time spent in the detector —
    # a measurement of the machine, like the tick-phase timings, and the one
    # metric that differs between two behaviourally identical runs
    payload.pop("community_detection_seconds", None)
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def admissible_checkpoint_times(config, *, stride: int = 1) -> List[float]:
    """Every interior tick boundary of *config*'s run, optionally strided.

    A checkpoint is admissible at any multiple of ``update_interval`` in the
    open interval ``(0, sim_time)``: the world tick scheduled at that time
    has fired, so a save/restore there resumes on exactly the next event.
    ``stride=k`` keeps every *k*-th boundary (for affordable sweeps of long
    scenarios).
    """
    if stride < 1:
        raise ValueError("stride must be >= 1")
    ticks = int(round(config.sim_time / config.update_interval))
    return [k * config.update_interval for k in range(1, ticks, stride)]


def assert_resume_equality(config,
                           checkpoint_times: Optional[Sequence[float]] = None,
                           *, stride: int = 1) -> None:
    """Assert that checkpoint/restore is invisible in *config*'s report.

    Runs the scenario straight through, then — for every checkpoint time —
    re-runs it with a full save/restore cycle at that boundary (serialize
    the world to container bytes, tear the original down, deserialize,
    resume) and requires the resumed run's canonical report bytes to equal
    the straight-through run's exactly.  ``checkpoint_times`` defaults to
    :func:`admissible_checkpoint_times` with *stride*.

    Raises ``AssertionError`` naming the first diverging checkpoint time.
    """
    from repro.checkpoint import load_checkpoint_bytes, save_checkpoint_bytes
    from repro.experiments.builder import build_scenario
    from repro.experiments.runner import finalize_report, run_scenario

    if checkpoint_times is None:
        checkpoint_times = admissible_checkpoint_times(config, stride=stride)
    baseline = canonical_report_bytes(run_scenario(config))
    for at in checkpoint_times:
        if not 0.0 < at < config.sim_time:
            raise ValueError(
                f"checkpoint time {at:g} outside (0, {config.sim_time:g})")
        built = build_scenario(config)
        try:
            built.simulator.run(until=at)
            blob = save_checkpoint_bytes(built.world, config=config)
        finally:
            built.world.stop()
        restored = load_checkpoint_bytes(blob)
        try:
            restored.world.simulator.run(until=config.sim_time)
            resumed = canonical_report_bytes(
                finalize_report(restored.world.stats, config))
        finally:
            restored.world.stop()
        if resumed != baseline:
            raise AssertionError(
                f"resumed report diverged from the straight-through run "
                f"(scenario {config.name!r}, checkpoint at t={at:g})")
