"""Importable test helpers.

The test-suite builds most router-level scenarios on small, fully
deterministic *trace-replay* worlds: connectivity is prescribed by an
explicit contact trace, so the exact sequence of meetings (and therefore of
routing decisions) is known in advance.  The helpers live here — inside the
installed package rather than in ``tests/conftest.py`` — so test modules can
import them without relying on pytest's ``conftest`` path insertion (which
broke when ``benchmarks/conftest.py`` shadowed ``tests/conftest.py``).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.net.message import Message
from repro.sim.engine import Simulator
from repro.traces.contact_trace import ContactEvent, ContactTrace
from repro.traces.replay import TraceReplayWorld, build_trace_world

__all__ = ["make_trace", "make_contact_plan", "make_world", "inject_message"]


def make_trace(events: Iterable[Tuple[float, int, int, bool]]) -> ContactTrace:
    """Build a :class:`ContactTrace` from ``(time, a, b, up)`` tuples."""
    return ContactTrace([ContactEvent(t, a, b, up) for t, a, b, up in events])


def make_contact_plan(contacts: Iterable[Tuple[float, float, int, int]]) -> ContactTrace:
    """Build a trace from ``(start, end, a, b)`` contact intervals."""
    events = []
    for start, end, a, b in contacts:
        events.append(ContactEvent(start, a, b, True))
        events.append(ContactEvent(end, a, b, False))
    return ContactTrace(events)


def make_world(trace: ContactTrace, protocol: str = "epidemic", *,
               num_nodes: Optional[int] = None,
               communities: Optional[Dict[int, int]] = None,
               update_interval: float = 1.0,
               buffer_capacity: float = 10 * 1024 * 1024,
               router_params: Optional[dict] = None,
               seed: int = 1) -> Tuple[Simulator, TraceReplayWorld]:
    """Build a deterministic trace-replay world for router tests."""
    return build_trace_world(
        trace, protocol=protocol, seed=seed, update_interval=update_interval,
        buffer_capacity=buffer_capacity, num_nodes=num_nodes,
        communities=communities, router_params=router_params)


def inject_message(world, source: int, destination: int, *, now: float = 0.0,
                   size: int = 1000, ttl: float = 10_000.0, copies: int = 1,
                   message_id: str = "M1") -> Message:
    """Create and inject one message at *source*; returns the message."""
    message = Message(message_id, source, destination, size, now, ttl, copies,
                      dest_community=world.community_of(destination))
    world.create_message(source, message)
    return message
