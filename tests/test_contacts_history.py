"""Unit tests for the contact history sliding windows."""

import pytest

from repro.contacts.history import ContactHistory


def test_first_contact_records_only_last_time():
    history = ContactHistory(owner_id=0)
    assert history.record_contact(1, now=100.0) is None
    assert history.intervals(1) == []
    assert history.last_contact(1) == 100.0
    assert history.has_met(1)
    assert not history.has_met(2)
    assert history.contact_count(1) == 1


def test_subsequent_contacts_record_intervals():
    history = ContactHistory(owner_id=0)
    history.record_contact(1, 100.0)
    assert history.record_contact(1, 160.0) == 60.0
    assert history.record_contact(1, 300.0) == 140.0
    assert history.intervals(1) == [60.0, 140.0]
    assert history.mean_interval(1) == 100.0
    assert history.contact_count(1) == 3


def test_sliding_window_trims_oldest():
    history = ContactHistory(owner_id=0, window_size=3)
    t = 0.0
    for interval in (10.0, 20.0, 30.0, 40.0):
        t += interval
        history.record_contact(1, t)
    # first contact sets t0; intervals recorded: 20, 30, 40 -> window keeps 3
    assert history.intervals(1) == [20.0, 30.0, 40.0]
    t += 50.0
    history.record_contact(1, t)
    assert history.intervals(1) == [30.0, 40.0, 50.0]


def test_elapsed_since_clamps_at_zero():
    history = ContactHistory(owner_id=0)
    history.record_contact(1, 100.0)
    assert history.elapsed_since(1, 130.0) == 30.0
    assert history.elapsed_since(1, 100.0) == 0.0
    assert history.elapsed_since(2, 100.0) is None


def test_independent_peers():
    history = ContactHistory(owner_id=0)
    history.record_contact(1, 10.0)
    history.record_contact(2, 20.0)
    history.record_contact(1, 50.0)
    assert sorted(history.peers()) == [1, 2]
    assert history.intervals(1) == [40.0]
    assert history.intervals(2) == []
    assert history.total_intervals() == 1
    snapshot = history.snapshot()
    assert snapshot == {1: [40.0]}
    # the snapshot is a copy
    snapshot[1].append(999.0)
    assert history.intervals(1) == [40.0]


def test_validation():
    with pytest.raises(ValueError):
        ContactHistory(owner_id=0, window_size=0)
    history = ContactHistory(owner_id=0)
    with pytest.raises(ValueError):
        history.record_contact(0, 10.0)  # self-contact
    with pytest.raises(ValueError):
        history.record_contact(1, -5.0)
    history.record_contact(1, 50.0)
    with pytest.raises(ValueError):
        history.record_contact(1, 40.0)  # time going backwards


def test_mean_interval_none_without_intervals():
    history = ContactHistory(owner_id=0)
    assert history.mean_interval(1) is None
    history.record_contact(1, 5.0)
    assert history.mean_interval(1) is None
