"""End-to-end integration tests across the whole stack.

These run small but complete scenarios (mobility, connectivity, buffers,
traffic, routing, statistics) and check cross-module invariants rather than
individual units.
"""

import pytest

from repro.experiments.builder import build_scenario
from repro.experiments.runner import run_scenario
from repro.experiments.scenario import MobilityKind, ScenarioConfig
from repro.traces.contact_trace import ContactTrace
from repro.traces.generators import community_structured_trace, periodic_contact_trace
from repro.traces.replay import build_trace_world
from repro.net.generators import MessageEventGenerator, TrafficSpec


def small_bus_config(protocol, **overrides):
    config = ScenarioConfig.bench_scale(protocol=protocol, num_nodes=16,
                                        sim_time=600.0, seed=11)
    return config.with_overrides(**overrides) if overrides else config


PROTOCOLS = ["epidemic", "prophet", "maxprop", "spray-and-wait",
             "spray-and-focus", "ebr", "eer", "cr", "direct", "first-contact"]


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_every_protocol_runs_and_reports_consistently(protocol):
    report = run_scenario(small_bus_config(protocol))
    assert report.created > 0
    assert 0.0 <= report.delivery_ratio <= 1.0
    assert report.delivered <= report.created
    assert report.goodput <= 1.0
    assert report.average_latency >= 0.0
    # delivered messages can never outnumber completed relays
    assert report.delivered <= max(report.relayed, report.delivered)


def test_epidemic_dominates_direct_delivery_on_delivery_ratio():
    direct = run_scenario(small_bus_config("direct"))
    epidemic = run_scenario(small_bus_config("epidemic"))
    assert epidemic.delivery_ratio >= direct.delivery_ratio
    # and pays for it with relays
    assert epidemic.relayed > direct.relayed


def test_quota_protocol_relays_bounded_by_lambda_per_message():
    lam = 6
    report = run_scenario(small_bus_config("spray-and-wait", message_copies=lam))
    # each message can be copied at most lambda - 1 times during spraying plus
    # one final delivery hop per replica; a loose but meaningful bound
    assert report.relayed <= report.created * (2 * lam)


def test_stats_invariants_on_bus_scenario():
    built = build_scenario(small_bus_config("eer"))
    built.run()
    stats = built.stats
    assert stats.delivered == len(stats.delivered_records)
    assert stats.created == len(stats.created_records)
    assert all(record.latency >= 0 for record in stats.delivered_records)
    assert all(record.latency <= built.config.message_ttl + built.config.update_interval
               for record in stats.delivered_records)
    # every delivered message was actually created
    created_ids = {record.message_id for record in stats.created_records}
    assert {record.message_id for record in stats.delivered_records} <= created_ids
    # contact accounting is symmetric (each contact recorded exactly once)
    assert stats.contacts >= len(stats.contact_records)


def test_community_scenario_cr_outperforms_random_forwarding_baseline():
    """On a strongly community-structured trace CR should beat Spray-and-Wait.

    The destination is always in another community, so exploiting community
    structure is what pays off — the paper's core CR claim.
    """
    trace, membership = community_structured_trace(
        num_nodes=20, num_communities=4, duration=4000.0,
        intra_period=120.0, inter_period=1600.0, contact_duration=15.0, seed=21)

    def run(protocol):
        simulator, world = build_trace_world(
            trace, protocol=protocol, communities=membership, seed=3,
            buffer_capacity=50 * 1024 * 1024)
        spec = TrafficSpec(interval=(40.0, 60.0), size=1000, ttl=1500.0, copies=6)
        MessageEventGenerator(simulator, world, spec)
        simulator.run(until=4000.0)
        return world.stats

    cr_stats = run("cr")
    snw_stats = run("spray-and-wait")
    assert cr_stats.delivery_ratio >= snw_stats.delivery_ratio
    assert cr_stats.created == snw_stats.created  # same traffic in both runs


def test_eer_beats_ebr_on_periodic_contacts():
    """Periodic contacts are the regime where conditioning on elapsed time and
    TTL (EER) should out-deliver the TTL-agnostic EBR."""
    trace = periodic_contact_trace(num_nodes=20, duration=4000.0,
                                   period_range=(150.0, 500.0),
                                   contact_duration=15.0, jitter=0.1,
                                   pair_fraction=0.4, seed=8)

    def run(protocol):
        simulator, world = build_trace_world(
            trace, protocol=protocol, seed=3, buffer_capacity=50 * 1024 * 1024)
        spec = TrafficSpec(interval=(40.0, 60.0), size=1000, ttl=1200.0, copies=8)
        MessageEventGenerator(simulator, world, spec)
        simulator.run(until=4000.0)
        return world.stats

    eer_stats = run("eer")
    ebr_stats = run("ebr")
    assert eer_stats.delivery_ratio >= ebr_stats.delivery_ratio


def test_mobility_kinds_give_live_networks():
    for mobility in (MobilityKind.BUS, MobilityKind.COMMUNITY,
                     MobilityKind.RANDOM_WAYPOINT):
        config = ScenarioConfig.bench_scale(protocol="epidemic", num_nodes=12,
                                            sim_time=400.0, seed=5)
        config = config.with_overrides(mobility=mobility, transmit_range=60.0)
        report = run_scenario(config)
        assert report.contacts > 0


def test_trace_export_and_replay_reproduce_contact_count():
    built = build_scenario(small_bus_config("direct", sim_time=400.0))
    built.run()
    trace = ContactTrace.from_contact_records(built.stats.contact_records,
                                              horizon=400.0)
    simulator, world = build_trace_world(trace, protocol="direct",
                                         num_nodes=built.world.num_nodes)
    simulator.run(until=400.0)
    # the replayed world sees the same contacts that were recorded (closed ones)
    assert world.stats.contacts == len(built.stats.contact_records)
