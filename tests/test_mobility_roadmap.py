"""Unit tests for the road-map graph."""

import numpy as np
import pytest

from repro.mobility.roadmap import RoadMap


@pytest.fixture
def square_map():
    """A unit square with one diagonal: 0-(0,0), 1-(1,0), 2-(1,1), 3-(0,1)."""
    roadmap = RoadMap()
    for x, y in [(0, 0), (1, 0), (1, 1), (0, 1)]:
        roadmap.add_vertex(x, y)
    roadmap.add_edge(0, 1)
    roadmap.add_edge(1, 2)
    roadmap.add_edge(2, 3)
    roadmap.add_edge(3, 0)
    roadmap.add_edge(0, 2)  # diagonal
    return roadmap


def test_counts_and_lengths(square_map):
    assert square_map.num_vertices == 4
    assert square_map.num_edges == 5
    assert square_map.edge_length(0, 1) == pytest.approx(1.0)
    assert square_map.edge_length(0, 2) == pytest.approx(np.sqrt(2))


def test_invalid_edges_rejected(square_map):
    with pytest.raises(ValueError):
        square_map.add_edge(0, 0)
    with pytest.raises(IndexError):
        square_map.add_edge(0, 99)
    with pytest.raises(KeyError):
        square_map.edge_length(1, 3)
    colocated = RoadMap()
    colocated.add_vertex(0, 0)
    colocated.add_vertex(0, 0)
    with pytest.raises(ValueError):
        colocated.add_edge(0, 1)


def test_shortest_path_prefers_diagonal(square_map):
    assert square_map.shortest_path(0, 2) == [0, 2]
    assert square_map.shortest_path(1, 3) in ([1, 0, 3], [1, 2, 3])
    assert square_map.shortest_path(2, 2) == [2]
    assert square_map.path_length([0, 1, 2]) == pytest.approx(2.0)


def test_unreachable_vertex_raises():
    roadmap = RoadMap()
    roadmap.add_vertex(0, 0)
    roadmap.add_vertex(1, 0)
    roadmap.add_vertex(5, 5)
    roadmap.add_edge(0, 1)
    assert not roadmap.is_connected()
    with pytest.raises(ValueError):
        roadmap.shortest_path(0, 2)


def test_nearest_vertex(square_map):
    assert square_map.nearest_vertex((0.1, -0.2)) == 0
    assert square_map.nearest_vertex((0.9, 1.2)) == 2


def test_bounds_and_coordinates(square_map):
    assert square_map.bounds() == (0.0, 0.0, 1.0, 1.0)
    assert np.allclose(square_map.coordinates(3), (0.0, 1.0))
    coords = square_map.all_coordinates()
    assert coords.shape == (4, 2)
    # coordinates() returns a copy, mutating it does not corrupt the map
    c = square_map.coordinates(0)
    c[0] = 99.0
    assert square_map.coordinates(0)[0] == 0.0


def test_path_coordinates(square_map):
    waypoints = square_map.path_coordinates([0, 1, 2])
    assert len(waypoints) == 3
    assert np.allclose(waypoints[1], (1.0, 0.0))


def test_empty_map_queries():
    roadmap = RoadMap()
    assert roadmap.is_connected()
    assert roadmap.bounds() == (0.0, 0.0, 0.0, 0.0)
    with pytest.raises(ValueError):
        roadmap.nearest_vertex((0, 0))
