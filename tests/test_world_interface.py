"""Unit tests for the radio interface."""

import pytest

from repro.world.interface import Interface


def test_defaults_match_paper_settings():
    interface = Interface()
    assert interface.transmit_range == 10.0
    assert interface.transmit_speed == pytest.approx(250_000.0)  # 2 Mbit/s


def test_link_bitrate_is_minimum_of_both():
    fast = Interface(transmit_speed=1_000_000)
    slow = Interface(transmit_speed=100_000)
    assert fast.link_bitrate(slow) == 100_000
    assert slow.link_bitrate(fast) == 100_000


def test_in_range_requires_both_radios_to_cover_distance():
    long_range = Interface(transmit_range=100.0)
    short_range = Interface(transmit_range=10.0)
    assert long_range.in_range(5.0, short_range)
    assert not long_range.in_range(50.0, short_range)
    assert long_range.in_range(50.0, long_range)


def test_validation():
    with pytest.raises(ValueError):
        Interface(transmit_range=0)
    with pytest.raises(ValueError):
        Interface(transmit_speed=0)


def test_interface_is_immutable():
    interface = Interface()
    with pytest.raises(Exception):
        interface.transmit_range = 50.0
