"""Unit tests for connectivity detection (all three implementations)."""

import numpy as np
import pytest

from repro.world.connectivity import (
    BruteForceConnectivity,
    GridConnectivity,
    KDTreeConnectivity,
)

DETECTORS = [BruteForceConnectivity(), KDTreeConnectivity(), GridConnectivity()]


@pytest.mark.parametrize("detector", DETECTORS, ids=lambda d: type(d).__name__)
def test_simple_pairs(detector):
    positions = np.array([[0.0, 0.0], [5.0, 0.0], [100.0, 0.0]])
    ranges = np.array([10.0, 10.0, 10.0])
    assert detector.find_pairs(positions, ranges) == {(0, 1)}


@pytest.mark.parametrize("detector", DETECTORS, ids=lambda d: type(d).__name__)
def test_boundary_distance_is_in_range(detector):
    positions = np.array([[0.0, 0.0], [10.0, 0.0]])
    ranges = np.array([10.0, 10.0])
    assert detector.find_pairs(positions, ranges) == {(0, 1)}


@pytest.mark.parametrize("detector", DETECTORS, ids=lambda d: type(d).__name__)
def test_asymmetric_ranges_use_minimum(detector):
    positions = np.array([[0.0, 0.0], [15.0, 0.0]])
    ranges = np.array([100.0, 10.0])
    assert detector.find_pairs(positions, ranges) == set()
    ranges = np.array([100.0, 20.0])
    assert detector.find_pairs(positions, ranges) == {(0, 1)}


@pytest.mark.parametrize("detector", DETECTORS, ids=lambda d: type(d).__name__)
def test_empty_and_single_node(detector):
    assert detector.find_pairs(np.empty((0, 2)), np.empty(0)) == set()
    assert detector.find_pairs(np.array([[1.0, 1.0]]), np.array([10.0])) == set()


@pytest.mark.parametrize("detector", [KDTreeConnectivity(), GridConnectivity()],
                         ids=lambda d: type(d).__name__)
def test_matches_brute_force_on_random_layouts(detector):
    rng = np.random.default_rng(12)
    reference = BruteForceConnectivity()
    for _ in range(10):
        n = int(rng.integers(2, 60))
        positions = rng.uniform(0, 500, size=(n, 2))
        ranges = np.full(n, float(rng.uniform(10, 80)))
        assert detector.find_pairs(positions, ranges) == \
            reference.find_pairs(positions, ranges)


@pytest.mark.parametrize("detector", [KDTreeConnectivity(), GridConnectivity()],
                         ids=lambda d: type(d).__name__)
def test_matches_brute_force_with_heterogeneous_ranges(detector):
    rng = np.random.default_rng(3)
    reference = BruteForceConnectivity()
    positions = rng.uniform(0, 300, size=(40, 2))
    ranges = rng.uniform(5, 60, size=40)
    assert detector.find_pairs(positions, ranges) == \
        reference.find_pairs(positions, ranges)


@pytest.mark.parametrize("detector", DETECTORS, ids=lambda d: type(d).__name__)
def test_dense_cluster_all_pairs_found(detector):
    positions = np.zeros((6, 2)) + np.arange(6)[:, None] * 0.5
    ranges = np.full(6, 10.0)
    pairs = detector.find_pairs(positions, ranges)
    assert len(pairs) == 15  # all 6 choose 2
