"""Tests for the CommunityProvider boundary (oracle vs detected)."""

import pytest

from repro.community.online import OnlineCommunityTracker
from repro.community.provider import (
    COMMUNITY_MODES,
    DetectedCommunityProvider,
    OracleCommunityProvider,
    community_provider_for,
)
from repro.testing import make_contact_plan, make_world

COMMUNITIES = {0: 0, 1: 0, 2: 1, 3: 1}


def small_world(communities=COMMUNITIES):
    trace = make_contact_plan([(10.0, 30.0, 0, 1)])
    _, world = make_world(trace, protocol="epidemic", num_nodes=4,
                          communities=communities)
    return world


# ---------------------------------------------------------------------- oracle
def test_oracle_provider_reads_node_labels():
    provider = OracleCommunityProvider(small_world())
    assert provider.mode == "oracle"
    assert provider.version == 0
    assert provider.community_of(0, now=0.0) == 0
    assert provider.community_of(3, now=1e9) == 1
    assert provider.communities(0.0) == {0: [0, 1], 1: [2, 3]}
    assert provider.members(1, 0.0) == [2, 3]
    assert provider.members(99, 0.0) == []
    # observation is a no-op and never changes the version
    provider.observe_contact(0, 3, 5.0)
    assert provider.version == 0


def test_oracle_provider_requires_full_assignment():
    with pytest.raises(RuntimeError):
        OracleCommunityProvider(small_world(communities=None))


# -------------------------------------------------------------------- detected
def test_detected_provider_follows_tracker():
    tracker = OnlineCommunityTracker(4, algorithm="newman", staleness=0.0)
    provider = DetectedCommunityProvider(tracker)
    assert provider.mode == "newman"
    before = provider.version
    # no contacts yet: everyone is a singleton
    assert len(set(provider.communities(0.0))) == 4
    for _ in range(3):
        provider.observe_contact(0, 1, 0.0)
    assert provider.community_of(0, now=1.0) == provider.community_of(1, now=1.0)
    assert provider.version > before
    assert sorted(provider.members(provider.community_of(0, 2.0), 2.0)) == [0, 1]


# ------------------------------------------------------------- world sharing
def test_provider_shared_per_world_and_configuration():
    world = small_world()
    oracle = community_provider_for(world, "oracle")
    assert community_provider_for(world, "oracle") is oracle
    detected = community_provider_for(world, "newman", staleness=60.0)
    assert community_provider_for(world, "newman", staleness=60.0) is detected
    assert detected is not oracle
    # a different detection configuration is a different provider
    other = community_provider_for(world, "newman", staleness=120.0)
    assert other is not detected
    # detected trackers report through the world's collector
    detected.tracker.observe(0, 1)
    detected.communities(0.0)
    assert world.stats.community_detections >= 1


def test_detected_communities_view_is_revision_cached():
    tracker = OnlineCommunityTracker(4, algorithm="newman", staleness=0.0)
    provider = DetectedCommunityProvider(tracker)
    first = provider.communities(0.0)
    # unchanged revision: the same materialised dict is served, not a copy
    assert provider.communities(1.0) is first
    for _ in range(3):
        provider.observe_contact(0, 1, 2.0)
    changed = provider.communities(3.0)
    assert changed is not first
    assert provider.communities(4.0) is changed


def test_unknown_mode_rejected():
    with pytest.raises(ValueError):
        community_provider_for(small_world(), "louvain")
    assert set(COMMUNITY_MODES) == {"oracle", "kclique", "newman"}
