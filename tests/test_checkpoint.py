"""Checkpoint codecs and container: round trips, typed errors, RNG capture.

Three layers are pinned here:

* **codec round trips** (property-based): arbitrary arrays, message-buffer
  states, contact-history ring buffers and event-queue heaps survive
  save→load→save with *identical bytes* — serialization is a pure function
  of simulation state;
* **container integrity**: truncated, corrupted, version-mismatched and
  plain-garbage snapshots raise the typed
  :exc:`~repro.checkpoint.CheckpointError` instead of yielding garbage
  state;
* **RNG stream capture**: streams advanced mid-run restore to the exact
  generator state, in-process and in a fresh interpreter (the process-pool
  resume scenario).

The behavioural half of the contract — resumed runs produce byte-identical
reports — lives in ``test_checkpoint_resume_equality.py``.
"""

import io
import json
import subprocess
import sys
import textwrap
import zipfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

import repro
from repro.checkpoint import (
    FORMAT_VERSION,
    CheckpointError,
    config_from_payload,
    config_to_payload,
    decode_array,
    decode_state,
    encode_array,
    encode_state,
    load_checkpoint,
    load_checkpoint_bytes,
    read_manifest,
    save_checkpoint,
    save_checkpoint_bytes,
)
from repro.contacts.history import ContactHistory
from repro.experiments.builder import build_scenario
from repro.experiments.scenario import ScenarioConfig
from repro.net.buffer import MessageBuffer
from repro.net.message import Message
from repro.sim.engine import Simulator
from repro.sim.events import CallbackEvent, EventQueue
from repro.sim.rng import RandomStreams
from repro.testing import inject_message, make_contact_plan, make_world


def roundtrip(obj):
    """One full save→load cycle through the state + array codecs."""
    state, arrays = encode_state(obj)
    restored = decode_state(
        state, [decode_array(encode_array(array)) for array in arrays])
    return state, arrays, restored


def assert_stable_bytes(obj):
    """save→load→save yields identical bytes for *obj*; returns the copy."""
    state, arrays, restored = roundtrip(obj)
    state2, arrays2 = encode_state(restored)
    assert state2 == state
    assert [encode_array(a) for a in arrays2] \
        == [encode_array(a) for a in arrays]
    return restored


# ------------------------------------------------------------- array codec
@given(hnp.arrays(
    dtype=st.sampled_from(["float64", "float32", "int64", "int32",
                           "uint8", "bool"]),
    shape=hnp.array_shapes(max_dims=3, max_side=9)))
def test_array_codec_roundtrip_any_dtype_shape(array):
    blob = encode_array(array)
    back = decode_array(blob)
    assert back.dtype == array.dtype and back.shape == array.shape
    assert back.tobytes() == array.tobytes()
    # re-encoding the decoded array is byte-stable
    assert encode_array(back) == blob


def test_array_codec_rejects_garbage():
    with pytest.raises(CheckpointError):
        decode_array(b"\x93NUMPY-bad-header")
    with pytest.raises(CheckpointError):
        decode_array(b"")


# ------------------------------------------------------ buffer/history/heap
@st.composite
def buffer_operations(draw):
    """A (capacity, operations) script for a MessageBuffer."""
    capacity = draw(st.integers(min_value=8_000, max_value=40_000))
    count = draw(st.integers(min_value=0, max_value=25))
    ops = []
    for index in range(count):
        size = draw(st.integers(min_value=100, max_value=6_000))
        ttl = draw(st.floats(min_value=1.0, max_value=500.0,
                             allow_nan=False, allow_infinity=False))
        created = draw(st.floats(min_value=0.0, max_value=100.0,
                                 allow_nan=False, allow_infinity=False))
        destination = draw(st.integers(min_value=0, max_value=5))
        ops.append(("add", f"m{index}", size, created, ttl, destination))
        if draw(st.booleans()):
            ops.append(("remove", f"m{draw(st.integers(0, index))}"))
    return capacity, ops


@settings(max_examples=40, deadline=None)
@given(buffer_operations())
def test_message_buffer_state_is_byte_stable(script):
    capacity, ops = script
    buffer = MessageBuffer(capacity)
    for op in ops:
        if op[0] == "add":
            _, mid, size, created, ttl, dest = op
            buffer.add(Message(mid, 0, dest, size, created, ttl, 1))
        else:
            buffer.remove(op[1])
    restored = assert_stable_bytes(buffer)
    assert restored.message_ids() == buffer.message_ids()
    assert restored.occupancy == buffer.occupancy
    assert restored.next_expiry() == buffer.next_expiry()
    # per-destination indexes survive too
    for dest in range(6):
        assert ([m.message_id for m in restored.messages_for_destination(dest)]
                == [m.message_id for m in buffer.messages_for_destination(dest)])


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 6),
                          st.floats(min_value=0.01, max_value=50.0,
                                    allow_nan=False, allow_infinity=False)),
                max_size=40),
       st.integers(min_value=1, max_value=8))
def test_contact_history_ring_buffer_is_byte_stable(meetings, window):
    history = ContactHistory(owner_id=9, window_size=window)
    now = 0.0
    for peer, gap in meetings:
        now += gap
        history.record_contact(peer, now)
    restored = assert_stable_bytes(history)
    for ours, theirs in zip(history.interval_arrays(),
                            restored.interval_arrays()):
        assert np.array_equal(ours, theirs)
    for ours, theirs in zip(history.contact_count_arrays(),
                            restored.contact_count_arrays()):
        assert np.array_equal(ours, theirs)


def _heap_callback(simulator):  # module-level: pickles by reference
    pass


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.floats(min_value=0.0, max_value=1_000.0,
                                    allow_nan=False, allow_infinity=False),
                          st.integers(0, 30)),
                max_size=30),
       st.integers(min_value=0, max_value=10))
def test_event_queue_heap_is_byte_stable(schedule, pops):
    queue = EventQueue()
    for time, priority in schedule:
        queue.push(CallbackEvent(time, _heap_callback, priority))
    for _ in range(min(pops, len(queue))):
        queue.pop()
    restored = assert_stable_bytes(queue)
    # the restored heap drains in the identical order
    ours, theirs = [], []
    while len(queue):
        event = queue.pop()
        ours.append((event.time, event.priority))
    while len(restored):
        event = restored.pop()
        theirs.append((event.time, event.priority))
    assert theirs == ours


def test_shared_array_references_survive_restore():
    shared = np.arange(64, dtype=np.float64)
    holder = {"a": shared, "b": shared, "c": shared[:32]}
    state, arrays, restored = roundtrip(holder)
    # one externalized entry for the shared base (the view pickles inline)
    assert len(arrays) == 1
    assert restored["a"] is restored["b"]
    assert np.array_equal(restored["c"], shared[:32])


# ---------------------------------------------------------------- container
@pytest.fixture(scope="module")
def world_blob():
    """Container bytes of a small mid-run trace world."""
    trace = make_contact_plan([(1.0, 5.0, 0, 1), (2.0, 8.0, 1, 2)])
    simulator, world = make_world(trace, num_nodes=3)
    inject_message(world, 0, 2, ttl=100.0)
    simulator.run(until=4.0)
    blob = save_checkpoint_bytes(
        world, config=ScenarioConfig(name="ckpt-test", num_nodes=3))
    world.stop()
    return blob


def _rewrite_entry(blob, name, data):
    """Re-pack *blob* with entry *name* replaced by *data* (valid zip)."""
    source = zipfile.ZipFile(io.BytesIO(blob))
    out = io.BytesIO()
    with zipfile.ZipFile(out, "w") as archive:
        for info in source.infolist():
            payload = data if info.filename == name \
                else source.read(info.filename)
            archive.writestr(info.filename, payload)
    return out.getvalue()


def _rewrite_manifest(blob, **fields):
    manifest = json.loads(zipfile.ZipFile(io.BytesIO(blob))
                          .read("MANIFEST.json"))
    manifest.update(fields)
    return _rewrite_entry(blob, "MANIFEST.json",
                          json.dumps(manifest).encode("utf-8"))


def test_container_roundtrips_and_manifest(world_blob, tmp_path):
    restored = load_checkpoint_bytes(world_blob)
    assert restored.manifest["magic"] == "repro-checkpoint"
    assert restored.manifest["format_version"] == FORMAT_VERSION
    assert restored.manifest["num_nodes"] == 3
    assert restored.sim_now == 4.0
    assert restored.config is not None and restored.config.name == "ckpt-test"
    # arrays actually externalize (the compact-container requirement)
    assert restored.manifest["array_count"] > 0
    restored.world.stop()
    # file-level API + manifest reader
    path = tmp_path / "world.ckpt"
    path.write_bytes(world_blob)
    manifest = read_manifest(str(path))
    assert manifest == restored.manifest
    world = load_checkpoint(str(path)).world
    assert world.num_nodes == 3 and world.simulator.now == 4.0
    world.stop()


@settings(max_examples=30, deadline=None)
@given(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
def test_truncated_snapshot_raises_checkpoint_error(world_blob, fraction):
    cut = int(len(world_blob) * fraction)
    assume(cut < len(world_blob))
    with pytest.raises(CheckpointError):
        load_checkpoint_bytes(world_blob[:cut])


def test_corrupted_entries_raise_checkpoint_error(world_blob):
    # flipped state bytes -> state digest mismatch
    state = zipfile.ZipFile(io.BytesIO(world_blob)).read("state.pkl")
    tampered = bytes([state[0] ^ 0xFF]) + state[1:]
    with pytest.raises(CheckpointError, match="checksum"):
        load_checkpoint_bytes(_rewrite_entry(world_blob, "state.pkl", tampered))
    # flipped array bytes -> array digest mismatch
    first = zipfile.ZipFile(io.BytesIO(world_blob)).read("arrays/0.npy")
    tampered = first[:-1] + bytes([first[-1] ^ 0xFF])
    with pytest.raises(CheckpointError, match="checksum"):
        load_checkpoint_bytes(_rewrite_entry(world_blob, "arrays/0.npy",
                                             tampered))


def test_version_and_magic_mismatch_raise_checkpoint_error(world_blob):
    with pytest.raises(CheckpointError, match="format version"):
        load_checkpoint_bytes(_rewrite_manifest(world_blob,
                                                format_version=999))
    with pytest.raises(CheckpointError, match="magic"):
        load_checkpoint_bytes(_rewrite_manifest(world_blob, magic="nope"))
    with pytest.raises(CheckpointError, match="manifest"):
        load_checkpoint_bytes(_rewrite_entry(world_blob, "MANIFEST.json",
                                             b"{not json"))


def test_missing_entries_and_garbage_raise_checkpoint_error(world_blob,
                                                            tmp_path):
    source = zipfile.ZipFile(io.BytesIO(world_blob))
    out = io.BytesIO()
    with zipfile.ZipFile(out, "w") as archive:
        for info in source.infolist():
            if info.filename != "state.pkl":
                archive.writestr(info.filename, source.read(info.filename))
    with pytest.raises(CheckpointError, match="missing"):
        load_checkpoint_bytes(out.getvalue())
    with pytest.raises(CheckpointError):
        load_checkpoint_bytes(b"definitely not a zip archive")
    with pytest.raises(CheckpointError, match="no snapshot"):
        load_checkpoint(str(tmp_path / "absent.ckpt"))


def test_container_bytes_are_deterministic(world_blob):
    """The container is a pure function of state (fixed zip timestamps)."""
    trace = make_contact_plan([(1.0, 5.0, 0, 1)])
    simulator, world = make_world(trace)
    simulator.run(until=2.0)
    first = save_checkpoint_bytes(world)
    second = save_checkpoint_bytes(world)
    world.stop()
    assert first == second


def test_config_payload_roundtrip():
    config = ScenarioConfig.bench_scale(
        protocol="cr", num_nodes=12, seed=4, detector="sharded",
        world_workers=2, world_workers_mode="process",
        record_mode="columnar", router_params={"alpha": 0.3})
    payload = json.loads(json.dumps(config_to_payload(config)))
    assert config_from_payload(payload) == config
    with pytest.raises(CheckpointError):
        config_from_payload({"num_nodes": -3})


# ---------------------------------------------------------------- RNG pins
def test_rng_streams_restore_to_exact_generator_state():
    streams = RandomStreams(seed=42)
    gen = streams.numpy("traffic")
    rng = streams.python("mobility-3")
    gen.standard_normal(17)
    [rng.random() for _ in range(11)]
    restored = assert_stable_bytes(streams)
    assert restored.seed == streams.seed
    assert restored.numpy("traffic").bit_generator.state \
        == gen.bit_generator.state
    assert restored.python("mobility-3").getstate() == rng.getstate()
    # advanced streams continue identically...
    assert restored.numpy("traffic").standard_normal(8).tolist() \
        == gen.standard_normal(8).tolist()
    assert [restored.python("mobility-3").random() for _ in range(8)] \
        == [rng.random() for _ in range(8)]
    # ...and so do streams first derived *after* the restore
    assert [restored.python("late").random() for _ in range(4)] \
        == [streams.python("late").random() for _ in range(4)]


def test_mid_run_rng_streams_restore_exactly_in_a_fresh_process(tmp_path):
    """The process-pool resume scenario: a snapshot taken mid-run restores
    every advanced RNG stream to its exact state in a fresh interpreter."""
    config = ScenarioConfig.bench_scale(
        protocol="epidemic", num_nodes=8, seed=9, sim_time=200.0,
        mobility="random_waypoint")
    built = build_scenario(config)
    built.simulator.run(until=90.0)
    path = tmp_path / "mid.ckpt"
    built.world.save_checkpoint(str(path), config=config)
    streams = built.simulator.random
    # pin the streams the run actually advanced, not ones we invent here
    assert streams._python_streams or streams._numpy_streams
    expected = {
        "python": {name: [streams.python(name).random() for _ in range(3)]
                   for name in sorted(streams._python_streams)},
        "numpy": {name: streams.numpy(name).standard_normal(3).tolist()
                  for name in sorted(streams._numpy_streams)},
    }
    built.world.stop()
    src = str(Path(repro.__file__).resolve().parents[1])
    code = textwrap.dedent(f"""
        import json, sys
        sys.path.insert(0, {src!r})
        from repro.checkpoint import load_checkpoint
        world = load_checkpoint({str(path)!r}).world
        streams = world.simulator.random
        print(json.dumps({{
            "python": {{n: [streams.python(n).random() for _ in range(3)]
                        for n in sorted(streams._python_streams)}},
            "numpy": {{n: streams.numpy(n).standard_normal(3).tolist()
                       for n in sorted(streams._numpy_streams)}},
        }}))
        world.stop()
    """)
    result = subprocess.run([sys.executable, "-c", code],
                            capture_output=True, text=True, check=True)
    assert json.loads(result.stdout) == expected
