"""Collector record-mode parity: lists vs columnar vs off.

The three record modes must be observationally identical everywhere except
storage: same aggregates, same derived metrics, and (for the two that keep
records) the same materialized record lists — across both direct event feeds
and a full catalog scenario run.
"""

import numpy as np
import pytest

from repro.experiments.builder import build_scenario
from repro.experiments.catalog import make_scenario
from repro.metrics.collector import RecordMode, StatsCollector
from repro.metrics.reports import build_report
from repro.net.message import Message

METRICS = ("delivery_ratio", "average_latency", "goodput", "overhead_ratio",
           "average_hop_count")


def feed(collector: StatsCollector) -> None:
    a = Message("A", 0, 1, 100, 0.0, ttl=500.0, copies=4)
    b = Message("B", 2, 3, 100, 10.0, ttl=500.0, copies=4)
    collector.message_created(a)
    collector.message_created(b)
    collector.contact_up(0, 2, 1.0)
    collector.message_relayed(a, 0, 2, 5.0, 2, False)
    collector.contact_down(0, 2, 9.0)
    delivered = a.replicate(1, receiver=1, now=42.0)
    collector.message_relayed(delivered, 2, 1, 42.0, 1, True)
    collector.message_delivered(delivered, 42.0)
    collector.message_delivered(delivered, 50.0)  # duplicate
    collector.message_dropped(b, 2, 60.0, "buffer")
    collector.message_dropped(b, 3, 70.0, "expired")
    collector.transfer_aborted(b, 2, 3, 80.0, 55.0)


def test_mode_resolution():
    assert StatsCollector().record_mode is RecordMode.LISTS
    assert StatsCollector(keep_records=False).record_mode is RecordMode.OFF
    assert StatsCollector(columnar=True).record_mode is RecordMode.COLUMNAR
    assert StatsCollector(mode="columnar").record_mode is RecordMode.COLUMNAR
    assert StatsCollector(keep_records=False, mode="lists").record_mode \
        is RecordMode.LISTS
    assert StatsCollector(mode="off").keep_records is False


def test_event_feed_parity_across_modes():
    collectors = {mode: StatsCollector(mode=mode)
                  for mode in ("off", "lists", "columnar")}
    for collector in collectors.values():
        feed(collector)
    lists_mode = collectors["lists"]
    for name, collector in collectors.items():
        assert collector.created == 2
        assert collector.delivered == 1
        assert collector.duplicate_deliveries == 1
        assert collector.relayed == 2
        assert collector.dropped == 2 and collector.expired == 1
        assert collector.aborted == 1
        assert collector.contacts == 1
        for metric in METRICS:
            assert getattr(collector, metric) == getattr(lists_mode, metric), \
                (name, metric)
    # identical materialized records between lists and columnar
    columnar = collectors["columnar"]
    assert columnar.created_records == lists_mode.created_records
    assert columnar.relayed_records == lists_mode.relayed_records
    assert columnar.delivered_records == lists_mode.delivered_records
    assert columnar.dropped_records == lists_mode.dropped_records
    assert columnar.aborted_records == lists_mode.aborted_records
    assert columnar.contact_records == lists_mode.contact_records
    # off keeps no records but all aggregates
    off = collectors["off"]
    assert off.created_records == [] and off.delivered_records == []
    # latency arrays agree
    assert np.array_equal(columnar.delivered_latencies(),
                          lists_mode.delivered_latencies())


def test_record_columns_access():
    collector = StatsCollector(mode="columnar")
    feed(collector)
    columns = collector.record_columns("delivered")
    assert columns["delivered_at"].tolist() == [42.0]
    assert columns["hop_count"].tolist() == [1]
    with pytest.raises(RuntimeError):
        StatsCollector(mode="lists").record_columns("delivered")


def test_record_storage_reporting():
    lists_mode = StatsCollector(mode="lists")
    columnar = StatsCollector(mode="columnar")
    off = StatsCollector(mode="off")
    for collector in (lists_mode, columnar, off):
        feed(collector)
    assert lists_mode.record_storage_bytes() > 0
    assert columnar.record_storage_bytes() > 0
    assert off.record_storage_bytes() == 0


@pytest.mark.parametrize("scenario", ["bench"])
def test_scenario_metrics_identical_across_record_modes(scenario):
    """Delivery ratio / latency / overhead / hops identical for off, lists
    and columnar across a catalog scenario run."""
    reports = {}
    for mode in ("off", "lists", "columnar"):
        config = make_scenario(scenario, {"sim_time": 400.0, "seed": 3,
                                          "protocol": "epidemic",
                                          "record_mode": mode})
        built = build_scenario(config)
        built.run()
        reports[mode] = build_report(
            built.stats, protocol=config.protocol, num_nodes=config.num_nodes,
            sim_time=config.sim_time, seed=config.seed)
        assert built.stats.record_mode.value == mode
    base = reports["lists"]
    assert base.delivered > 0  # the run must actually exercise the collector
    for mode in ("off", "columnar"):
        report = reports[mode]
        for metric in METRICS + ("created", "delivered", "relayed", "dropped",
                                 "contacts", "control_rows_exchanged"):
            assert report.metric(metric) == base.metric(metric), (mode, metric)
    # percentiles come from records: identical between lists and columnar,
    # absent (empty) when records are off
    assert reports["columnar"].latency_percentiles == base.latency_percentiles
    assert reports["off"].latency_percentiles == {}
