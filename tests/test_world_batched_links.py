"""Per-tick batched link-event dispatch (World._apply_link_changes).

The world hands every affected router *all* of its link changes for a tick in
one ``batch_changed_connections`` call.  These tests pin the dispatch
contract: downs before ups, pair-sorted within each group, routers notified
in ascending node-id order — which is exactly what keeps the contact-state
exchange invariant (smaller endpoint folds the contact in before the
larger-id initiator runs the exchange).
"""

from repro.routing.epidemic import EpidemicRouter
from repro.traces.contact_trace import ContactTrace
from repro.traces.replay import build_trace_world


class RecordingRouter(EpidemicRouter):
    """Epidemic router that logs the batched notifications it receives."""

    name = "recording"

    def __init__(self) -> None:
        super().__init__()
        self.batches = []

    def batch_changed_connections(self, events) -> None:
        self.batches.append([(connection.key, up) for connection, up in events])
        super().batch_changed_connections(events)


def make_trace(intervals):
    """intervals: list of (start, end, a, b)."""
    from repro.traces.contact_trace import ContactEvent

    events = []
    for start, end, a, b in intervals:
        events.append(ContactEvent(start, a, b, True))
        events.append(ContactEvent(end, a, b, False))
    return ContactTrace(events)


def test_batched_events_downs_first_then_ups_pair_sorted():
    # at t=10 three links come up; at t=20 two go down while one comes up
    trace = make_trace([
        (10.0, 20.0, 0, 1),
        (10.0, 20.0, 1, 2),
        (10.0, 50.0, 0, 3),
        (20.0, 50.0, 1, 4),
    ])
    simulator, world = build_trace_world(trace, protocol="epidemic",
                                         num_nodes=5)
    routers = {}
    for node_id in range(5):
        node = world.get_node(node_id)
        router = RecordingRouter()
        node.router = None
        router.attach(node, world)
        routers[node_id] = router
    simulator.run(until=30.0)

    # node 1 saw (0,1) and (1,2) come up in one batch, pair-sorted
    assert [((0, 1), True), ((1, 2), True)] in routers[1].batches
    # at t=20 node 1's batch carries both downs before the new up
    assert [((0, 1), False), ((1, 2), False), ((1, 4), True)] \
        in routers[1].batches
    # every router's live connection table matches the trace at t=30
    assert set(world._connections) == {(0, 3), (1, 4)}


def test_ascending_dispatch_preserves_exchange_invariant():
    """EER's MI exchange relies on the smaller endpoint being notified first."""
    from repro.core.eer import EERRouter

    trace = make_trace([(10.0, 100.0, 0, 1), (10.0, 100.0, 0, 2),
                        (10.0, 100.0, 1, 2)])
    simulator, world = build_trace_world(trace, protocol="eer", num_nodes=3)
    simulator.run(until=15.0)
    for node_id in range(3):
        router = world.get_node(node_id).router
        assert isinstance(router, EERRouter)
        # every endpoint recorded its simultaneous contacts exactly once
        peers = sorted(router.history.peers())
        assert peers == sorted(set(range(3)) - {node_id})
        for peer in peers:
            assert router.history.contact_count(peer) == 1
    # exchanges ran: the initiators merged rows from their smaller peers
    assert world.stats.control_exchanges >= 1


def test_single_event_paths_still_work():
    """_link_up/_link_down single-event wrappers keep the legacy behaviour."""
    trace = make_trace([(5.0, 8.0, 0, 1)])
    simulator, world = build_trace_world(trace, protocol="epidemic",
                                         num_nodes=2)
    simulator.run(until=6.0)
    assert world.connection_between(0, 1) is not None
    world._link_down((0, 1), 6.5)
    assert world.connection_between(0, 1) is None
    world._link_up((0, 1), 7.0)
    assert world.connection_between(0, 1) is not None
