"""Unit tests for the runner, seed averaging and parameter sweeps."""

import pytest

from repro.experiments.runner import run_averaged, run_scenario
from repro.experiments.scenario import ScenarioConfig
from repro.experiments.sweep import sweep
from repro.metrics.reports import SimulationReport


def tiny_config(**overrides):
    base = ScenarioConfig.bench_scale(protocol="spray-and-wait", num_nodes=10,
                                      sim_time=250.0)
    return base.with_overrides(**overrides) if overrides else base


def test_run_scenario_returns_report():
    report = run_scenario(tiny_config())
    assert isinstance(report, SimulationReport)
    assert report.protocol == "spray-and-wait"
    assert report.num_nodes == 10
    assert report.created > 0
    assert 0.0 <= report.delivery_ratio <= 1.0
    assert report.extra["copies"] == 10.0


def test_run_averaged_collects_one_report_per_seed():
    result = run_averaged(tiny_config(), seeds=[1, 2, 3])
    assert len(result.reports) == 3
    assert result.seeds == [1, 2, 3]
    assert {r.seed for r in result.reports} == {1, 2, 3}
    mean = result.mean("delivery_ratio")
    assert 0.0 <= mean <= 1.0
    assert result.std("delivery_ratio") >= 0.0
    summary = result.as_dict()
    assert summary["protocol"] == "spray-and-wait"
    assert summary["num_nodes"] == 10


def test_run_averaged_requires_seeds():
    with pytest.raises(ValueError):
        run_averaged(tiny_config(), seeds=[])


def test_sweep_covers_grid_and_routes_router_params():
    points = sweep(tiny_config(protocol="eer"),
                   grid={"num_nodes": [8, 12], "router.alpha": [0.1, 0.5]},
                   seeds=[1])
    assert len(points) == 4
    overrides = [p.overrides for p in points]
    assert {"num_nodes": 8, "router.alpha": 0.1} in overrides
    assert {"num_nodes": 12, "router.alpha": 0.5} in overrides
    for point in points:
        assert point.result.num_nodes == point.overrides["num_nodes"]
        assert 0.0 <= point.value("delivery_ratio") <= 1.0


def test_sweep_rejects_empty_grid():
    with pytest.raises(ValueError):
        sweep(tiny_config(), grid={}, seeds=[1])
