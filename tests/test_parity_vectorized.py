"""Property-based parity: vectorized hot path vs reference implementations.

The vectorized contact store, the batch estimator kernels and the cached MEMD
solver are required to agree *exactly* (bit for bit) with the pure-Python
reference implementations kept in-tree — that contract is what lets the
benchmark harness prove "same decisions, just faster" and what lets the
``BATCH_MIN_PEERS`` size dispatch pick either path freely.  These tests pin
it across randomized contact sequences.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.core.expectation as expectation
from repro.contacts.history import ContactHistory, ContactHistoryReference
from repro.contacts.md_matrix import build_delay_matrix
from repro.contacts.memd import (
    MemdCache,
    dijkstra_delays,
    dijkstra_delays_reference,
)
from repro.contacts.mi_matrix import MeetingIntervalMatrix
from repro.core.expectation import (
    OverduePolicy,
    community_encounter_probability,
    expected_encounter_value,
)

policy_strategy = st.sampled_from(list(OverduePolicy))


@st.composite
def contact_sequence(draw):
    """A randomized multi-peer contact sequence (peer, time) in time order."""
    num_peers = draw(st.integers(1, 8))
    events = draw(st.lists(
        st.tuples(st.integers(1, num_peers),
                  st.floats(min_value=0.0, max_value=5000.0,
                            allow_nan=False, allow_infinity=False)),
        min_size=1, max_size=60))
    events.sort(key=lambda item: item[1])
    window = draw(st.integers(1, 12))
    return window, events


def build_pair(window, events):
    fast = ContactHistory(owner_id=0, window_size=window)
    ref = ContactHistoryReference(owner_id=0, window_size=window)
    for peer, when in events:
        a = fast.record_contact(peer, when)
        b = ref.record_contact(peer, when)
        assert a == b
    return fast, ref


# ----------------------------------------------------------------- history
@given(contact_sequence())
@settings(max_examples=80)
def test_history_state_parity(sequence):
    window, events = sequence
    fast, ref = build_pair(window, events)
    assert fast.peers() == ref.peers()
    assert fast.total_intervals() == ref.total_intervals()
    assert fast.snapshot() == ref.snapshot()
    assert fast.version == ref.version
    for peer in ref.peers():
        assert fast.has_met(peer)
        assert fast.contact_count(peer) == ref.contact_count(peer)
        assert fast.intervals(peer) == ref.intervals(peer)
        assert fast.last_contact(peer) == ref.last_contact(peer)
        assert fast.elapsed_since(peer, 6000.0) == ref.elapsed_since(peer, 6000.0)
        # the MI-row mean must be bit-identical: sequential sums in both
        assert fast.mean_interval(peer) == ref.mean_interval(peer)


def test_history_grows_past_initial_capacity():
    fast = ContactHistory(owner_id=0, window_size=4)
    ref = ContactHistoryReference(owner_id=0, window_size=4)
    for step in range(300):
        peer = 1 + (step % 50)
        when = float(step)
        assert fast.record_contact(peer, when) == ref.record_contact(peer, when)
    assert fast.peers() == ref.peers()
    for peer in ref.peers():
        assert fast.intervals(peer) == ref.intervals(peer)


def test_history_validation_parity():
    for cls in (ContactHistory, ContactHistoryReference):
        history = cls(owner_id=3)
        with pytest.raises(ValueError):
            history.record_contact(3, 1.0)  # self-contact
        with pytest.raises(ValueError):
            history.record_contact(1, -1.0)  # negative time
        history.record_contact(1, 10.0)
        with pytest.raises(ValueError):
            history.record_contact(1, 5.0)  # time going backwards
        with pytest.raises(ValueError):
            cls(owner_id=0, window_size=0)


# ---------------------------------------------------------------- estimators
@given(contact_sequence(),
       st.floats(min_value=0.0, max_value=2000.0),
       st.floats(min_value=0.0, max_value=3000.0),
       policy_strategy)
@settings(max_examples=80)
def test_eev_batch_vs_reference_bit_exact(sequence, extra, horizon, policy,
                                          ):
    window, events = sequence
    fast, ref = build_pair(window, events)
    now = events[-1][1] + extra
    original = expectation.BATCH_MIN_PEERS
    try:
        expectation.BATCH_MIN_PEERS = 0  # force the batch kernel
        batch_value = expected_encounter_value(fast, now, horizon, policy)
    finally:
        expectation.BATCH_MIN_PEERS = original
    loop_value = expected_encounter_value(ref, now, horizon, policy)
    assert batch_value == loop_value


@given(contact_sequence(),
       st.floats(min_value=0.0, max_value=2000.0),
       st.floats(min_value=0.0, max_value=3000.0),
       policy_strategy)
@settings(max_examples=60)
def test_community_probability_batch_vs_reference_bit_exact(sequence, extra,
                                                            horizon, policy):
    window, events = sequence
    fast, ref = build_pair(window, events)
    now = events[-1][1] + extra
    members = [2, 4, 5, 9]  # mix of met, unmet and absent peers
    original = expectation.BATCH_MIN_PEERS
    try:
        expectation.BATCH_MIN_PEERS = 0
        batch_value = community_encounter_probability(fast, now, horizon,
                                                      members, policy)
    finally:
        expectation.BATCH_MIN_PEERS = original
    loop_value = community_encounter_probability(ref, now, horizon, members,
                                                 policy)
    assert batch_value == loop_value


@given(contact_sequence(),
       st.floats(min_value=0.0, max_value=2000.0),
       policy_strategy)
@settings(max_examples=60)
def test_md_own_row_batch_vs_reference_bit_exact(sequence, extra, policy):
    window, events = sequence
    fast, ref = build_pair(window, events)
    now = events[-1][1] + extra
    n = 10
    mi = MeetingIntervalMatrix(n, 0)
    original = expectation.BATCH_MIN_PEERS
    try:
        expectation.BATCH_MIN_PEERS = 0  # force the batch own-row branch
        md_fast = build_delay_matrix(fast, mi, now, policy)
    finally:
        expectation.BATCH_MIN_PEERS = original
    md_ref = build_delay_matrix(ref, mi, now, policy)
    assert np.array_equal(md_fast, md_ref)


@pytest.mark.parametrize("policy", list(OverduePolicy))
def test_md_own_row_parity_above_dispatch_threshold(policy):
    """A history big enough to take the batch branch without forcing it."""
    num_peers = 3 * expectation.BATCH_MIN_PEERS
    fast = ContactHistory(owner_id=0, window_size=6)
    ref = ContactHistoryReference(owner_id=0, window_size=6)
    rng = np.random.default_rng(11)
    clock = 0.0
    for _ in range(num_peers * 5):
        peer = int(rng.integers(1, num_peers + 1))
        clock += float(rng.integers(1, 40))
        fast.record_contact(peer, clock)
        ref.record_contact(peer, clock)
    # peers beyond n must be ignored by both paths
    n = num_peers // 2
    mi = MeetingIntervalMatrix(n, 0)
    md_fast = build_delay_matrix(fast, mi, clock + 17.0, policy)
    md_ref = build_delay_matrix(ref, mi, clock + 17.0, policy)
    assert np.array_equal(md_fast, md_ref)


# ---------------------------------------------------------------- MEMD cache
@given(contact_sequence(), st.floats(min_value=0.0, max_value=2000.0))
@settings(max_examples=40)
def test_cached_memd_matches_heap_reference(sequence, extra):
    """Cached delay vectors agree with a fresh heap Dijkstra at every state."""
    window, events = sequence
    fast, _ = build_pair(window, events)
    now = events[-1][1] + extra
    n = 10
    rng = np.random.default_rng(7)
    values = rng.integers(60, 900, size=(n, n)).astype(float)
    values[rng.random((n, n)) < 0.4] = np.inf
    mi = MeetingIntervalMatrix(n, 0)
    mi.load_state(values, np.zeros(n))
    cache = MemdCache(refresh=5.0)
    delays = cache.delays(fast, mi, now)
    md = build_delay_matrix(fast, mi, now)
    assert np.array_equal(delays, dijkstra_delays_reference(md, 0))
    # a served-from-cache query returns the same vector object
    assert cache.delays(fast, mi, now) is delays
    assert cache.hits >= 1
    # recording a contact invalidates; the recomputed vector still matches
    fast.record_contact(1, now + 1.0)
    fresh = cache.delays(fast, mi, now + 1.0)
    md2 = build_delay_matrix(fast, mi, now + 1.0)
    assert np.array_equal(fresh, dijkstra_delays_reference(md2, 0))


@given(st.integers(0, 6), st.integers(2, 30))
@settings(max_examples=40)
def test_dense_dijkstra_matches_heap_reference(seed, n):
    rng = np.random.default_rng(seed)
    md = rng.integers(1, 500, size=(n, n)).astype(float)
    md[rng.random((n, n)) < 0.45] = np.inf
    np.fill_diagonal(md, 0.0)
    source = int(rng.integers(0, n))
    assert np.array_equal(dijkstra_delays(md, source),
                          dijkstra_delays_reference(md, source))
    assert np.array_equal(dijkstra_delays(md, source, validate=False),
                          dijkstra_delays_reference(md, source))


def test_mi_version_bumps_only_on_effective_change():
    mi = MeetingIntervalMatrix(4, 0)
    v0 = mi.version
    mi.update_own_row({1: 100.0}, now=10.0)
    assert mi.version == v0 + 1
    # same value, fresher timestamp: no version bump
    mi.update_own_row({1: 100.0}, now=20.0)
    assert mi.version == v0 + 1
    other = MeetingIntervalMatrix(4, 1)
    other.update_own_row({2: 50.0}, now=30.0)
    merged = mi.merge_from(other)
    assert merged == 1
    v1 = mi.version
    # merging identical rows again copies nothing and keeps the version
    assert mi.merge_from(other) == 0
    assert mi.version == v1
