"""Unit tests for the message event generator."""

import pytest

from repro.net.generators import MessageEventGenerator, TrafficSpec
from repro.traces.contact_trace import ContactTrace
from repro.traces.replay import build_trace_world


def make_world(num_nodes=4, seed=3):
    simulator, world = build_trace_world(ContactTrace([]), protocol="direct",
                                         seed=seed, num_nodes=num_nodes)
    return simulator, world


def test_traffic_spec_validation():
    with pytest.raises(ValueError):
        TrafficSpec(interval=(0.0, 10.0))
    with pytest.raises(ValueError):
        TrafficSpec(interval=(10.0, 5.0))
    with pytest.raises(ValueError):
        TrafficSpec(size=0)
    with pytest.raises(ValueError):
        TrafficSpec(ttl=0)
    with pytest.raises(ValueError):
        TrafficSpec(copies=0)


def test_generates_messages_at_configured_rate():
    simulator, world = make_world()
    spec = TrafficSpec(interval=(10.0, 10.0), size=500, ttl=300.0, copies=3)
    generator = MessageEventGenerator(simulator, world, spec)
    simulator.run(until=100.0)
    # first creation at t=10, then every 10 s up to t=100
    assert generator.messages_created == 10
    assert world.stats.created == 10


def test_messages_have_distinct_endpoints_and_requested_attributes():
    simulator, world = make_world()
    spec = TrafficSpec(interval=(5.0, 15.0), size=777, ttl=120.0, copies=6, prefix="T")
    MessageEventGenerator(simulator, world, spec)
    simulator.run(until=200.0)
    records = world.stats.created_records
    assert records
    for record in records:
        assert record.source != record.destination
        assert record.size == 777
        assert record.copies == 6
        assert record.message_id.startswith("T")


def test_generation_window_respected():
    simulator, world = make_world()
    spec = TrafficSpec(interval=(10.0, 10.0), start=50.0, end=100.0)
    MessageEventGenerator(simulator, world, spec)
    simulator.run(until=300.0)
    times = [record.time for record in world.stats.created_records]
    assert times
    assert min(times) >= 50.0
    assert max(times) <= 100.0


def test_restricted_source_and_destination_pools():
    simulator, world = make_world(num_nodes=6)
    spec = TrafficSpec(interval=(10.0, 10.0), sources=[0, 1], destinations=[4, 5])
    MessageEventGenerator(simulator, world, spec)
    simulator.run(until=100.0)
    for record in world.stats.created_records:
        assert record.source in (0, 1)
        assert record.destination in (4, 5)


def test_same_seed_reproduces_traffic():
    def run(seed):
        simulator, world = make_world(seed=seed)
        MessageEventGenerator(simulator, world, TrafficSpec(interval=(5.0, 20.0)))
        simulator.run(until=150.0)
        return [(r.time, r.source, r.destination) for r in world.stats.created_records]

    assert run(7) == run(7)
    assert run(7) != run(8)


# ------------------------------------------------------------ arrival models
def test_traffic_model_validation():
    with pytest.raises(ValueError):
        TrafficSpec(model="fractal")
    with pytest.raises(ValueError):
        TrafficSpec(model="poisson")  # needs a rate
    with pytest.raises(ValueError):
        TrafficSpec(model="bursty", rate=0.0)
    with pytest.raises(ValueError):
        TrafficSpec(model="bursty", rate=1.0, burst_size=0)
    with pytest.raises(ValueError):
        TrafficSpec(model="bursty", rate=1.0, burst_spacing=-1.0)
    # uniform ignores the burst knobs but must have no rate
    assert TrafficSpec().model == "uniform"


def test_poisson_arrivals_mean_rate_and_determinism():
    def run(seed):
        simulator, world = make_world(seed=seed)
        MessageEventGenerator(simulator, world,
                              TrafficSpec(model="poisson", rate=0.5))
        simulator.run(until=2_000.0)
        return [r.time for r in world.stats.created_records]

    times = run(7)
    assert times == run(7)
    assert times != run(8)
    # ~1000 arrivals expected at rate 0.5 over 2000 s; 20% tolerance is
    # far beyond Poisson noise at n=1000
    assert 800 <= len(times) <= 1200
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert min(gaps) > 0  # strictly increasing, no batching


def test_bursty_arrivals_cluster_in_bursts():
    simulator, world = make_world()
    spec = TrafficSpec(model="bursty", rate=1.0, burst_size=5,
                       burst_spacing=0.1)
    MessageEventGenerator(simulator, world, spec)
    simulator.run(until=500.0)
    times = [r.time for r in world.stats.created_records]
    assert len(times) > 50
    gaps = [round(b - a, 9) for a, b in zip(times, times[1:])]
    intra = [g for g in gaps if g == 0.1]
    # bursts of 5 mean ~4/5 of the gaps are the fixed intra-burst spacing
    assert len(intra) >= len(gaps) // 2
    # and the burst gaps keep the long-run rate near the requested one
    assert 0.5 <= len(times) / 500.0 <= 1.5


def test_bursty_zero_spacing_emits_same_tick_bursts():
    simulator, world = make_world()
    spec = TrafficSpec(model="bursty", rate=2.0, burst_size=3)
    MessageEventGenerator(simulator, world, spec)
    simulator.run(until=100.0)
    times = [r.time for r in world.stats.created_records]
    # every burst lands its 3 messages on the same timestamp
    from collections import Counter
    sizes = Counter(times).values()
    assert max(sizes) == 3


def test_builder_wires_traffic_model_through_config():
    from repro.experiments.builder import build_scenario
    from repro.experiments.scenario import ScenarioConfig

    config = ScenarioConfig.bench_scale(
        protocol="epidemic", num_nodes=10, sim_time=60.0,
        mobility="random_waypoint", name="traffic-wire",
        traffic_model="poisson", traffic_rate=3.0,
        traffic_burst_size=4, traffic_burst_spacing=0.5)
    built = build_scenario(config)
    try:
        spec = built.traffic.spec
        assert spec.model == "poisson"
        assert spec.rate == 3.0
        assert spec.burst_size == 4
        assert spec.burst_spacing == 0.5
    finally:
        built.world.stop()


def test_catalog_traffic_scenario_saturates_links():
    from repro.experiments.catalog import make_scenario
    from repro.experiments.runner import run_scenario

    config = make_scenario("rwp-10k-traffic",
                           overrides=dict(num_nodes=400, sim_time=60.0,
                                          map_width=1200.0, map_height=900.0))
    assert config.traffic_model == "poisson"
    assert config.traffic_rate == 2.0
    assert config.transfer_engine
    # 1 MiB payloads over a 62.5 kB/s radio: any completed transfer took
    # ~17 consecutive ticks of link time, i.e. links really saturate
    assert config.message_size / config.transmit_speed > 10.0
    report = run_scenario(config)
    assert report.transfers_completed > 0
    assert report.bytes_delivered \
        == report.transfers_completed * config.message_size
