"""Unit tests for the message event generator."""

import pytest

from repro.net.generators import MessageEventGenerator, TrafficSpec
from repro.traces.contact_trace import ContactTrace
from repro.traces.replay import build_trace_world


def make_world(num_nodes=4, seed=3):
    simulator, world = build_trace_world(ContactTrace([]), protocol="direct",
                                         seed=seed, num_nodes=num_nodes)
    return simulator, world


def test_traffic_spec_validation():
    with pytest.raises(ValueError):
        TrafficSpec(interval=(0.0, 10.0))
    with pytest.raises(ValueError):
        TrafficSpec(interval=(10.0, 5.0))
    with pytest.raises(ValueError):
        TrafficSpec(size=0)
    with pytest.raises(ValueError):
        TrafficSpec(ttl=0)
    with pytest.raises(ValueError):
        TrafficSpec(copies=0)


def test_generates_messages_at_configured_rate():
    simulator, world = make_world()
    spec = TrafficSpec(interval=(10.0, 10.0), size=500, ttl=300.0, copies=3)
    generator = MessageEventGenerator(simulator, world, spec)
    simulator.run(until=100.0)
    # first creation at t=10, then every 10 s up to t=100
    assert generator.messages_created == 10
    assert world.stats.created == 10


def test_messages_have_distinct_endpoints_and_requested_attributes():
    simulator, world = make_world()
    spec = TrafficSpec(interval=(5.0, 15.0), size=777, ttl=120.0, copies=6, prefix="T")
    MessageEventGenerator(simulator, world, spec)
    simulator.run(until=200.0)
    records = world.stats.created_records
    assert records
    for record in records:
        assert record.source != record.destination
        assert record.size == 777
        assert record.copies == 6
        assert record.message_id.startswith("T")


def test_generation_window_respected():
    simulator, world = make_world()
    spec = TrafficSpec(interval=(10.0, 10.0), start=50.0, end=100.0)
    MessageEventGenerator(simulator, world, spec)
    simulator.run(until=300.0)
    times = [record.time for record in world.stats.created_records]
    assert times
    assert min(times) >= 50.0
    assert max(times) <= 100.0


def test_restricted_source_and_destination_pools():
    simulator, world = make_world(num_nodes=6)
    spec = TrafficSpec(interval=(10.0, 10.0), sources=[0, 1], destinations=[4, 5])
    MessageEventGenerator(simulator, world, spec)
    simulator.run(until=100.0)
    for record in world.stats.created_records:
        assert record.source in (0, 1)
        assert record.destination in (4, 5)


def test_same_seed_reproduces_traffic():
    def run(seed):
        simulator, world = make_world(seed=seed)
        MessageEventGenerator(simulator, world, TrafficSpec(interval=(5.0, 20.0)))
        simulator.run(until=150.0)
        return [(r.time, r.source, r.destination) for r in world.stats.created_records]

    assert run(7) == run(7)
    assert run(7) != run(8)
