"""TickPipeline: phase structure, metering, and report plumbing."""

import json

import pytest

from repro.experiments.builder import build_scenario
from repro.experiments.catalog import make_scenario
from repro.experiments.runner import run_scenario
from repro.metrics.collector import StatsCollector
from repro.metrics.reports import build_report
from repro.world.pipeline import TickPhase, TickPipeline


# ------------------------------------------------------------------ structure
def test_phase_validation():
    with pytest.raises(ValueError):
        TickPhase("", lambda now, dt: None)
    with pytest.raises(ValueError):
        TickPhase("move", "not-callable")


def test_pipeline_validation():
    with pytest.raises(ValueError):
        TickPipeline([])
    noop = lambda now, dt: None  # noqa: E731
    with pytest.raises(ValueError):
        TickPipeline([TickPhase("a", noop), TickPhase("a", noop)])


def test_pipeline_runs_phases_in_order_and_meters():
    calls = []
    stats = StatsCollector()
    pipeline = TickPipeline([
        TickPhase("first", lambda now, dt: calls.append(("first", now, dt))),
        TickPhase("second", lambda now, dt: calls.append(("second", now, dt))),
    ], stats=stats)
    pipeline.run(3.0, 1.0)
    pipeline.run(4.0, 1.0)
    assert calls == [("first", 3.0, 1.0), ("second", 3.0, 1.0),
                     ("first", 4.0, 1.0), ("second", 4.0, 1.0)]
    assert pipeline.runs == 2
    assert pipeline.phase_names == ["first", "second"]
    assert stats.tick_phase_samples == {"first": 2, "second": 2}
    assert all(seconds >= 0.0 for seconds in stats.tick_phase_seconds.values())


def test_pipeline_without_stats_runs_unmetered():
    pipeline = TickPipeline([TickPhase("only", lambda now, dt: None)])
    pipeline.run(0.0, 1.0)
    assert pipeline.runs == 1


def test_replace_phase_swaps_in_place():
    seen = []
    pipeline = TickPipeline([
        TickPhase("a", lambda now, dt: seen.append("a")),
        TickPhase("b", lambda now, dt: seen.append("b")),
    ])
    pipeline.replace_phase("a", lambda now, dt: seen.append("A'"))
    pipeline.run(0.0, 1.0)
    assert seen == ["A'", "b"]
    assert pipeline.phase_names == ["a", "b"]
    with pytest.raises(KeyError):
        pipeline.replace_phase("missing", lambda now, dt: None)


# ------------------------------------------------------------------ the world
def test_world_tick_is_the_four_phase_pipeline():
    built = build_scenario(make_scenario("bench", {"sim_time": 50.0}))
    world = built.world
    assert world.pipeline.phase_names == [
        "move", "connectivity", "transfers", "routers"]
    built.run()
    assert world.pipeline.runs == world.updates
    phases = built.stats.tick_phase_seconds
    for name in ("move", "connectivity", "connectivity.detect",
                 "transfers", "routers"):
        assert name in phases, f"phase {name} not metered"
        assert phases[name] >= 0.0
    # the detect sub-meter is a subset of its surrounding phase
    assert phases["connectivity.detect"] <= phases["connectivity"]
    assert built.stats.tick_phase_samples["move"] == world.updates


def test_trace_replay_world_is_metered_too():
    built = build_scenario(make_scenario("trace-periodic",
                                         {"sim_time": 120.0}))
    built.run()
    phases = built.stats.tick_phase_seconds
    assert set(phases) >= {"move", "connectivity", "transfers", "routers"}


# -------------------------------------------------------------------- reports
def test_report_carries_phase_timings_out_of_band():
    report = run_scenario(make_scenario("bench", {"sim_time": 50.0}))
    assert set(report.tick_phase_seconds) >= {
        "move", "connectivity", "transfers", "routers"}
    # wall-clock timings stay out of the canonical serialisation so reports
    # compare byte-for-byte across machines and phase implementations...
    assert "tick_phase_seconds" not in report.as_dict()
    # ...but are available on request
    timed = report.as_dict(include_timings=True)
    assert timed["tick_phase_seconds"] == report.tick_phase_seconds
    json.dumps(timed)


def test_build_report_snapshots_collector_phases():
    stats = StatsCollector()
    stats.tick_phase("move", 0.5)
    stats.tick_phase("move", 0.25)
    report = build_report(stats, protocol="direct", num_nodes=2,
                          sim_time=10.0, seed=1)
    assert report.tick_phase_seconds == {"move": 0.75}
    assert stats.tick_phase_samples == {"move": 2}
