"""CR community modes: registry wiring, detected-mode behaviour, and the
bit-identity regression pin for oracle mode.

The pinned numbers were captured from the pre-provider implementation (PR3,
commit 13d3a81) by running the same catalog scenarios; the CommunityProvider
refactor must not change a single oracle-mode routing decision, so every
counter must match exactly.
"""

import pytest

from repro.core.cr import CommunityRouter
from repro.experiments.catalog import make_scenario
from repro.experiments.runner import run_scenario
from repro.routing.registry import available_routers, create_router, router_summary


# ------------------------------------------------------------------- registry
def test_cr_mode_aliases_registered():
    names = available_routers()
    assert "cr-kclique" in names and "cr-newman" in names
    assert router_summary("cr-kclique")
    assert router_summary("cr-newman")


def test_alias_defaults_and_override():
    router = create_router("cr-kclique")
    assert isinstance(router, CommunityRouter)
    assert router.community_mode == "kclique"
    assert router.detection_min_weight == 3.0
    router = create_router("cr-newman", detection_staleness=60.0)
    assert router.community_mode == "newman"
    assert router.detection_staleness == 60.0
    # user parameters win over alias defaults
    router = create_router("cr-kclique", detection_min_weight=1.0)
    assert router.detection_min_weight == 1.0
    # plain cr stays oracle
    assert create_router("cr").community_mode == "oracle"


def test_mode_validation():
    with pytest.raises(ValueError):
        CommunityRouter(community_mode="louvain")
    with pytest.raises(ValueError):
        CommunityRouter(detection_staleness=-1.0)


# ------------------------------------------------------- oracle bit-identity
def test_oracle_mode_bit_identical_to_pre_provider_cr_on_trace_scenario():
    # captured from PR3's CR on the trace-community catalog scenario
    config = make_scenario("trace-community", protocol="cr")
    report = run_scenario(config)
    assert report.created == 121
    assert report.delivered == 118
    assert report.relayed == 3117
    assert report.dropped == 545
    assert report.contacts == 3743
    assert report.control_rows_exchanged == 22999
    assert report.delivery_ratio == pytest.approx(0.9752066115702479, rel=1e-12)
    assert report.average_latency == pytest.approx(76.44470707244332, rel=1e-9)
    assert report.average_hop_count == pytest.approx(2.864406779661017, rel=1e-12)
    # and the oracle mode never runs (or pays for) a detection
    assert report.community_detections == 0
    assert report.community_detection_seconds == 0.0


def test_oracle_mode_bit_identical_on_bus_scenario():
    # captured from PR3's CR on the reduced-scale bus scenario
    report = run_scenario(make_scenario("bench", protocol="cr"))
    assert report.created == 121
    assert report.delivered == 90
    assert report.relayed == 1468
    assert report.dropped == 529
    assert report.contacts == 1391
    assert report.control_rows_exchanged == 6195
    assert report.delivery_ratio == pytest.approx(0.743801652892562, rel=1e-12)
    assert report.average_latency == pytest.approx(565.917178410139, rel=1e-9)


# ---------------------------------------------------------- mixed-mode worlds
def test_detected_node_observes_contacts_with_oracle_peers():
    # node 0 runs detected CR, node 1 oracle CR.  The oracle peer never
    # feeds the tracker, so the detected side must observe the contact even
    # though it is not the exchange initiator — the edge must not be lost.
    from repro.testing import make_contact_plan, make_world

    trace = make_contact_plan([(10.0, 30.0, 0, 1)])
    simulator, world = make_world(trace, protocol="cr-newman", num_nodes=3,
                                  communities={0: 0, 1: 0, 2: 1})
    oracle_router = world.get_node(1).router
    oracle_router.community_mode = "oracle"
    simulator.run(until=50.0)
    tracker = world.get_node(0).router.provider.tracker
    assert tracker.edge_count() == 1
    assert tracker.edge_weights() == {(0, 1): 1.0}


def test_shared_tracker_counts_each_contact_once():
    from repro.testing import make_contact_plan, make_world

    trace = make_contact_plan([(10.0, 30.0, 0, 1), (40.0, 60.0, 0, 1)])
    simulator, world = make_world(trace, protocol="cr-newman", num_nodes=3,
                                  communities={0: 0, 1: 0, 2: 1})
    simulator.run(until=80.0)
    tracker = world.get_node(0).router.provider.tracker
    # both endpoints share one tracker: two contacts -> weight exactly 2
    assert tracker.edge_weights() == {(0, 1): 2.0}


# ------------------------------------------------------------- detected modes
@pytest.mark.parametrize("protocol", ["cr-kclique", "cr-newman"])
def test_detected_modes_run_and_report_overhead(protocol):
    config = make_scenario("community-detect", protocol=protocol,
                           sim_time=800.0)
    report = run_scenario(config)
    assert report.created > 0
    assert report.delivered > 0
    # detection ran, its overhead is visible in the collector summary,
    # and at least the initial singleton -> detected transition moved nodes
    assert report.community_detections >= 2
    assert report.community_detection_seconds > 0.0
    assert report.community_reassignments > 0


def test_detected_mode_matches_oracle_on_strong_communities():
    # on the cleanly separated community-detect bed, online newman detection
    # converges to the planted structure, so delivery stays in the same
    # ballpark as the oracle (no exact equality: early routing happens on
    # pre-convergence singleton assignments)
    oracle = run_scenario(make_scenario("community-detect", protocol="cr",
                                        sim_time=1_200.0))
    detected = run_scenario(make_scenario("community-detect",
                                          protocol="cr-newman",
                                          sim_time=1_200.0))
    assert detected.delivered >= 0.8 * oracle.delivered
    assert oracle.community_detections == 0
    assert detected.community_detections > 0
