"""Trace ingestion tests: parsing, round-trips, validation, remap, clipping."""

import pytest

from repro.experiments.catalog import TRACE_DATA_DIR
from repro.traces.contact_trace import ContactEvent, ContactTrace
from repro.traces.generators import periodic_contact_trace
from repro.traces.io import (
    TraceFormatError,
    clip_trace,
    detect_format,
    load_csv_trace,
    load_one_trace,
    load_trace,
    parse_csv_trace,
    parse_one_trace,
    remap_node_ids,
    save_csv_trace,
    validate_trace,
)


def small_trace() -> ContactTrace:
    return ContactTrace([
        ContactEvent(1.0, 0, 1, True),
        ContactEvent(5.0, 0, 1, False),
        ContactEvent(3.0, 1, 2, True),
        ContactEvent(9.0, 1, 2, False),
    ])


# ------------------------------------------------------------------ round-trips
def generated_trace() -> ContactTrace:
    """A generator trace quantised to the formats' millisecond precision."""
    raw = periodic_contact_trace(num_nodes=6, duration=800.0, seed=3)
    return ContactTrace([
        ContactEvent(round(e.time, 3), e.node_a, e.node_b, e.up) for e in raw])


def test_one_format_round_trip(tmp_path):
    trace = generated_trace()
    path = tmp_path / "trace.txt"
    trace.save(path)
    loaded = load_one_trace(path)
    assert loaded.events == trace.events


def test_csv_round_trip(tmp_path):
    trace = generated_trace()
    path = tmp_path / "trace.csv"
    save_csv_trace(trace, path)
    loaded = load_csv_trace(path)
    assert loaded.events == trace.events


def test_csv_accepts_header_comments_and_numeric_states():
    text = ("# a comment\n"
            "time,node_a,node_b,event\n"
            "1.0, 0, 1, up\n"
            "2.0,0,1,DOWN\n"
            "3.0,1,2,1\n"
            "4.0,1,2,0\n")
    trace = parse_csv_trace(text)
    assert [e.up for e in trace] == [True, False, True, False]


def test_csv_without_header_keeps_first_row():
    trace = parse_csv_trace("0.5,0,1,up\n1.5,0,1,down\n")
    assert len(trace) == 2
    assert trace.events[0].time == 0.5


def test_csv_malformed_first_data_row_is_not_mistaken_for_header():
    # a typo'd time in row 1 must raise, not be silently dropped as a header
    with pytest.raises(TraceFormatError) as exc_info:
        parse_csv_trace("1O.0,0,3,up\n40.5,0,3,down\n", source="x.csv")
    assert "x.csv:1" in str(exc_info.value)


# ---------------------------------------------------------------- malformed input
@pytest.mark.parametrize("line", [
    "12.0 CONN 0 1",                # missing state
    "12.0 LINK 0 1 up",             # wrong tag
    "12.0 CONN 0 1 sideways",       # bad state
    "abc CONN 0 1 up",              # bad time
    "-3.0 CONN 0 1 up",             # negative time
    "12.0 CONN a 1 up",             # non-integer id
    "12.0 CONN 2 2 up",             # self contact
])
def test_one_malformed_lines_raise_with_line_number(line):
    with pytest.raises(TraceFormatError) as exc_info:
        parse_one_trace("0.0 CONN 0 1 up\n" + line + "\n", source="demo")
    assert "demo:2" in str(exc_info.value)


@pytest.mark.parametrize("line", [
    "1.0,0,1",                      # wrong column count
    "1.0,0,1,up,extra",             # wrong column count
    "1.0,0,1,maybe",                # unknown state
    "1.0,x,1,up",                   # non-integer id
    "oops,0,1,up",                  # non-numeric time after header
])
def test_csv_malformed_rows_raise_with_line_number(line):
    text = "time,node_a,node_b,event\n0.0,0,1,up\n" + line + "\n"
    with pytest.raises(TraceFormatError) as exc_info:
        parse_csv_trace(text, source="demo.csv")
    assert "demo.csv:3" in str(exc_info.value)


def test_trace_format_error_is_value_error():
    assert issubclass(TraceFormatError, ValueError)


# ----------------------------------------------------------------- ONE fixture
def test_bundled_one_fixture_parses():
    trace = load_one_trace(TRACE_DATA_DIR / "demo_contacts_one.txt")
    assert trace.node_ids() == list(range(12))
    assert validate_trace(trace) == []
    assert trace.duration() <= 2000.0


def test_bundled_fixtures_are_identical_across_formats():
    one = load_one_trace(TRACE_DATA_DIR / "demo_contacts_one.txt")
    csv = load_csv_trace(TRACE_DATA_DIR / "demo_contacts.csv")
    assert one.events == csv.events


# ------------------------------------------------------------------ validation
def test_validate_reports_duplicate_up_and_orphan_down():
    trace = ContactTrace([
        ContactEvent(1.0, 0, 1, True),
        ContactEvent(2.0, 0, 1, True),    # duplicate up
        ContactEvent(3.0, 2, 3, False),   # down without up
    ])
    issues = validate_trace(trace)
    assert len(issues) == 2
    assert any("up again" in issue for issue in issues)
    assert any("without a matching up" in issue for issue in issues)
    with pytest.raises(TraceFormatError):
        validate_trace(trace, strict=True)


def test_validate_clean_trace_is_empty():
    assert validate_trace(small_trace()) == []


# ---------------------------------------------------------------------- remap
def test_remap_compacts_sparse_ids():
    trace = ContactTrace([
        ContactEvent(1.0, 30, 7, True),
        ContactEvent(2.0, 30, 7, False),
        ContactEvent(3.0, 7, 100, True),
    ])
    remapped, mapping = remap_node_ids(trace)
    assert mapping == {7: 0, 30: 1, 100: 2}
    assert remapped.node_ids() == [0, 1, 2]
    # contact structure is preserved under the mapping
    assert remapped.events[0].pair == (0, 1)
    assert remapped.events[2].pair == (0, 2)


def test_remap_with_explicit_mapping_and_missing_id():
    trace = small_trace()
    remapped, _ = remap_node_ids(trace, {0: 10, 1: 11, 2: 12})
    assert remapped.node_ids() == [10, 11, 12]
    with pytest.raises(TraceFormatError):
        remap_node_ids(trace, {0: 10, 1: 11})


# ------------------------------------------------------------------- clipping
def test_clip_synthesises_boundary_events_and_rebases():
    trace = ContactTrace([
        ContactEvent(0.0, 0, 1, True),     # open before the window
        ContactEvent(12.0, 0, 1, False),   # closes inside
        ContactEvent(14.0, 2, 3, True),    # opens inside, never closes
        ContactEvent(30.0, 4, 5, True),    # entirely after the window
    ])
    clipped = clip_trace(trace, start=10.0, end=20.0)
    assert [(e.time, e.pair, e.up) for e in clipped] == [
        (0.0, (0, 1), True),    # synthetic up at window start, rebased
        (2.0, (0, 1), False),
        (4.0, (2, 3), True),
        (10.0, (2, 3), False),  # synthetic down at window end
    ]


def test_clip_without_rebase_keeps_absolute_times():
    trace = small_trace()
    clipped = clip_trace(trace, start=2.0, end=6.0, rebase=False)
    times = [event.time for event in clipped]
    assert times[0] == 2.0 and times[-1] <= 6.0


def test_clip_window_with_no_events_still_carries_open_contacts():
    trace = ContactTrace([
        ContactEvent(0.0, 0, 1, True),
        ContactEvent(100.0, 0, 1, False),
    ])
    clipped = clip_trace(trace, start=40.0, end=60.0)
    assert [(e.time, e.up) for e in clipped] == [(0.0, True), (20.0, False)]


def test_clip_rejects_bad_windows():
    with pytest.raises(ValueError):
        clip_trace(small_trace(), start=5.0, end=5.0)
    with pytest.raises(ValueError):
        clip_trace(small_trace(), start=-1.0, end=5.0)


# ----------------------------------------------------------------- dispatcher
def test_detect_format(tmp_path):
    one = tmp_path / "a.trace"
    one.write_text("1.0 CONN 0 1 up\n")
    csv = tmp_path / "b.trace"
    csv.write_text("1.0,0,1,up\n")
    named = tmp_path / "c.csv"
    named.write_text("time,node_a,node_b,event\n")
    garbage = tmp_path / "d.trace"
    garbage.write_text("not a trace at all\n")
    assert detect_format(one) == "one"
    assert detect_format(csv) == "csv"
    assert detect_format(named) == "csv"
    with pytest.raises(TraceFormatError):
        detect_format(garbage)


def test_load_trace_auto_with_window_and_remap(tmp_path):
    path = tmp_path / "sparse.csv"
    path.write_text("time,node_a,node_b,event\n"
                    "5.0,10,20,up\n"
                    "15.0,10,20,down\n"
                    "25.0,20,30,up\n"
                    "35.0,20,30,down\n")
    trace = load_trace(path, window=(10.0, 30.0), remap=True)
    assert trace.node_ids() == [0, 1, 2]
    assert trace.duration() == 20.0


def test_load_trace_strict_rejects_invalid(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("1.0,0,1,down\n")
    with pytest.raises(TraceFormatError):
        load_trace(path)
    assert len(load_trace(path, strict=False)) == 1


def test_load_trace_rejects_unknown_format():
    with pytest.raises(ValueError):
        load_trace("whatever.txt", fmt="xml")
