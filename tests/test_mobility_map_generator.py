"""Unit tests for the synthetic downtown map generator."""

import pytest

from repro.mobility.map_generator import (
    assign_districts,
    district_vertices,
    generate_downtown_map,
)


def test_generated_map_is_connected_and_sized():
    roadmap = generate_downtown_map(width=1500, height=900, spacing=300, seed=5)
    cols, rows = 1500 // 300 + 1, 900 // 300 + 1
    assert roadmap.num_vertices == cols * rows
    assert roadmap.is_connected()
    min_x, min_y, max_x, max_y = roadmap.bounds()
    assert max_x >= 1500 - 300 and max_y >= 900 - 300


def test_same_seed_same_map():
    a = generate_downtown_map(width=1200, height=900, spacing=300, seed=9)
    b = generate_downtown_map(width=1200, height=900, spacing=300, seed=9)
    assert a.num_vertices == b.num_vertices
    assert a.num_edges == b.num_edges
    assert (a.all_coordinates() == b.all_coordinates()).all()


def test_different_seed_changes_map():
    a = generate_downtown_map(width=1800, height=1200, spacing=300, seed=1)
    b = generate_downtown_map(width=1800, height=1200, spacing=300, seed=2)
    assert (a.all_coordinates() != b.all_coordinates()).any() or a.num_edges != b.num_edges


def test_validation():
    with pytest.raises(ValueError):
        generate_downtown_map(spacing=0)
    with pytest.raises(ValueError):
        generate_downtown_map(width=100, height=100, spacing=300)


def test_assign_districts_partitions_all_vertices():
    roadmap = generate_downtown_map(width=1500, height=1200, spacing=300, seed=3)
    districts = assign_districts(roadmap, 4)
    assert set(districts) == set(range(roadmap.num_vertices))
    assert set(districts.values()) == {0, 1, 2, 3}
    by_district = district_vertices(districts)
    assert sum(len(v) for v in by_district.values()) == roadmap.num_vertices
    # districts are spatially coherent: each has more than one vertex
    assert all(len(v) >= 2 for v in by_district.values())


def test_assign_districts_single_district():
    roadmap = generate_downtown_map(width=900, height=900, spacing=300, seed=3)
    districts = assign_districts(roadmap, 1)
    assert set(districts.values()) == {0}


def test_assign_districts_validation():
    roadmap = generate_downtown_map(width=900, height=900, spacing=300, seed=3)
    with pytest.raises(ValueError):
        assign_districts(roadmap, 0)
    with pytest.raises(ValueError):
        assign_districts(roadmap, 4, grid=(1, 1))
