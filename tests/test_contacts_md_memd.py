"""Unit tests for the MD matrix builder and the MEMD Dijkstra solver."""

import numpy as np
import pytest

from repro.contacts.history import ContactHistory
from repro.contacts.md_matrix import build_delay_matrix
from repro.contacts.memd import (
    dijkstra_delays,
    dijkstra_delays_reference,
    minimum_expected_meeting_delay,
)
from repro.contacts.mi_matrix import MeetingIntervalMatrix
from repro.core.expectation import OverduePolicy


# --------------------------------------------------------------------- Dijkstra
def test_dijkstra_simple_chain():
    md = np.full((3, 3), np.inf)
    np.fill_diagonal(md, 0.0)
    md[0, 1] = 10.0
    md[1, 2] = 5.0
    delays = dijkstra_delays(md, source=0)
    assert delays[0] == 0.0
    assert delays[1] == 10.0
    assert delays[2] == 15.0


def test_dijkstra_prefers_cheaper_multi_hop_path():
    md = np.array([
        [0.0, 100.0, 10.0],
        [100.0, 0.0, 10.0],
        [10.0, 10.0, 0.0],
    ])
    delays = dijkstra_delays(md, source=0)
    assert delays[1] == 20.0  # via node 2, not the direct 100


def test_dijkstra_unreachable_is_inf():
    md = np.full((4, 4), np.inf)
    np.fill_diagonal(md, 0.0)
    md[0, 1] = 1.0
    delays = dijkstra_delays(md, source=0)
    assert delays[2] == np.inf and delays[3] == np.inf


def test_dijkstra_is_directed():
    md = np.full((2, 2), np.inf)
    np.fill_diagonal(md, 0.0)
    md[0, 1] = 7.0  # only 0 -> 1 known
    assert dijkstra_delays(md, 0)[1] == 7.0
    assert dijkstra_delays(md, 1)[0] == np.inf


def test_dijkstra_matches_reference_on_random_matrices():
    rng = np.random.default_rng(5)
    for _ in range(20):
        n = int(rng.integers(2, 25))
        md = rng.uniform(1.0, 500.0, size=(n, n))
        mask = rng.random((n, n)) < 0.4
        md[mask] = np.inf
        np.fill_diagonal(md, 0.0)
        source = int(rng.integers(0, n))
        fast = dijkstra_delays(md, source)
        reference = dijkstra_delays_reference(md, source)
        assert np.allclose(fast, reference, equal_nan=False)


def test_dijkstra_validation():
    with pytest.raises(ValueError):
        dijkstra_delays(np.zeros((2, 3)), 0)
    with pytest.raises(IndexError):
        dijkstra_delays(np.zeros((2, 2)), 5)
    bad = np.zeros((2, 2))
    bad[0, 1] = -1.0
    with pytest.raises(ValueError):
        dijkstra_delays(bad, 0)


def test_memd_helper():
    md = np.full((3, 3), np.inf)
    np.fill_diagonal(md, 0.0)
    md[0, 1] = 4.0
    assert minimum_expected_meeting_delay(md, 0, 0) == 0.0
    assert minimum_expected_meeting_delay(md, 0, 1) == 4.0
    assert minimum_expected_meeting_delay(md, 0, 2) == np.inf


# ------------------------------------------------------------------- MD builder
def build_history_and_mi():
    history = ContactHistory(owner_id=0)
    # node 0 meets node 1 every 100 s, last at t=1000
    for t in (800.0, 900.0, 1000.0):
        history.record_contact(1, t)
    mi = MeetingIntervalMatrix(3, owner_id=0)
    mi.update_own_row({1: 100.0}, now=1000.0)
    # learned from node 1: node 1 meets node 2 every 50 s on average
    mi._values[1, 2] = 50.0
    mi._values[1, 0] = 100.0
    mi._row_updated[1] = 900.0
    return history, mi


def test_build_delay_matrix_uses_theorem2_for_own_row():
    history, mi = build_history_and_mi()
    # at t=1050, elapsed=50; conditioned window {100, 100} -> EMD = 100 - 50 = 50
    md = build_delay_matrix(history, mi, now=1050.0)
    assert md[0, 1] == pytest.approx(50.0)
    # other rows copied from the MI
    assert md[1, 2] == 50.0
    assert np.isinf(md[0, 2])
    assert (np.diag(md) == 0).all()
    # multi-hop MEMD 0 -> 2 goes through node 1
    assert minimum_expected_meeting_delay(md, 0, 2) == pytest.approx(100.0)


def test_build_delay_matrix_node_filter_restricts_graph():
    history, mi = build_history_and_mi()
    mask = np.array([True, False, True])
    md = build_delay_matrix(history, mi, now=1050.0, node_filter=mask)
    assert np.isinf(md[0, 1]) and np.isinf(md[1, 2])
    assert minimum_expected_meeting_delay(md, 0, 2) == np.inf


def test_build_delay_matrix_owner_mismatch_raises():
    history = ContactHistory(owner_id=1)
    mi = MeetingIntervalMatrix(3, owner_id=0)
    with pytest.raises(ValueError):
        build_delay_matrix(history, mi, now=0.0)


def test_build_delay_matrix_bad_filter_shape():
    history, mi = build_history_and_mi()
    with pytest.raises(ValueError):
        build_delay_matrix(history, mi, now=0.0, node_filter=np.array([True]))


def test_build_delay_matrix_pessimistic_overdue_leaves_unknown():
    history, mi = build_history_and_mi()
    # elapsed (500) exceeds every recorded interval (100)
    md = build_delay_matrix(history, mi, now=1500.0,
                            overdue_policy=OverduePolicy.PESSIMISTIC)
    assert np.isinf(md[0, 1])
    md_refresh = build_delay_matrix(history, mi, now=1500.0,
                                    overdue_policy=OverduePolicy.REFRESH)
    assert md_refresh[0, 1] == pytest.approx(100.0)
