"""Unit tests for the named random streams."""

from repro.sim.rng import RandomStreams


def test_same_seed_same_streams():
    a = RandomStreams(7)
    b = RandomStreams(7)
    assert [a.python("x").random() for _ in range(5)] == \
           [b.python("x").random() for _ in range(5)]
    assert a.numpy("y").integers(0, 1000, 10).tolist() == \
           b.numpy("y").integers(0, 1000, 10).tolist()


def test_different_names_are_independent():
    streams = RandomStreams(7)
    xs = [streams.python("mobility").random() for _ in range(5)]
    ys = [streams.python("traffic").random() for _ in range(5)]
    assert xs != ys


def test_different_seeds_differ():
    a = RandomStreams(1)
    b = RandomStreams(2)
    assert [a.python("x").random() for _ in range(5)] != \
           [b.python("x").random() for _ in range(5)]


def test_request_order_does_not_matter():
    a = RandomStreams(3)
    b = RandomStreams(3)
    # request streams in different orders
    a_traffic_first = a.python("traffic").random()
    a_mobility = a.python("mobility").random()
    b_mobility = b.python("mobility").random()
    b_traffic_first = b.python("traffic").random()
    assert a_mobility == b_mobility
    assert a_traffic_first == b_traffic_first


def test_stream_instances_are_cached():
    streams = RandomStreams(0)
    assert streams.python("a") is streams.python("a")
    assert streams.numpy("a") is streams.numpy("a")


def test_spawn_creates_deterministic_children():
    parent_a = RandomStreams(11)
    parent_b = RandomStreams(11)
    child_a = parent_a.spawn("node-3")
    child_b = parent_b.spawn("node-3")
    assert child_a.python("m").random() == child_b.python("m").random()
    other_child = parent_a.spawn("node-4")
    assert child_a.seed != other_child.seed
