"""Unit tests for the Community based Routing protocol (Algorithms 2-4)."""

import pytest

from repro.testing import inject_message, make_contact_plan, make_world
from repro.core.cr import CommunityRouter

#: two communities: {0, 1, 2} and {3, 4, 5}
COMMUNITIES = {0: 0, 1: 0, 2: 0, 3: 1, 4: 1, 5: 1}


def cr_world(trace, **kwargs):
    return make_world(trace, protocol="cr", num_nodes=6, communities=COMMUNITIES,
                      **kwargs)


def test_parameter_validation():
    with pytest.raises(ValueError):
        CommunityRouter(alpha=2.0)
    with pytest.raises(ValueError):
        CommunityRouter(memd_refresh=-1.0)
    with pytest.raises(ValueError):
        CommunityRouter(forward_margin=-0.1)


def test_router_requires_communities():
    trace = make_contact_plan([(10.0, 30.0, 0, 1)])
    simulator, world = make_world(trace, protocol="cr", num_nodes=3)
    inject_message(world, source=0, destination=2)
    with pytest.raises(RuntimeError):
        simulator.run(until=50.0)


def test_community_membership_queries():
    trace = make_contact_plan([(10.0, 30.0, 0, 1)])
    simulator, world = cr_world(trace)
    router = world.get_node(0).router
    assert router.community == 0
    assert router.community_of(4) == 1
    assert sorted(router.community_members(0)) == [0, 1, 2]
    assert sorted(router.communities()) == [0, 1]


def test_peer_in_destination_community_gets_all_replicas():
    # source 0 (community 0) meets node 3 (community 1 = destination community)
    trace = make_contact_plan([(10.0, 50.0, 0, 3)])
    simulator, world = cr_world(trace)
    inject_message(world, source=0, destination=5, copies=10, ttl=5000.0)
    simulator.run(until=100.0)
    assert not world.get_node(0).router.has_message("M1")
    assert world.get_node(3).buffer.get("M1").copies == 10


def test_inter_community_split_by_enec():
    # node 1 frequently meets members of community 1 (high ENEC); node 0 does
    # not.  When they meet, node 0 should hand over replicas proportionally.
    contacts = []
    for t in range(10, 400, 60):
        contacts.append((float(t), float(t) + 5.0, 1, 3))
        contacts.append((float(t) + 20.0, float(t) + 25.0, 1, 4))
    contacts.append((500.0, 540.0, 0, 1))
    trace = make_contact_plan(contacts)
    simulator, world = cr_world(trace)
    inject_message(world, source=0, destination=5, copies=10, now=450.0, ttl=2000.0)
    simulator.run(until=600.0)
    copies0 = world.get_node(0).buffer.get("M1").copies
    copies1 = world.get_node(1).buffer.get("M1").copies
    assert copies0 + copies1 == 10
    assert copies1 > copies0


def test_inter_community_single_copy_forwarded_to_better_gateway():
    # node 1 regularly meets the destination community; node 0 never does
    contacts = [(float(t), float(t) + 10.0, 1, 3) for t in (10, 110, 210, 310)]
    contacts.append((400.0, 440.0, 0, 1))
    trace = make_contact_plan(contacts)
    simulator, world = cr_world(trace)
    inject_message(world, source=0, destination=5, copies=1, now=350.0, ttl=5000.0)
    simulator.run(until=460.0)
    assert world.get_node(1).router.has_message("M1")
    assert not world.get_node(0).router.has_message("M1")


def test_intra_community_message_not_handed_outside_community():
    # destination 2 is in community 0; holder 0 meets node 3 (community 1):
    # the message must stay with node 0.
    trace = make_contact_plan([(10.0, 50.0, 0, 3)])
    simulator, world = cr_world(trace)
    inject_message(world, source=0, destination=2, copies=4, ttl=5000.0)
    simulator.run(until=100.0)
    assert world.get_node(0).buffer.get("M1").copies == 4
    assert not world.get_node(3).router.has_message("M1")


def test_intra_community_split_and_delivery():
    # within community 0: source 0 splits with 1, then 1 delivers to 2
    trace = make_contact_plan([
        (10.0, 50.0, 0, 1),
        (100.0, 140.0, 1, 2),
    ])
    simulator, world = cr_world(trace)
    inject_message(world, source=0, destination=2, copies=6, ttl=5000.0)
    simulator.run(until=60.0)
    copies0 = world.get_node(0).buffer.get("M1").copies
    copies1 = world.get_node(1).buffer.get("M1").copies
    assert copies0 + copies1 == 6
    simulator.run(until=200.0)
    assert world.stats.is_delivered("M1")


def test_intra_community_single_copy_memd_forwarding():
    # node 1 meets the destination 2 periodically; node 0 does not.
    contacts = [(float(t), float(t) + 10.0, 1, 2) for t in (10, 110, 210, 310)]
    contacts.append((400.0, 440.0, 0, 1))
    contacts.append((510.0, 540.0, 1, 2))
    trace = make_contact_plan(contacts)
    simulator, world = cr_world(trace)
    inject_message(world, source=0, destination=2, copies=1, now=350.0, ttl=5000.0)
    simulator.run(until=460.0)
    assert world.get_node(1).router.has_message("M1")
    assert not world.get_node(0).router.has_message("M1")
    simulator.run(until=600.0)
    assert world.stats.is_delivered("M1")


def test_intra_community_mi_exchange_restricted_to_community():
    # contacts: 0-1 (same community) and 0-3 (different community)
    trace = make_contact_plan([
        (10.0, 30.0, 0, 1),
        (50.0, 70.0, 0, 3),
        (100.0, 120.0, 0, 1),
    ])
    simulator, world = cr_world(trace)
    simulator.run(until=150.0)
    router0 = world.get_node(0).router
    # intra-community MI knows about node 1 (same community, repeated contact)
    assert router0.intra_mi.interval(0, 1) == pytest.approx(90.0)
    # but never stores rows about the other community's members
    assert router0.intra_mi.interval(0, 3) == float("inf")


def test_control_overhead_lower_than_eer_on_same_trace():
    contacts = []
    # a mix of intra- and inter-community periodic contacts
    for t in range(10, 800, 40):
        contacts.append((float(t), float(t) + 5.0, 0, 1))
        contacts.append((float(t) + 10.0, float(t) + 15.0, 1, 3))
        contacts.append((float(t) + 20.0, float(t) + 25.0, 3, 4))
    trace = make_contact_plan(contacts)
    _, world_cr = cr_world(trace)
    sim_cr = world_cr.simulator
    sim_cr.run(until=850.0)
    simulator_eer, world_eer = make_world(trace, protocol="eer", num_nodes=6)
    simulator_eer.run(until=850.0)
    assert world_cr.stats.control_rows_exchanged < world_eer.stats.control_rows_exchanged
