"""Unit tests for report building."""

import pytest

from repro.metrics.collector import StatsCollector
from repro.metrics.reports import build_report
from repro.net.message import Message


def populated_collector():
    stats = StatsCollector()
    for i in range(5):
        message = Message(f"M{i}", 0, 1, 100, float(i), 500.0)
        stats.message_created(message)
    for i in range(3):
        message = Message(f"M{i}", 0, 1, 100, float(i), 500.0)
        replica = message.replicate(1, receiver=1, now=100.0 + i)
        stats.message_relayed(replica, 0, 1, 100.0 + i, 1, True)
        stats.message_delivered(replica, 100.0 + i)
    return stats


def test_build_report_headline_metrics():
    report = build_report(populated_collector(), protocol="eer", num_nodes=10,
                          sim_time=1000.0, seed=3)
    assert report.protocol == "eer"
    assert report.created == 5
    assert report.delivered == 3
    assert report.relayed == 3
    assert report.delivery_ratio == pytest.approx(0.6)
    assert report.goodput == pytest.approx(1.0)
    assert report.average_latency == pytest.approx((100.0 + 100.0 + 100.0) / 3, rel=0.1)
    assert report.latency_percentiles["p50"] > 0


def test_metric_lookup_and_aliases():
    report = build_report(populated_collector(), protocol="eer", num_nodes=10,
                          sim_time=1000.0, seed=3, extra={"custom": 1.5})
    assert report.metric("delivery_ratio") == report.delivery_ratio
    assert report.metric("latency") == report.average_latency
    assert report.metric("overhead") == report.overhead_ratio
    assert report.metric("custom") == 1.5
    with pytest.raises(KeyError):
        report.metric("nonexistent")


def test_as_dict_round_trip():
    report = build_report(populated_collector(), protocol="cr", num_nodes=4,
                          sim_time=100.0, seed=1)
    data = report.as_dict()
    assert data["protocol"] == "cr"
    assert data["num_nodes"] == 4
    assert data["delivered"] == 3
    assert isinstance(data["latency_percentiles"], dict)


def test_empty_collector_produces_zero_report():
    report = build_report(StatsCollector(), protocol="direct", num_nodes=2,
                          sim_time=10.0, seed=0)
    assert report.delivery_ratio == 0.0
    assert report.latency_percentiles == {}


def test_phase_ticks_per_second():
    stats = populated_collector()
    for _ in range(4):
        stats.tick_phase("move", 0.5)
    stats.tick_phase("routers", 0.0)  # timed below clock resolution
    report = build_report(stats, protocol="eer", num_nodes=10,
                          sim_time=1000.0, seed=3)
    assert report.tick_phase_samples == {"move": 4, "routers": 1}
    rates = report.phase_ticks_per_second()
    assert rates["move"] == pytest.approx(4 / 2.0)
    # zero-second phases can't produce a finite rate and are omitted
    assert "routers" not in rates
    # both timing breakdowns are observability, stripped from the
    # deterministic payload together
    data = report.as_dict(include_timings=True)
    assert data["tick_phase_samples"] == {"move": 4, "routers": 1}
    stripped = report.as_dict()
    assert "tick_phase_samples" not in stripped
    assert "tick_phase_seconds" not in stripped


def test_transfer_counters_are_canonical():
    """The transfer counters ride the canonical report: present with
    ``include_timings=False`` (the resume-equality surface) and wired from
    the collector aggregates."""
    stats = populated_collector()
    for i in range(2):
        message = Message(f"M{i}", 0, 1, 4096, float(i), 500.0)
        stats.transfer_completed(message.replicate(1, receiver=1, now=50.0))
    stats.transfer_aborted(Message("M9", 0, 1, 4096, 0.0, 500.0),
                           0, 1, 60.0, 123.0)
    report = build_report(stats, protocol="epidemic", num_nodes=10,
                          sim_time=1000.0, seed=3)
    assert report.transfers_completed == 2
    assert report.transfers_aborted == 1
    assert report.bytes_delivered == 2 * 4096
    data = report.as_dict(include_timings=False)
    assert data["transfers_completed"] == 2
    assert data["transfers_aborted"] == 1
    assert data["bytes_delivered"] == 2 * 4096
