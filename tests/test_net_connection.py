"""Unit tests for bandwidth-limited connections and transfers."""

import pytest

from repro.mobility.stationary import StationaryMovement
from repro.net.connection import Connection, ConnectionDownError, Transfer, TransferState
from repro.net.message import Message
from repro.sim.rng import RandomStreams
from repro.world.node import DTNNode


def make_node(node_id):
    rng = RandomStreams(0).python(f"n{node_id}")
    return DTNNode(node_id, StationaryMovement((0.0, 0.0)), rng)


@pytest.fixture
def pair():
    return make_node(0), make_node(1)


def make_message(size=1000, mid="M1"):
    return Message(mid, 0, 9, size, 0.0, 1000.0, copies=4)


def test_connection_endpoints(pair):
    a, b = pair
    conn = Connection(a, b, bitrate=100.0, established_at=0.0)
    assert conn.key == (0, 1)
    assert conn.other(a) is b
    assert conn.other(b) is a
    assert conn.involves(a) and conn.involves(b)
    stranger = make_node(7)
    assert not conn.involves(stranger)
    with pytest.raises(ValueError):
        conn.other(stranger)


def test_transfer_completes_after_size_over_bitrate(pair):
    a, b = pair
    conn = Connection(a, b, bitrate=100.0, established_at=0.0)
    transfer = Transfer(make_message(size=250), a, b, copies=2)
    conn.enqueue(transfer)
    assert conn.advance(now=1.0, dt=1.0) == []          # 100 of 250 bytes
    assert transfer.state is TransferState.IN_PROGRESS
    assert conn.advance(now=2.0, dt=1.0) == []          # 200 of 250 bytes
    done = conn.advance(now=3.0, dt=1.0)                # 300 >= 250 bytes
    assert done == [transfer]
    assert transfer.state is TransferState.COMPLETED
    assert transfer.completed_at == 3.0
    assert conn.completed_transfers == 1


def test_multiple_transfers_fifo_and_shared_bandwidth(pair):
    a, b = pair
    conn = Connection(a, b, bitrate=100.0, established_at=0.0)
    first = Transfer(make_message(size=100, mid="A"), a, b)
    second = Transfer(make_message(size=100, mid="B"), b, a)
    conn.enqueue(first)
    conn.enqueue(second)
    done = conn.advance(now=1.0, dt=1.5)
    assert done == [first]
    assert second.state is TransferState.IN_PROGRESS
    done = conn.advance(now=2.0, dt=1.0)
    assert done == [second]


def test_fast_link_completes_many_in_one_step(pair):
    a, b = pair
    conn = Connection(a, b, bitrate=1e6, established_at=0.0)
    transfers = [Transfer(make_message(size=100, mid=f"M{i}"), a, b) for i in range(5)]
    for transfer in transfers:
        conn.enqueue(transfer)
    done = conn.advance(now=1.0, dt=1.0)
    assert done == transfers


def test_is_transferring(pair):
    a, b = pair
    conn = Connection(a, b, bitrate=10.0, established_at=0.0)
    conn.enqueue(Transfer(make_message(mid="X"), a, b))
    assert conn.is_transferring("X")
    assert conn.is_transferring("X", to_node_id=1)
    assert not conn.is_transferring("X", to_node_id=0)
    assert not conn.is_transferring("Y")


def test_tear_down_aborts_queued_transfers(pair):
    a, b = pair
    conn = Connection(a, b, bitrate=10.0, established_at=0.0)
    transfer = Transfer(make_message(), a, b)
    conn.enqueue(transfer)
    aborted = conn.tear_down(now=5.0)
    assert aborted == [transfer]
    assert transfer.state is TransferState.ABORTED
    assert not conn.is_up
    assert conn.torn_down_at == 5.0
    assert conn.advance(now=6.0, dt=1.0) == []
    with pytest.raises(ConnectionDownError):
        conn.enqueue(Transfer(make_message(mid="Z"), a, b))


def test_transfer_validation(pair):
    a, b = pair
    with pytest.raises(ValueError):
        Transfer(make_message(), a, b, copies=0)
    conn = Connection(a, b, bitrate=10.0, established_at=0.0)
    stranger = make_node(9)
    with pytest.raises(ValueError):
        conn.enqueue(Transfer(make_message(), a, stranger))


def test_invalid_bitrate(pair):
    a, b = pair
    with pytest.raises(ValueError):
        Connection(a, b, bitrate=0.0, established_at=0.0)
